//! Tables: record collections sharing one schema, with id lookup.

use crate::error::{CoreError, Result};
use crate::hash::FxHashMap;
use crate::record::{Record, RecordId};
use crate::schema::Schema;
use std::sync::Arc;

/// One side of an ER task: a schema plus its records.
///
/// Records are stored densely; an id index supports `O(1)` lookup, which the
/// triangle-discovery phase (scanning `U \ {u}` for support records) relies
/// on to pair ids back to records.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Arc<Schema>,
    records: Vec<Record>,
    by_id: FxHashMap<RecordId, usize>,
}

impl Table {
    /// Empty table for `schema`.
    pub fn new(schema: Arc<Schema>) -> Self {
        Table {
            schema,
            records: Vec::new(),
            by_id: FxHashMap::default(),
        }
    }

    /// Build a table from records, validating arity and id uniqueness.
    pub fn from_records(schema: Arc<Schema>, records: Vec<Record>) -> Result<Self> {
        let mut t = Table::new(schema);
        t.records.reserve(records.len());
        for r in records {
            t.insert(r)?;
        }
        Ok(t)
    }

    /// Insert one record; errors on arity mismatch, panics on duplicate id
    /// (generator bug).
    pub fn insert(&mut self, record: Record) -> Result<()> {
        if record.arity() != self.schema.arity() {
            return Err(CoreError::ArityMismatch {
                schema: self.schema.name().to_string(),
                expected: self.schema.arity(),
                got: record.arity(),
            });
        }
        let prev = self.by_id.insert(record.id(), self.records.len());
        assert!(
            prev.is_none(),
            "duplicate record id {} in table {}",
            record.id(),
            self.name()
        );
        self.records.push(record);
        Ok(())
    }

    /// The table's schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Source name, from the schema.
    pub fn name(&self) -> &str {
        self.schema.name()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the table holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records, in insertion order.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Record by id.
    pub fn get(&self, id: RecordId) -> Result<&Record> {
        self.by_id
            .get(&id)
            .map(|&i| &self.records[i])
            .ok_or_else(|| CoreError::UnknownRecord {
                table: self.name().to_string(),
                id: id.0,
            })
    }

    /// Record by id, panicking form for internal use where ids are known good.
    pub fn expect(&self, id: RecordId) -> &Record {
        self.get(id).expect("record id must exist in table")
    }

    /// True when `id` belongs to this table.
    pub fn contains(&self, id: RecordId) -> bool {
        self.by_id.contains_key(&id)
    }

    /// Number of distinct attribute values across all records and attributes
    /// (the "Values" column of Table 1).
    pub fn distinct_values(&self) -> usize {
        let mut seen: crate::hash::FxHashSet<&str> = crate::hash::FxHashSet::default();
        for r in &self.records {
            for v in r.values() {
                if !v.trim().is_empty() {
                    seen.insert(v.as_str());
                }
            }
        }
        seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrId;

    fn table() -> Table {
        let schema = Schema::shared("Abt", ["Name", "Price"]);
        Table::from_records(
            schema,
            vec![
                Record::new(RecordId(0), vec!["sony tv".into(), "100".into()]),
                Record::new(RecordId(1), vec!["lg tv".into(), "100".into()]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn lookup_by_id() {
        let t = table();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.get(RecordId(1)).unwrap().value(AttrId(0)), "lg tv");
        assert!(t.contains(RecordId(0)));
        assert!(!t.contains(RecordId(5)));
        assert!(matches!(
            t.get(RecordId(5)),
            Err(CoreError::UnknownRecord { .. })
        ));
    }

    #[test]
    fn arity_checked_on_insert() {
        let mut t = table();
        let bad = Record::new(RecordId(9), vec!["only one".into()]);
        assert!(matches!(
            t.insert(bad),
            Err(CoreError::ArityMismatch { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "duplicate record id")]
    fn duplicate_ids_panic() {
        let mut t = table();
        t.insert(Record::new(RecordId(0), vec!["x".into(), "y".into()]))
            .unwrap();
    }

    #[test]
    fn distinct_values_ignores_blanks_and_dups() {
        let schema = Schema::shared("S", ["a", "b"]);
        let t = Table::from_records(
            schema,
            vec![
                Record::new(RecordId(0), vec!["x".into(), "".into()]),
                Record::new(RecordId(1), vec!["x".into(), "y".into()]),
            ],
        )
        .unwrap();
        assert_eq!(t.distinct_values(), 2); // "x", "y"
    }
}
