//! Debug-build lock-order tracking: the dynamic half of the `lock-order`
//! contract.
//!
//! The static `certa-lint` rule catches *textual* second acquisitions
//! while a `let`-bound guard is live, but token scanning cannot see guards
//! held by temporaries or acquisitions behind a function call. This module
//! closes that gap at runtime: lock owners (the sharded `CachingMatcher`
//! and `FeatureMemo`, the serve registry) register each acquisition with a
//! thread-local held-set, and a `debug_assert` enforces the workspace's
//! acquisition discipline:
//!
//! - within one owner, locks are acquired in strictly increasing
//!   `(rank, key)` order — shards are rank 0, per-pair cells rank 1, so
//!   shard→cell is legal, cell→shard (the deadlock shape) is not, and
//!   same-rank acquisitions must walk keys upward exactly like the batch
//!   path's sorted miss-cell locking;
//! - an owner can require that *nothing* of its own is held at a point
//!   (the registry materializes models outside its map lock).
//!
//! Different owners never constrain each other: nesting a cache inside
//! another cache's compute path is fine.
//!
//! In release builds everything compiles to nothing: [`Held`] is a
//! zero-sized token and the tracking code is `#[cfg(debug_assertions)]`.

/// Acquisition rank within an owner: coarse locks first, leaves last.
pub mod rank {
    /// Shard maps (and the serve registry's entry map).
    pub const SHARD: u8 = 0;
    /// Per-key leaf locks (the score cache's per-pair cells).
    pub const CELL: u8 = 1;
}

#[cfg(debug_assertions)]
mod imp {
    use std::cell::RefCell;

    thread_local! {
        /// Locks this thread currently holds: `(owner, rank, key)`.
        static HELD: RefCell<Vec<(usize, u8, u128)>> = const { RefCell::new(Vec::new()) };
    }

    pub fn acquire(owner: usize, rank: u8, key: u128) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            for &(o, r, k) in held.iter() {
                if o == owner {
                    debug_assert!(
                        (r, k) < (rank, key),
                        "lock-order violation: acquiring (rank {rank}, key {key}) \
                         while (rank {r}, key {k}) of the same owner is held \
                         — acquisitions must walk (rank, key) strictly upward"
                    );
                }
            }
            held.push((owner, rank, key));
        });
    }

    pub fn release(owner: usize, rank: u8, key: u128) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(i) = held.iter().rposition(|&e| e == (owner, rank, key)) {
                held.remove(i);
            }
        });
    }

    pub fn assert_none_held(owner: usize, context: &str) {
        HELD.with(|held| {
            let held = held.borrow();
            debug_assert!(
                !held.iter().any(|&(o, _, _)| o == owner),
                "lock-order violation: {context} must run with no lock of this owner held, \
                 but {} are",
                held.iter().filter(|&&(o, _, _)| o == owner).count()
            );
        });
    }
}

/// RAII token for one tracked acquisition. Create it just before taking
/// the lock and keep it alongside the guard; dropping it (with the guard)
/// removes the entry from the thread's held-set. Zero-sized no-op in
/// release builds.
#[must_use = "hold the token for as long as the guard lives"]
pub struct Held {
    #[cfg(debug_assertions)]
    entry: (usize, u8, u128),
}

/// Record an acquisition of `(rank, key)` on `owner` (any stable address
/// identifying the lock's owner — `Arc::as_ptr` of the shared state works).
/// Panics in debug builds when the acquisition breaks the ordering
/// discipline; free in release builds.
#[inline]
pub fn acquire(owner: usize, rank: u8, key: u128) -> Held {
    #[cfg(debug_assertions)]
    {
        imp::acquire(owner, rank, key);
        Held {
            entry: (owner, rank, key),
        }
    }
    #[cfg(not(debug_assertions))]
    {
        let _ = (owner, rank, key);
        Held {}
    }
}

impl Drop for Held {
    #[inline]
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        imp::release(self.entry.0, self.entry.1, self.entry.2);
    }
}

/// Debug-assert that this thread holds none of `owner`'s tracked locks —
/// the guard for "materialize outside the lock" call sites. No-op in
/// release builds.
#[inline]
pub fn assert_none_held(owner: usize, context: &str) {
    #[cfg(debug_assertions)]
    imp::assert_none_held(owner, context);
    #[cfg(not(debug_assertions))]
    let _ = (owner, context);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upward_walk_is_legal() {
        let owner = 0x1000;
        let _s = acquire(owner, rank::SHARD, 3);
        let _c1 = acquire(owner, rank::CELL, 1);
        drop(_c1);
        let _c2 = acquire(owner, rank::CELL, 2);
    }

    #[test]
    fn sequential_reacquire_is_legal() {
        let owner = 0x2000;
        for key in [5u128, 1, 9] {
            let _s = acquire(owner, rank::SHARD, key);
            // token drops each iteration — no ordering constraint across
            // non-overlapping acquisitions.
        }
    }

    #[test]
    fn distinct_owners_do_not_interact() {
        let _a = acquire(0x3000, rank::CELL, 7);
        let _b = acquire(0x4000, rank::SHARD, 1);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock-order violation")]
    fn cell_then_shard_panics() {
        let owner = 0x5000;
        let _c = acquire(owner, rank::CELL, 7);
        let _s = acquire(owner, rank::SHARD, 0);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock-order violation")]
    fn same_rank_downward_panics() {
        let owner = 0x6000;
        let _a = acquire(owner, rank::CELL, 9);
        let _b = acquire(owner, rank::CELL, 2);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock-order violation")]
    fn assert_none_held_fires_while_holding() {
        let owner = 0x7000;
        let _s = acquire(owner, rank::SHARD, 0);
        assert_none_held(owner, "materialization");
    }
}
