//! Datasets: two tables, ground truth, and train/test splits.

use crate::error::{CoreError, Result};
use crate::pair::{LabeledPair, RecordPair, Side};
use crate::record::Record;
use crate::table::Table;

/// Which labeled split to read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Split {
    /// Pairs used to fit the matcher (`T+ ∪ T-` in §3).
    Train,
    /// Held-out pairs used by every §5 experiment.
    Test,
}

/// An ER benchmark instance: sources `U` and `V`, plus labeled pair splits.
///
/// Mirrors the DeepMatcher benchmark layout the paper evaluates on: two
/// record tables and pre-split labeled candidate pairs ("Each dataset comes
/// with its own test and training set, which we use for training the DL
/// models", §5.1).
#[derive(Debug, Clone)]
pub struct Dataset {
    name: String,
    left: Table,
    right: Table,
    train: Vec<LabeledPair>,
    test: Vec<LabeledPair>,
}

impl Dataset {
    /// Assemble and validate a dataset. All pair ids must resolve in the
    /// corresponding table.
    pub fn new(
        name: impl Into<String>,
        left: Table,
        right: Table,
        train: Vec<LabeledPair>,
        test: Vec<LabeledPair>,
    ) -> Result<Self> {
        let name = name.into();
        if left.is_empty() || right.is_empty() {
            return Err(CoreError::InvalidDataset(format!(
                "dataset `{name}` has an empty side"
            )));
        }
        for lp in train.iter().chain(test.iter()) {
            if !left.contains(lp.pair.left) {
                return Err(CoreError::InvalidDataset(format!(
                    "dataset `{name}`: pair {} references unknown left record",
                    lp.pair
                )));
            }
            if !right.contains(lp.pair.right) {
                return Err(CoreError::InvalidDataset(format!(
                    "dataset `{name}`: pair {} references unknown right record",
                    lp.pair
                )));
            }
        }
        Ok(Dataset {
            name,
            left,
            right,
            train,
            test,
        })
    }

    /// The dataset's short name (e.g. `"AB"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The `U` table.
    pub fn left(&self) -> &Table {
        &self.left
    }

    /// The `V` table.
    pub fn right(&self) -> &Table {
        &self.right
    }

    /// Table on the requested side.
    pub fn table(&self, side: Side) -> &Table {
        match side {
            Side::Left => &self.left,
            Side::Right => &self.right,
        }
    }

    /// Labeled pairs of a split.
    pub fn split(&self, split: Split) -> &[LabeledPair] {
        match split {
            Split::Train => &self.train,
            Split::Test => &self.test,
        }
    }

    /// Resolve a pair's records.
    pub fn resolve(&self, pair: RecordPair) -> Result<(&Record, &Record)> {
        Ok((self.left.get(pair.left)?, self.right.get(pair.right)?))
    }

    /// Resolve a pair known to be valid (panicking form).
    pub fn expect_pair(&self, pair: RecordPair) -> (&Record, &Record) {
        (self.left.expect(pair.left), self.right.expect(pair.right))
    }

    /// Number of ground-truth matching pairs across both splits — the
    /// "Matches" column of Table 1.
    pub fn match_count(&self) -> usize {
        self.train
            .iter()
            .chain(self.test.iter())
            .filter(|lp| lp.label.is_match())
            .count()
    }

    /// Per-side statistics for the Table 1 row.
    pub fn side_stats(&self, side: Side) -> SideStats {
        let t = self.table(side);
        SideStats {
            records: t.len(),
            distinct_values: t.distinct_values(),
        }
    }
}

/// Record/value counts for one side (Table 1's "Records" and "Values").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SideStats {
    /// Number of records in the source.
    pub records: usize,
    /// Number of distinct non-empty attribute values.
    pub distinct_values: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordId;
    use crate::schema::Schema;

    fn tiny() -> Dataset {
        let ls = Schema::shared("U", ["name"]);
        let rs = Schema::shared("V", ["name"]);
        let left = Table::from_records(
            ls,
            vec![
                Record::new(RecordId(0), vec!["a".into()]),
                Record::new(RecordId(1), vec!["b".into()]),
            ],
        )
        .unwrap();
        let right = Table::from_records(
            rs,
            vec![
                Record::new(RecordId(0), vec!["a".into()]),
                Record::new(RecordId(1), vec!["c".into()]),
            ],
        )
        .unwrap();
        Dataset::new(
            "tiny",
            left,
            right,
            vec![LabeledPair::new(RecordId(0), RecordId(0), true)],
            vec![LabeledPair::new(RecordId(1), RecordId(1), false)],
        )
        .unwrap()
    }

    #[test]
    fn splits_and_resolution() {
        let d = tiny();
        assert_eq!(d.split(Split::Train).len(), 1);
        assert_eq!(d.split(Split::Test).len(), 1);
        let (u, v) = d.resolve(d.split(Split::Train)[0].pair).unwrap();
        assert_eq!(u.values()[0], "a");
        assert_eq!(v.values()[0], "a");
        assert_eq!(d.match_count(), 1);
    }

    #[test]
    fn table_by_side() {
        let d = tiny();
        assert_eq!(d.table(Side::Left).name(), "U");
        assert_eq!(d.table(Side::Right).name(), "V");
        assert_eq!(d.left().len(), 2);
        assert_eq!(d.right().len(), 2);
    }

    #[test]
    fn side_stats_counts() {
        let d = tiny();
        let s = d.side_stats(Side::Left);
        assert_eq!(s.records, 2);
        assert_eq!(s.distinct_values, 2);
    }

    #[test]
    fn invalid_pairs_rejected() {
        let d = tiny();
        let bad = Dataset::new(
            "bad",
            d.left().clone(),
            d.right().clone(),
            vec![LabeledPair::new(RecordId(99), RecordId(0), true)],
            vec![],
        );
        assert!(matches!(bad, Err(CoreError::InvalidDataset(_))));
    }

    #[test]
    fn empty_side_rejected() {
        let d = tiny();
        let empty = Table::new(Schema::shared("E", ["x"]));
        assert!(Dataset::new("bad", empty, d.right().clone(), vec![], vec![]).is_err());
    }
}
