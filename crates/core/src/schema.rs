//! Schemas: ordered, named attribute lists for one side of an ER task.

use crate::error::{CoreError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Index of an attribute within a [`Schema`].
///
/// The paper's lattices are built over subsets of one side's attributes; a
/// compact `u16` index keeps subset bitmasks and per-attribute arrays cheap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AttrId(pub u16);

impl AttrId {
    /// The attribute's position within its schema.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// An ordered list of named attributes describing one record source.
///
/// `U` and `V` may have different schemas (§3); e.g. Abt's
/// `{Name, Description, Price}` vs Buy's `{Name, Description, Price}` in
/// Figure 1, or entirely different attribute sets.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    name: String,
    attrs: Vec<String>,
}

impl Schema {
    /// Build a schema from a source name and attribute names.
    ///
    /// # Panics
    /// Panics if `attrs` is empty or holds more than `u16::MAX` entries, or if
    /// attribute names repeat — all construction-time programming errors.
    pub fn new(
        name: impl Into<String>,
        attrs: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        let name = name.into();
        let attrs: Vec<String> = attrs.into_iter().map(Into::into).collect();
        assert!(
            !attrs.is_empty(),
            "schema `{name}` must have at least one attribute"
        );
        assert!(
            attrs.len() <= u16::MAX as usize,
            "schema `{name}` has too many attributes"
        );
        for (i, a) in attrs.iter().enumerate() {
            assert!(
                !attrs[..i].contains(a),
                "schema `{name}` has duplicate attribute `{a}`"
            );
        }
        Schema { name, attrs }
    }

    /// Convenience constructor returning an `Arc`, the form tables store.
    pub fn shared(
        name: impl Into<String>,
        attrs: impl IntoIterator<Item = impl Into<String>>,
    ) -> Arc<Self> {
        Arc::new(Self::new(name, attrs))
    }

    /// The source name (e.g. `"Abt"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Attribute name for an id.
    ///
    /// # Panics
    /// Panics if `id` is out of range for this schema.
    pub fn attr_name(&self, id: AttrId) -> &str {
        &self.attrs[id.index()]
    }

    /// All attribute ids, in schema order.
    pub fn attr_ids(&self) -> impl ExactSizeIterator<Item = AttrId> + '_ {
        (0..self.attrs.len() as u16).map(AttrId)
    }

    /// All attribute names, in schema order.
    pub fn attr_names(&self) -> &[String] {
        &self.attrs
    }

    /// Look up an attribute id by name.
    pub fn attr_id(&self, name: &str) -> Result<AttrId> {
        self.attrs
            .iter()
            .position(|a| a == name)
            .map(|i| AttrId(i as u16))
            .ok_or_else(|| CoreError::UnknownAttribute {
                schema: self.name.clone(),
                attr: name.to_string(),
            })
    }

    /// Qualified display name, `Name_Abt` style, matching the paper's
    /// `Name_Abt` / `Description_Buy` notation.
    pub fn qualified(&self, id: AttrId) -> String {
        format!("{}_{}", self.attr_name(id), self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abt() -> Schema {
        Schema::new("Abt", ["Name", "Description", "Price"])
    }

    #[test]
    fn arity_and_names() {
        let s = abt();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.name(), "Abt");
        assert_eq!(s.attr_name(AttrId(1)), "Description");
        assert_eq!(s.attr_names(), &["Name", "Description", "Price"]);
    }

    #[test]
    fn id_lookup_roundtrips() {
        let s = abt();
        for id in s.attr_ids() {
            let name = s.attr_name(id).to_string();
            assert_eq!(s.attr_id(&name).unwrap(), id);
        }
    }

    #[test]
    fn unknown_attribute_errors() {
        let s = abt();
        let err = s.attr_id("Weight").unwrap_err();
        assert!(matches!(err, CoreError::UnknownAttribute { .. }));
    }

    #[test]
    fn qualified_matches_paper_notation() {
        let s = abt();
        assert_eq!(s.qualified(AttrId(0)), "Name_Abt");
        assert_eq!(s.qualified(AttrId(2)), "Price_Abt");
    }

    #[test]
    #[should_panic(expected = "duplicate attribute")]
    fn duplicate_attrs_rejected() {
        let _ = Schema::new("S", ["a", "a"]);
    }

    #[test]
    #[should_panic(expected = "at least one attribute")]
    fn empty_schema_rejected() {
        let _ = Schema::new("S", Vec::<String>::new());
    }

    #[test]
    fn attr_id_display() {
        assert_eq!(AttrId(3).to_string(), "a3");
        assert_eq!(AttrId(3).index(), 3);
    }
}
