//! Records: tuples of string attribute values.

use crate::hash::fx_hash_one;
use crate::schema::{AttrId, Schema};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a record within its table.
///
/// Perturbed copies created by the explainers are *synthetic* and keep the id
/// of the free record they derive from; identity for caching purposes is the
/// [`Record::content_hash`], never the id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RecordId(pub u32);

impl fmt::Display for RecordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A structured entity description: one string value per schema attribute.
///
/// Missing values (the `NaN` cells of Figure 1) are represented by empty
/// strings; [`Record::is_missing`] reports them.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Record {
    id: RecordId,
    values: Vec<String>,
}

impl Record {
    /// Build a record. The caller is responsible for matching the intended
    /// schema's arity; [`crate::Table::insert`] enforces it.
    pub fn new(id: RecordId, values: Vec<String>) -> Self {
        Record { id, values }
    }

    /// The record's id within its table.
    #[inline]
    pub fn id(&self) -> RecordId {
        self.id
    }

    /// Number of attribute values.
    #[inline]
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Value of attribute `a` — the paper's `r[a]`.
    #[inline]
    pub fn value(&self, a: AttrId) -> &str {
        &self.values[a.index()]
    }

    /// All values in schema order.
    pub fn values(&self) -> &[String] {
        &self.values
    }

    /// True when attribute `a` holds no value (empty after trimming).
    pub fn is_missing(&self, a: AttrId) -> bool {
        self.value(a).trim().is_empty()
    }

    /// Replace the value of attribute `a`, returning the old value.
    pub fn set_value(&mut self, a: AttrId, value: impl Into<String>) -> String {
        std::mem::replace(&mut self.values[a.index()], value.into())
    }

    /// A copy of this record with attribute `a` replaced.
    pub fn with_value(&self, a: AttrId, value: impl Into<String>) -> Record {
        let mut copy = self.clone();
        copy.set_value(a, value);
        copy
    }

    /// A copy with every attribute in `attrs` replaced by the corresponding
    /// value from `donor` — the heart of the perturbing function ψ (§3).
    pub fn with_values_from(&self, donor: &Record, attrs: &[AttrId]) -> Record {
        let mut copy = self.clone();
        for &a in attrs {
            copy.set_value(a, donor.value(a).to_string());
        }
        copy
    }

    /// Content-addressed hash over the values only (ids excluded), used as a
    /// prediction-cache key for perturbed copies.
    pub fn content_hash(&self) -> u64 {
        fx_hash_one(&self.values)
    }

    /// Render the record as `attr=value; ...` using `schema` names.
    pub fn display_with(&self, schema: &Schema) -> String {
        let mut out = String::new();
        for (i, a) in schema.attr_ids().enumerate() {
            if i > 0 {
                out.push_str("; ");
            }
            let v = self.value(a);
            out.push_str(schema.attr_name(a));
            out.push('=');
            out.push_str(if v.is_empty() { "NaN" } else { v });
        }
        out
    }

    /// Total whitespace token count across all attributes.
    pub fn total_tokens(&self) -> usize {
        self.values
            .iter()
            .map(|v| crate::tokens::token_count(v))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec() -> Record {
        Record::new(
            RecordId(1),
            vec![
                "sony bravia theater".into(),
                "black micro system".into(),
                String::new(),
            ],
        )
    }

    #[test]
    fn value_access() {
        let r = rec();
        assert_eq!(r.id(), RecordId(1));
        assert_eq!(r.arity(), 3);
        assert_eq!(r.value(AttrId(0)), "sony bravia theater");
        assert!(r.is_missing(AttrId(2)));
        assert!(!r.is_missing(AttrId(0)));
        assert_eq!(r.total_tokens(), 6);
    }

    #[test]
    fn set_value_returns_old() {
        let mut r = rec();
        let old = r.set_value(AttrId(0), "new name");
        assert_eq!(old, "sony bravia theater");
        assert_eq!(r.value(AttrId(0)), "new name");
    }

    #[test]
    fn with_values_from_copies_selected_attrs() {
        let r = rec();
        let donor = Record::new(RecordId(9), vec!["d0".into(), "d1".into(), "d2".into()]);
        let out = r.with_values_from(&donor, &[AttrId(0), AttrId(2)]);
        assert_eq!(out.value(AttrId(0)), "d0");
        assert_eq!(out.value(AttrId(1)), "black micro system"); // untouched
        assert_eq!(out.value(AttrId(2)), "d2");
        assert_eq!(out.id(), r.id(), "perturbed copy keeps free-record id");
        // Original unchanged.
        assert_eq!(r.value(AttrId(0)), "sony bravia theater");
    }

    #[test]
    fn content_hash_ignores_id_tracks_values() {
        let a = Record::new(RecordId(1), vec!["x".into()]);
        let b = Record::new(RecordId(2), vec!["x".into()]);
        let c = Record::new(RecordId(1), vec!["y".into()]);
        assert_eq!(a.content_hash(), b.content_hash());
        assert_ne!(a.content_hash(), c.content_hash());
    }

    #[test]
    fn display_shows_nan_for_missing() {
        let schema = Schema::new("Abt", ["Name", "Description", "Price"]);
        let shown = rec().display_with(&schema);
        assert!(shown.contains("Price=NaN"));
        assert!(shown.contains("Name=sony bravia theater"));
    }

    use crate::schema::Schema;
}
