//! Records: tuples of interned attribute values.
//!
//! Since the copy-on-write refactor a record is a vector of [`AttrValue`]
//! handles rather than owned `String`s: cloning a record, replacing an
//! attribute, and building a perturbed copy ([`Record::with_values_from`],
//! [`Record::with_values_merged`]) are all O(arity) reference-count bumps
//! with **zero string allocation**, and [`Record::content_hash`] folds the
//! per-value hashes cached at intern time instead of re-hashing every byte.

use crate::hash::FxHasher;
use crate::schema::{AttrId, Schema};
use crate::value::AttrValue;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::hash::Hasher;

/// Identifier of a record within its table.
///
/// Perturbed copies created by the explainers are *synthetic* and keep the id
/// of the free record they derive from; identity for caching purposes is the
/// [`Record::content_hash`], never the id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RecordId(pub u32);

impl fmt::Display for RecordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A structured entity description: one interned value per schema attribute.
///
/// Missing values (the `NaN` cells of Figure 1) are represented by empty
/// strings; [`Record::is_missing`] reports them.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Record {
    id: RecordId,
    values: Vec<AttrValue>,
}

impl Record {
    /// Build a record from raw strings, interning each value. The caller is
    /// responsible for matching the intended schema's arity;
    /// [`crate::Table::insert`] enforces it.
    pub fn new(id: RecordId, values: Vec<String>) -> Self {
        Record {
            id,
            values: values.into_iter().map(AttrValue::from).collect(),
        }
    }

    /// Build a record directly from interned handles (the zero-allocation
    /// construction path used by the perturbers).
    pub fn from_attr_values(id: RecordId, values: Vec<AttrValue>) -> Self {
        Record { id, values }
    }

    /// The record's id within its table.
    #[inline]
    pub fn id(&self) -> RecordId {
        self.id
    }

    /// Number of attribute values.
    #[inline]
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Value of attribute `a` — the paper's `r[a]`.
    #[inline]
    pub fn value(&self, a: AttrId) -> &str {
        &self.values[a.index()]
    }

    /// The interned handle of attribute `a` (id, cached clean form, tokens).
    #[inline]
    pub fn attr_value(&self, a: AttrId) -> &AttrValue {
        &self.values[a.index()]
    }

    /// All values in schema order.
    pub fn values(&self) -> &[AttrValue] {
        &self.values
    }

    /// True when attribute `a` holds no value (empty after trimming).
    pub fn is_missing(&self, a: AttrId) -> bool {
        self.values[a.index()].is_missing()
    }

    /// Replace the value of attribute `a`, returning the old value.
    pub fn set_value(&mut self, a: AttrId, value: impl Into<AttrValue>) -> AttrValue {
        std::mem::replace(&mut self.values[a.index()], value.into())
    }

    /// A copy of this record with attribute `a` replaced.
    pub fn with_value(&self, a: AttrId, value: impl Into<AttrValue>) -> Record {
        let mut copy = self.clone();
        copy.set_value(a, value);
        copy
    }

    /// A copy with every attribute in `attrs` replaced by the corresponding
    /// value from `donor` — the heart of the perturbing function ψ (§3).
    /// Pure handle copies: no string is cloned or re-interned.
    pub fn with_values_from(&self, donor: &Record, attrs: &[AttrId]) -> Record {
        let mut copy = self.clone();
        for &a in attrs {
            copy.values[a.index()] = donor.values[a.index()].clone();
        }
        copy
    }

    /// A copy taking attribute `i`'s value from `donor` wherever
    /// `take_donor(i)` holds, and from `self` otherwise — ψ driven directly
    /// by a mask predicate, in one O(arity) pass of handle clones.
    pub fn with_values_merged(&self, donor: &Record, take_donor: impl Fn(usize) -> bool) -> Record {
        // Hard assert: a silent zip-truncation on mismatched schemas would
        // poison content hashes downstream (the old path panicked too, via
        // out-of-range indexing).
        assert_eq!(
            self.arity(),
            donor.arity(),
            "merged records must share a schema"
        );
        Record {
            id: self.id,
            values: self
                .values
                .iter()
                .zip(donor.values.iter())
                .enumerate()
                .map(|(i, (own, theirs))| {
                    if take_donor(i) {
                        theirs.clone()
                    } else {
                        own.clone()
                    }
                })
                .collect(),
        }
    }

    /// Content-addressed hash over the values only (ids excluded), used as a
    /// prediction-cache key for perturbed copies.
    ///
    /// Folds the per-value content hashes cached at intern time (plus the
    /// arity), so hashing a record is O(arity) `u64` mixes instead of
    /// re-hashing every byte. The result is a pure function of the value
    /// strings: records built from raw strings and records assembled from
    /// interned handles hash identically (pinned by `tests/value_props.rs`).
    pub fn content_hash(&self) -> u64 {
        let mut h = FxHasher::default();
        h.write_usize(self.values.len());
        for v in &self.values {
            h.write_u64(v.content_hash());
        }
        h.finish()
    }

    /// Render the record as `attr=value; ...` using `schema` names.
    pub fn display_with(&self, schema: &Schema) -> String {
        let mut out = String::new();
        for (i, a) in schema.attr_ids().enumerate() {
            if i > 0 {
                out.push_str("; ");
            }
            let v = self.value(a);
            out.push_str(schema.attr_name(a));
            out.push('=');
            out.push_str(if v.is_empty() { "NaN" } else { v });
        }
        out
    }

    /// Total whitespace token count across all attributes (cached per value).
    pub fn total_tokens(&self) -> usize {
        self.values.iter().map(|v| v.token_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec() -> Record {
        Record::new(
            RecordId(1),
            vec![
                "sony bravia theater".into(),
                "black micro system".into(),
                String::new(),
            ],
        )
    }

    #[test]
    fn value_access() {
        let r = rec();
        assert_eq!(r.id(), RecordId(1));
        assert_eq!(r.arity(), 3);
        assert_eq!(r.value(AttrId(0)), "sony bravia theater");
        assert!(r.is_missing(AttrId(2)));
        assert!(!r.is_missing(AttrId(0)));
        assert_eq!(r.total_tokens(), 6);
    }

    #[test]
    fn set_value_returns_old() {
        let mut r = rec();
        let old = r.set_value(AttrId(0), "new name");
        assert_eq!(old, "sony bravia theater");
        assert_eq!(r.value(AttrId(0)), "new name");
    }

    #[test]
    fn with_values_from_copies_selected_attrs() {
        let r = rec();
        let donor = Record::new(RecordId(9), vec!["d0".into(), "d1".into(), "d2".into()]);
        let out = r.with_values_from(&donor, &[AttrId(0), AttrId(2)]);
        assert_eq!(out.value(AttrId(0)), "d0");
        assert_eq!(out.value(AttrId(1)), "black micro system"); // untouched
        assert_eq!(out.value(AttrId(2)), "d2");
        assert_eq!(out.id(), r.id(), "perturbed copy keeps free-record id");
        // Original unchanged.
        assert_eq!(r.value(AttrId(0)), "sony bravia theater");
        // COW: copied attrs share the donor's interned allocation.
        assert!(AttrValue::ptr_eq(
            out.attr_value(AttrId(0)),
            donor.attr_value(AttrId(0))
        ));
        assert!(AttrValue::ptr_eq(
            out.attr_value(AttrId(1)),
            r.attr_value(AttrId(1))
        ));
    }

    #[test]
    fn with_values_merged_matches_with_values_from() {
        let r = rec();
        let donor = Record::new(RecordId(9), vec!["d0".into(), "d1".into(), "d2".into()]);
        let mask = 0b101usize;
        let merged = r.with_values_merged(&donor, |i| mask & (1 << i) != 0);
        let listed = r.with_values_from(&donor, &[AttrId(0), AttrId(2)]);
        assert_eq!(merged, listed);
        assert_eq!(merged.id(), r.id());
    }

    #[test]
    fn content_hash_ignores_id_tracks_values() {
        let a = Record::new(RecordId(1), vec!["x".into()]);
        let b = Record::new(RecordId(2), vec!["x".into()]);
        let c = Record::new(RecordId(1), vec!["y".into()]);
        assert_eq!(a.content_hash(), b.content_hash());
        assert_ne!(a.content_hash(), c.content_hash());
    }

    #[test]
    fn content_hash_same_for_both_construction_paths() {
        let strings = vec!["sony bravia".to_string(), String::new(), "99".to_string()];
        let from_strings = Record::new(RecordId(0), strings.clone());
        let from_handles = Record::from_attr_values(
            RecordId(7),
            strings.iter().map(|s| AttrValue::intern(s)).collect(),
        );
        assert_eq!(from_strings.content_hash(), from_handles.content_hash());
        assert_eq!(from_strings.values(), from_handles.values());
    }

    #[test]
    fn display_shows_nan_for_missing() {
        let schema = Schema::new("Abt", ["Name", "Description", "Price"]);
        let shown = rec().display_with(&schema);
        assert!(shown.contains("Price=NaN"));
        assert!(shown.contains("Name=sony bravia theater"));
    }

    use crate::schema::Schema;
}
