//! Token-based blocking: candidate generation via an inverted index.
//!
//! Real ER pipelines never score the full `U × V` cross product; a blocking
//! pass proposes candidate pairs that share evidence. The synthetic benchmark
//! generator uses this index to build realistic *hard negatives* (similar but
//! non-matching pairs) for the train/test splits, and CERTA's triangle search
//! can use it to rank likely support records instead of scanning a whole
//! table.

use crate::hash::FxHashMap;
use crate::record::{Record, RecordId};
use crate::table::Table;

/// Inverted index from token → record ids containing it, over one table.
#[derive(Debug, Clone)]
pub struct TokenIndex {
    postings: FxHashMap<String, Vec<RecordId>>,
    /// Tokens appearing in more than this many records are skipped at query
    /// time (stop-word behaviour).
    max_posting: usize,
}

impl TokenIndex {
    /// Index every (cleaned) token of every attribute of every record.
    ///
    /// `max_posting` bounds how common a token may be and still drive
    /// candidate generation; pass `usize::MAX` to disable the cutoff.
    pub fn build(table: &Table, max_posting: usize) -> Self {
        let mut postings: FxHashMap<String, Vec<RecordId>> = FxHashMap::default();
        for r in table.records() {
            for value in r.values() {
                // Cleaned tokens are cached on the interned value — indexing
                // re-reads them instead of re-cleaning every string.
                for tok in value.clean_tokens() {
                    let ids = postings.entry(tok.to_string()).or_default();
                    if ids.last() != Some(&r.id()) {
                        ids.push(r.id());
                    }
                }
            }
        }
        TokenIndex {
            postings,
            max_posting,
        }
    }

    /// Records sharing at least `min_overlap` distinct indexed tokens with
    /// `probe`, ranked by descending overlap count. `exclude` (if given) is
    /// removed from the results — used when searching support records
    /// `w ∈ U \ {u}`.
    pub fn candidates(
        &self,
        probe: &Record,
        min_overlap: usize,
        exclude: Option<RecordId>,
    ) -> Vec<(RecordId, usize)> {
        let mut counts: FxHashMap<RecordId, usize> = FxHashMap::default();
        let mut seen: crate::hash::FxHashSet<String> = crate::hash::FxHashSet::default();
        for value in probe.values() {
            for tok in value.clean_tokens() {
                if !seen.insert(tok.to_string()) {
                    continue; // count each distinct probe token once
                }
                if let Some(ids) = self.postings.get(tok) {
                    if ids.len() > self.max_posting {
                        continue;
                    }
                    for &id in ids {
                        if Some(id) != exclude {
                            *counts.entry(id).or_insert(0) += 1;
                        }
                    }
                }
            }
        }
        let mut out: Vec<(RecordId, usize)> = counts
            .into_iter()
            .filter(|&(_, c)| c >= min_overlap)
            .collect();
        // Deterministic order: overlap desc, then id asc.
        out.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Number of distinct indexed tokens.
    pub fn vocabulary_size(&self) -> usize {
        self.postings.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn table() -> Table {
        let schema = Schema::shared("U", ["name"]);
        Table::from_records(
            schema,
            vec![
                Record::new(RecordId(0), vec!["sony bravia tv".into()]),
                Record::new(RecordId(1), vec!["sony walkman player".into()]),
                Record::new(RecordId(2), vec!["lg oled tv".into()]),
                Record::new(RecordId(3), vec!["bose speaker".into()]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn candidates_ranked_by_overlap() {
        let t = table();
        let idx = TokenIndex::build(&t, usize::MAX);
        let probe = Record::new(RecordId(99), vec!["sony bravia oled tv".into()]);
        let cands = idx.candidates(&probe, 1, None);
        // Record 0 shares sony+bravia+tv (3); record 2 shares oled+tv (2);
        // record 1 shares sony (1).
        assert_eq!(cands[0].0, RecordId(0));
        assert_eq!(cands[0].1, 3);
        assert_eq!(cands[1].0, RecordId(2));
        assert!(cands.iter().all(|&(id, _)| id != RecordId(3)));
    }

    #[test]
    fn exclude_removes_self() {
        let t = table();
        let idx = TokenIndex::build(&t, usize::MAX);
        let probe = t.get(RecordId(0)).unwrap().clone();
        let cands = idx.candidates(&probe, 1, Some(RecordId(0)));
        assert!(cands.iter().all(|&(id, _)| id != RecordId(0)));
        assert!(!cands.is_empty());
    }

    #[test]
    fn min_overlap_filters() {
        let t = table();
        let idx = TokenIndex::build(&t, usize::MAX);
        let probe = Record::new(RecordId(99), vec!["sony bravia oled tv".into()]);
        let cands = idx.candidates(&probe, 2, None);
        assert!(cands.iter().all(|&(_, c)| c >= 2));
    }

    #[test]
    fn stop_tokens_ignored() {
        let t = table();
        // With max_posting = 1, "sony" (2 postings) and "tv" (2 postings)
        // are treated as stop words.
        let idx = TokenIndex::build(&t, 1);
        let probe = Record::new(RecordId(99), vec!["sony tv".into()]);
        assert!(idx.candidates(&probe, 1, None).is_empty());
    }

    #[test]
    fn duplicate_probe_tokens_count_once() {
        let t = table();
        let idx = TokenIndex::build(&t, usize::MAX);
        let probe = Record::new(RecordId(99), vec!["sony sony sony".into()]);
        let cands = idx.candidates(&probe, 1, None);
        let c0 = cands.iter().find(|&&(id, _)| id == RecordId(0)).unwrap();
        assert_eq!(c0.1, 1);
    }

    #[test]
    fn vocabulary_size_counts_tokens() {
        let t = table();
        let idx = TokenIndex::build(&t, usize::MAX);
        // sony bravia tv walkman player lg oled bose speaker = 9
        assert_eq!(idx.vocabulary_size(), 9);
    }
}
