//! Token-based blocking: candidate generation via an inverted index.
//!
//! Real ER pipelines never score the full `U × V` cross product; a blocking
//! pass proposes candidate pairs that share evidence. The synthetic benchmark
//! generator uses this index to build realistic *hard negatives* (similar but
//! non-matching pairs) for the train/test splits, and CERTA's triangle search
//! can use it to rank likely support records instead of scanning a whole
//! table. Dataset-scale candidate generation (MinHash/LSH banding and the
//! sorted-neighborhood / token-prefix baselines) lives in `certa-block`,
//! which composes with this index.
//!
//! # Scale contract
//!
//! Both the build and the query path are bounded at million-record scale:
//!
//! * `build` stops growing a token's posting list once it passes
//!   `max_posting` (hyper-common tokens can never drive candidates, so
//!   their lists are capped at `max_posting + 1` entries during the scan
//!   and dropped entirely before `build` returns);
//! * `candidates` dedupes probe tokens through the cached clean-token
//!   spans of the interned values — the hot path allocates no `String`s
//!   per probe token.

use crate::hash::FxHashMap;
use crate::record::{Record, RecordId};
use crate::table::Table;

/// Inverted index from token → record ids containing it, over one table.
#[derive(Debug, Clone)]
pub struct TokenIndex {
    postings: FxHashMap<String, Vec<RecordId>>,
    /// Tokens appearing in more than this many records are dropped at build
    /// time (stop-word behaviour); queries therefore never see them.
    max_posting: usize,
    /// Hyper-common tokens dropped at the end of `build`.
    stop_tokens: usize,
}

impl TokenIndex {
    /// Index every (cleaned) token of every attribute of every record.
    ///
    /// `max_posting` bounds how common a token may be and still drive
    /// candidate generation; pass `usize::MAX` to disable the cutoff.
    ///
    /// Memory is bounded even on stop-word-heavy tables: a posting list
    /// stops growing at `max_posting + 1` entries (just enough to prove the
    /// token is over the cutoff) instead of accumulating one entry per
    /// containing record, and every over-cutoff list is dropped before the
    /// index is returned — so the finished index holds at most
    /// `max_posting` entries per surviving token and zero for stop words.
    pub fn build(table: &Table, max_posting: usize) -> Self {
        let mut postings: FxHashMap<String, Vec<RecordId>> = FxHashMap::default();
        for r in table.records() {
            for value in r.values() {
                // Cleaned tokens are cached on the interned value — indexing
                // re-reads them instead of re-cleaning every string.
                for tok in value.clean_tokens() {
                    match postings.get_mut(tok) {
                        Some(ids) => {
                            // Past the cutoff this token can never drive a
                            // candidate; stop paying memory for it. (The +1
                            // overshoot is what marks the list as oversized
                            // for the retain pass below.)
                            if ids.len() > max_posting {
                                continue;
                            }
                            if ids.last() != Some(&r.id()) {
                                ids.push(r.id());
                            }
                        }
                        None => {
                            // First sighting: the only point the token is
                            // materialized as an owned String.
                            postings.insert(tok.to_string(), vec![r.id()]);
                        }
                    }
                }
            }
        }
        let mut stop_tokens = 0usize;
        if max_posting != usize::MAX {
            postings.retain(|_, ids| {
                if ids.len() > max_posting {
                    stop_tokens += 1;
                    false
                } else {
                    ids.shrink_to_fit();
                    true
                }
            });
        }
        TokenIndex {
            postings,
            max_posting,
            stop_tokens,
        }
    }

    /// Records sharing at least `min_overlap` distinct indexed tokens with
    /// `probe`, ranked by descending overlap count. `exclude` (if given) is
    /// removed from the results — used when searching support records
    /// `w ∈ U \ {u}`.
    ///
    /// Allocation discipline: probe tokens are deduped through the cached
    /// `&str` clean-token spans of the probe's interned values — no `String`
    /// is built per probe token (pinned by `candidates_match_owned_dedupe`).
    pub fn candidates(
        &self,
        probe: &Record,
        min_overlap: usize,
        exclude: Option<RecordId>,
    ) -> Vec<(RecordId, usize)> {
        let mut counts: FxHashMap<RecordId, usize> = FxHashMap::default();
        let mut seen: crate::hash::FxHashSet<&str> = crate::hash::FxHashSet::default();
        for value in probe.values() {
            for tok in value.clean_tokens() {
                if !seen.insert(tok) {
                    continue; // count each distinct probe token once
                }
                if let Some(ids) = self.postings.get(tok) {
                    if ids.len() > self.max_posting {
                        continue;
                    }
                    for &id in ids {
                        if Some(id) != exclude {
                            *counts.entry(id).or_insert(0) += 1;
                        }
                    }
                }
            }
        }
        let mut out: Vec<(RecordId, usize)> = counts
            .into_iter()
            .filter(|&(_, c)| c >= min_overlap)
            .collect();
        // Deterministic order: overlap desc, then id asc.
        out.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Number of distinct indexed tokens (stop words are not counted: they
    /// are dropped at build time).
    pub fn vocabulary_size(&self) -> usize {
        self.postings.len()
    }

    /// Total posting-list entries held by the index — the memory the index
    /// actually retains, which the build-time cutoff bounds.
    pub fn posting_entries(&self) -> usize {
        self.postings.values().map(Vec::len).sum()
    }

    /// Hyper-common tokens that crossed `max_posting` and were dropped at
    /// the end of [`TokenIndex::build`].
    pub fn stop_token_count(&self) -> usize {
        self.stop_tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn table() -> Table {
        let schema = Schema::shared("U", ["name"]);
        Table::from_records(
            schema,
            vec![
                Record::new(RecordId(0), vec!["sony bravia tv".into()]),
                Record::new(RecordId(1), vec!["sony walkman player".into()]),
                Record::new(RecordId(2), vec!["lg oled tv".into()]),
                Record::new(RecordId(3), vec!["bose speaker".into()]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn candidates_ranked_by_overlap() {
        let t = table();
        let idx = TokenIndex::build(&t, usize::MAX);
        let probe = Record::new(RecordId(99), vec!["sony bravia oled tv".into()]);
        let cands = idx.candidates(&probe, 1, None);
        // Record 0 shares sony+bravia+tv (3); record 2 shares oled+tv (2);
        // record 1 shares sony (1).
        assert_eq!(cands[0].0, RecordId(0));
        assert_eq!(cands[0].1, 3);
        assert_eq!(cands[1].0, RecordId(2));
        assert!(cands.iter().all(|&(id, _)| id != RecordId(3)));
    }

    #[test]
    fn exclude_removes_self() {
        let t = table();
        let idx = TokenIndex::build(&t, usize::MAX);
        let probe = t.get(RecordId(0)).unwrap().clone();
        let cands = idx.candidates(&probe, 1, Some(RecordId(0)));
        assert!(cands.iter().all(|&(id, _)| id != RecordId(0)));
        assert!(!cands.is_empty());
    }

    #[test]
    fn min_overlap_filters() {
        let t = table();
        let idx = TokenIndex::build(&t, usize::MAX);
        let probe = Record::new(RecordId(99), vec!["sony bravia oled tv".into()]);
        let cands = idx.candidates(&probe, 2, None);
        assert!(cands.iter().all(|&(_, c)| c >= 2));
    }

    #[test]
    fn stop_tokens_ignored() {
        let t = table();
        // With max_posting = 1, "sony" (2 postings) and "tv" (2 postings)
        // are treated as stop words.
        let idx = TokenIndex::build(&t, 1);
        let probe = Record::new(RecordId(99), vec!["sony tv".into()]);
        assert!(idx.candidates(&probe, 1, None).is_empty());
        assert_eq!(idx.stop_token_count(), 2);
    }

    #[test]
    fn duplicate_probe_tokens_count_once() {
        let t = table();
        let idx = TokenIndex::build(&t, usize::MAX);
        let probe = Record::new(RecordId(99), vec!["sony sony sony".into()]);
        let cands = idx.candidates(&probe, 1, None);
        let c0 = cands.iter().find(|&&(id, _)| id == RecordId(0)).unwrap();
        assert_eq!(c0.1, 1);
    }

    #[test]
    fn vocabulary_size_counts_tokens() {
        let t = table();
        let idx = TokenIndex::build(&t, usize::MAX);
        // sony bravia tv walkman player lg oled bose speaker = 9
        assert_eq!(idx.vocabulary_size(), 9);
        assert_eq!(idx.stop_token_count(), 0);
    }

    /// The build-time cutoff regression: a stop-word-heavy table must not
    /// accumulate O(records) posting entries for its hyper-common tokens.
    /// Before the fix, `build` grew every list unboundedly and only *skipped*
    /// oversized lists at query time — 1000 records sharing "the premium
    /// item" cost 3000 retained entries; now those lists are capped during
    /// the scan and dropped before `build` returns.
    #[test]
    fn build_bounds_memory_on_stop_word_heavy_tables() {
        let n = 1000u32;
        let schema = Schema::shared("U", ["name"]);
        let records: Vec<Record> = (0..n)
            .map(|i| {
                // Three stop words in every record plus one rare token.
                Record::new(RecordId(i), vec![format!("the premium item sku{i}")])
            })
            .collect();
        let table = Table::from_records(schema, records).unwrap();

        let max_posting = 10;
        let idx = TokenIndex::build(&table, max_posting);
        // The three stop words are gone entirely …
        assert_eq!(idx.stop_token_count(), 3);
        assert_eq!(idx.vocabulary_size(), n as usize, "only sku tokens remain");
        // … and retained memory is exactly one entry per rare token, far
        // below the 4 × n entries the unbounded build held.
        assert_eq!(idx.posting_entries(), n as usize);
        // Queries behave like the old skip-at-query-time semantics.
        let probe = Record::new(RecordId(n + 1), vec!["the premium item sku7".into()]);
        let cands = idx.candidates(&probe, 1, None);
        assert_eq!(cands, vec![(RecordId(7), 1)]);
    }

    #[test]
    fn unbounded_build_retains_everything() {
        let t = table();
        let idx = TokenIndex::build(&t, usize::MAX);
        // 4 records × 3,3,3,2 tokens = 11 posting entries, none dropped.
        assert_eq!(idx.posting_entries(), 11);
        assert_eq!(idx.stop_token_count(), 0);
    }

    /// Before/after equivalence for the allocation-free probe dedupe: the
    /// borrowed `&str` seen-set must produce exactly the results of the old
    /// owned-`String` implementation on probes with repeated tokens across
    /// and within attributes.
    #[test]
    fn candidates_match_owned_dedupe() {
        let schema = Schema::shared("U", ["name", "desc"]);
        let records: Vec<Record> = (0..40u32)
            .map(|i| {
                Record::new(
                    RecordId(i),
                    vec![
                        format!("brand{} tv model{}", i % 7, i),
                        format!("brand{} premium tv", i % 7),
                    ],
                )
            })
            .collect();
        let t = Table::from_records(schema, records).unwrap();
        for max_posting in [usize::MAX, 8, 3, 1] {
            let idx = TokenIndex::build(&t, max_posting);
            for probe_id in [0u32, 3, 13, 39] {
                let probe = t.expect(RecordId(probe_id)).clone();
                for min_overlap in [1usize, 2, 3] {
                    let fast = idx.candidates(&probe, min_overlap, Some(probe.id()));
                    // Reference: the pre-fix owned-String dedupe semantics.
                    let mut counts: FxHashMap<RecordId, usize> = FxHashMap::default();
                    let mut seen: crate::hash::FxHashSet<String> =
                        crate::hash::FxHashSet::default();
                    for value in probe.values() {
                        for tok in value.clean_tokens() {
                            if !seen.insert(tok.to_string()) {
                                continue;
                            }
                            if let Some(ids) = idx.postings.get(tok) {
                                if ids.len() > max_posting {
                                    continue;
                                }
                                for &id in ids {
                                    if id != probe.id() {
                                        *counts.entry(id).or_insert(0) += 1;
                                    }
                                }
                            }
                        }
                    }
                    let mut expected: Vec<(RecordId, usize)> = counts
                        .into_iter()
                        .filter(|&(_, c)| c >= min_overlap)
                        .collect();
                    expected.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                    assert_eq!(
                        fast, expected,
                        "probe {probe_id} min_overlap {min_overlap} max_posting {max_posting}"
                    );
                }
            }
        }
    }
}
