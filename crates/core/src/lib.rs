//! # certa-core
//!
//! The entity-resolution (ER) data model underlying the `certa-rs` workspace,
//! a reproduction of *Effective Explanations for Entity Resolution Models*
//! (ICDE 2022).
//!
//! ER matches records from two sets `U` and `V` (possibly with different
//! schemas) that refer to the same real-world entity. This crate provides:
//!
//! * [`Schema`] / [`AttrId`] — named attribute lists for one side;
//! * [`AttrValue`] / [`ValueId`] — interned, copy-on-write attribute values
//!   with cached normalized forms, token spans and content hashes;
//! * [`Record`] / [`RecordId`] — a tuple of interned attribute values;
//! * [`Table`] — a set of records sharing one schema, with id lookup;
//! * [`RecordPair`] and [`LabeledPair`] — candidate pairs, optionally labeled;
//! * [`Matcher`] — the *black-box* classifier interface every explainer in the
//!   workspace is written against (`score(u, v) -> [0, 1]`);
//! * [`Dataset`] — two tables plus ground truth and train/test splits;
//! * [`tokens`] — whitespace tokenization shared by matchers and perturbers;
//! * [`blocking`] — a token inverted index for candidate generation;
//! * [`hash`] — a fast non-cryptographic hasher (FxHash) used for caches.
//!
//! The paper treats the deep-learning matcher strictly as a black box; the
//! [`Matcher`] trait enforces the same boundary here, so the CERTA explainer
//! and all baselines cannot observe model internals.

pub mod blocking;
pub mod dataset;
pub mod error;
pub mod hash;
pub mod lockcheck;
pub mod matcher;
pub mod pair;
pub mod record;
pub mod schema;
pub mod table;
pub mod tokens;
pub mod value;

pub use dataset::{Dataset, SideStats, Split};
pub use error::{CoreError, Result};
pub use hash::{FxHashMap, FxHashSet, FxHasher};
pub use matcher::{BoxedMatcher, FnMatcher, Matcher, Prediction};
pub use pair::{LabeledPair, MatchLabel, RecordPair, Side};
pub use record::{Record, RecordId};
pub use schema::{AttrId, Schema};
pub use table::Table;
pub use value::{AttrValue, ValueId};
