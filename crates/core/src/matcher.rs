//! The black-box matcher interface.
//!
//! Every explainer in the workspace — CERTA and all baselines — interacts
//! with an ER model exclusively through [`Matcher::score`]. This mirrors the
//! paper's post-hoc, model-agnostic setting: the explainers may *call* the
//! classifier on (possibly perturbed) record pairs but can never inspect its
//! parameters.

use crate::pair::MatchLabel;
use crate::record::Record;
use std::sync::Arc;

/// A binary ER classifier producing a matching score in `[0, 1]`.
pub trait Matcher: Send + Sync {
    /// Human-readable model name (e.g. `"deeper-sim"`).
    fn name(&self) -> &str;

    /// Matching score for the pair `⟨u, v⟩`; `score > 0.5` means Match.
    fn score(&self, u: &Record, v: &Record) -> f64;

    /// Matching scores for a batch of pairs, in input order.
    ///
    /// The default delegates to [`Matcher::score`] pair-by-pair. Models whose
    /// forward pass amortizes across inputs (feature extraction, matrix
    /// forward passes, cache lookups) should override this; the override
    /// **must** return exactly `score(u, v)` per pair — batch explainers and
    /// the score caches rely on the two paths being value-identical.
    fn score_batch(&self, pairs: &[(&Record, &Record)]) -> Vec<f64> {
        pairs.iter().map(|(u, v)| self.score(u, v)).collect()
    }

    /// Thresholded prediction — the paper's `M(⟨u, v⟩)`.
    fn predict(&self, u: &Record, v: &Record) -> MatchLabel {
        MatchLabel::from_score(self.score(u, v))
    }

    /// Full prediction (score + label) in one call.
    fn prediction(&self, u: &Record, v: &Record) -> Prediction {
        Prediction::from_score(self.score(u, v))
    }
}

/// Shared, type-erased matcher handle. Explainers and the experiment grid
/// store these; `Arc` keeps them cheaply cloneable across threads.
pub type BoxedMatcher = Arc<dyn Matcher>;

/// A matcher output: the raw score and its thresholded label.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Matching score in `[0, 1]`.
    pub score: f64,
    /// `score > 0.5` ⇒ Match.
    pub label: MatchLabel,
}

impl Prediction {
    /// Threshold a score into a prediction.
    pub fn from_score(score: f64) -> Self {
        debug_assert!(
            (0.0..=1.0).contains(&score) || score.is_nan(),
            "matcher scores must lie in [0,1], got {score}"
        );
        Prediction {
            score,
            label: MatchLabel::from_score(score),
        }
    }

    /// True when the predicted label is Match.
    pub fn is_match(&self) -> bool {
        self.label.is_match()
    }
}

/// Blanket impl so `Arc<dyn Matcher>` and `&M` satisfy `Matcher` bounds.
/// `score_batch` is forwarded explicitly so wrappers never silently fall
/// back to the sequential default and drop a model's vectorized override.
impl<M: Matcher + ?Sized> Matcher for &M {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn score(&self, u: &Record, v: &Record) -> f64 {
        (**self).score(u, v)
    }
    fn score_batch(&self, pairs: &[(&Record, &Record)]) -> Vec<f64> {
        (**self).score_batch(pairs)
    }
}

impl<M: Matcher + ?Sized> Matcher for Arc<M> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn score(&self, u: &Record, v: &Record) -> f64 {
        (**self).score(u, v)
    }
    fn score_batch(&self, pairs: &[(&Record, &Record)]) -> Vec<f64> {
        (**self).score_batch(pairs)
    }
}

/// A trivially scriptable matcher for tests: scores come from a closure.
///
/// Exposed publicly because every downstream crate's test suite needs a
/// controllable black box (e.g. "flip when Name is copied").
pub struct FnMatcher<F> {
    name: String,
    f: F,
}

impl<F> FnMatcher<F>
where
    F: Fn(&Record, &Record) -> f64 + Send + Sync,
{
    /// Wrap a scoring closure as a [`Matcher`].
    pub fn new(name: impl Into<String>, f: F) -> Self {
        FnMatcher {
            name: name.into(),
            f,
        }
    }
}

impl<F> Matcher for FnMatcher<F>
where
    F: Fn(&Record, &Record) -> f64 + Send + Sync,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn score(&self, u: &Record, v: &Record) -> f64 {
        (self.f)(u, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordId;

    fn rec(id: u32, vals: &[&str]) -> Record {
        Record::new(RecordId(id), vals.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn fn_matcher_scores_and_predicts() {
        let m = FnMatcher::new("const", |_u: &Record, _v: &Record| 0.9);
        let u = rec(0, &["a"]);
        let v = rec(1, &["a"]);
        assert_eq!(m.name(), "const");
        assert_eq!(m.score(&u, &v), 0.9);
        assert_eq!(m.predict(&u, &v), MatchLabel::Match);
        assert!(m.prediction(&u, &v).is_match());
    }

    #[test]
    fn boxed_matcher_is_usable_through_arc() {
        let m: BoxedMatcher = Arc::new(FnMatcher::new("c", |_: &Record, _: &Record| 0.2));
        let u = rec(0, &["a"]);
        let v = rec(1, &["b"]);
        assert_eq!(m.predict(&u, &v), MatchLabel::NonMatch);
        // Arc<dyn Matcher> itself implements Matcher (blanket impl).
        fn takes_matcher(m: impl Matcher) -> f64 {
            let u = Record::new(RecordId(0), vec!["a".into()]);
            m.score(&u, &u)
        }
        assert_eq!(takes_matcher(m.clone()), 0.2);
    }

    #[test]
    fn prediction_threshold() {
        assert!(Prediction::from_score(0.51).is_match());
        assert!(!Prediction::from_score(0.5).is_match());
    }

    #[test]
    fn score_batch_default_matches_sequential_scores() {
        let m = FnMatcher::new("len", |u: &Record, _v: &Record| {
            (u.values()[0].len() as f64 / 10.0).min(1.0)
        });
        let records: Vec<Record> = (0..4u32)
            .map(|i| Record::new(RecordId(i), vec!["x".repeat(i as usize + 1)]))
            .collect();
        let pairs: Vec<(&Record, &Record)> = records.iter().zip(records.iter().rev()).collect();
        let batch = m.score_batch(&pairs);
        assert_eq!(batch.len(), pairs.len());
        for ((u, v), s) in pairs.iter().zip(&batch) {
            assert_eq!(*s, m.score(u, v));
        }
        assert!(m.score_batch(&[]).is_empty());
    }

    #[test]
    fn score_batch_forwards_through_wrappers() {
        /// A matcher whose batch path is deliberately distinguishable so the
        /// test can observe whether a wrapper preserved the override.
        struct MarkedBatch;
        impl Matcher for MarkedBatch {
            fn name(&self) -> &str {
                "marked"
            }
            fn score(&self, _u: &Record, _v: &Record) -> f64 {
                0.25
            }
            fn score_batch(&self, pairs: &[(&Record, &Record)]) -> Vec<f64> {
                vec![0.75; pairs.len()]
            }
        }
        let u = rec(0, &["a"]);
        let v = rec(1, &["b"]);
        let pairs = [(&u, &v)];
        let direct = MarkedBatch;
        assert_eq!(direct.score_batch(&pairs), vec![0.75]);
        let by_ref: &dyn Matcher = &MarkedBatch;
        assert_eq!(by_ref.score_batch(&pairs), vec![0.75]);
        let arced: BoxedMatcher = Arc::new(MarkedBatch);
        assert_eq!(arced.score_batch(&pairs), vec![0.75]);
        let arced_ref: &BoxedMatcher = &arced;
        assert_eq!(arced_ref.score_batch(&pairs), vec![0.75]);
    }
}
