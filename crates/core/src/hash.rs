//! A fast, deterministic, non-cryptographic hasher (FxHash).
//!
//! The explainers in this workspace hammer hash maps with short string keys
//! (tokens, attribute subsets, record content hashes). The standard library's
//! SipHash is collision-resistant but slow for these workloads; FxHash — the
//! multiply-xor hash used by rustc — is a better fit and keeps us dependency
//! free. Determinism also matters: prediction caches keyed by content hash
//! must behave identically across runs for the experiments to be reproducible.

use std::hash::{BuildHasherDefault, Hash, Hasher};

const SEED64: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The rustc FxHash hasher: `hash = (hash.rotate_left(5) ^ word) * SEED`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED64);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            self.add_to_hash(word);
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = 0u64;
            for (i, b) in rem.iter().enumerate() {
                word |= u64::from(*b) << (8 * i);
            }
            // Mix in the length so "a" and "a\0" (as prefixes) differ.
            self.add_to_hash(word ^ (rem.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

/// Hash any `Hash` value with [`FxHasher`] in one call.
///
/// Used for content-addressing perturbed records in prediction caches.
#[inline]
pub fn fx_hash_one<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_calls() {
        assert_eq!(fx_hash_one(&"sony bravia"), fx_hash_one(&"sony bravia"));
        assert_eq!(fx_hash_one(&42u64), fx_hash_one(&42u64));
    }

    #[test]
    fn distinguishes_close_strings() {
        assert_ne!(fx_hash_one(&"sony"), fx_hash_one(&"sonya"));
        assert_ne!(fx_hash_one(&""), fx_hash_one(&" "));
        assert_ne!(fx_hash_one(&"ab"), fx_hash_one(&"ba"));
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        m.insert("a".into(), 1);
        m.insert("b".into(), 2);
        assert_eq!(m.get("a"), Some(&1));

        let mut s: FxHashSet<u32> = FxHashSet::default();
        s.insert(7);
        assert!(s.contains(&7));
    }

    #[test]
    fn long_inputs_hash_by_full_content() {
        let a = "x".repeat(1000);
        let mut b = a.clone();
        b.replace_range(999..1000, "y");
        assert_ne!(fx_hash_one(&a), fx_hash_one(&b));
    }

    #[test]
    fn remainder_length_is_mixed_in() {
        // Byte strings that would collide if the tail length were ignored.
        let mut h1 = FxHasher::default();
        h1.write(&[1, 0]);
        let mut h2 = FxHasher::default();
        h2.write(&[1]);
        assert_ne!(h1.finish(), h2.finish());
    }
}
