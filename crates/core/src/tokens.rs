//! Whitespace tokenization and token-sequence helpers.
//!
//! The paper's perturbing function ψ and its data-augmentation scheme (§3.3)
//! operate on "sequences of tokens (strings separated by white space)". All
//! matchers and explainers in the workspace share this single tokenizer so a
//! perturbed record round-trips exactly.

/// Iterate an attribute value's whitespace-separated tokens without
/// allocating.
///
/// This is the allocation-free primitive behind [`tokenize`],
/// [`token_count`], [`normalize_ws`] and the `drop_*_k` helpers; hot callers
/// (blocking, similarity measures, augmentation) route through it so the
/// per-call `Vec<&str>` the old API forced never materializes.
#[inline]
pub fn tokens(value: &str) -> std::str::SplitWhitespace<'_> {
    value.split_whitespace()
}

/// Split an attribute value into whitespace-separated tokens.
///
/// Empty values (the `NaN` cells of Figure 1) yield an empty vector. Prefer
/// [`tokens`] when the collection is consumed once — it avoids the `Vec`.
pub fn tokenize(value: &str) -> Vec<&str> {
    tokens(value).collect()
}

/// Number of whitespace-separated tokens in `value`.
pub fn token_count(value: &str) -> usize {
    tokens(value).count()
}

/// Re-join tokens with single spaces (the inverse of [`tokenize`] up to
/// whitespace normalization).
pub fn join(tokens: &[&str]) -> String {
    tokens.join(" ")
}

/// Join any token iterator with single spaces, without an intermediate
/// `Vec<&str>`.
pub fn join_iter<'a>(tokens: impl IntoIterator<Item = &'a str>) -> String {
    let mut out = String::new();
    for t in tokens {
        if !out.is_empty() {
            out.push(' ');
        }
        out.push_str(t);
    }
    out
}

/// Normalize a value to its canonical single-spaced form.
pub fn normalize_ws(value: &str) -> String {
    join_iter(tokens(value))
}

/// Drop the first `k` tokens of `value` (used by the paper's data
/// augmentation: "dropping the first-k or the last-k tokens").
///
/// Returns `None` when `k` is zero or would leave no tokens, since the
/// augmentation scheme requires `1 <= k <= n - 1`.
pub fn drop_first_k(value: &str, k: usize) -> Option<String> {
    let n = token_count(value);
    if k == 0 || k >= n {
        return None;
    }
    Some(join_iter(tokens(value).skip(k)))
}

/// Drop the last `k` tokens of `value`; same bounds as [`drop_first_k`].
pub fn drop_last_k(value: &str, k: usize) -> Option<String> {
    let n = token_count(value);
    if k == 0 || k >= n {
        return None;
    }
    Some(join_iter(tokens(value).take(n - k)))
}

/// Lowercase and strip non-alphanumeric characters (keeping digits, letters
/// and whitespace). Matchers use this as a light normalization pass.
pub fn clean(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        if c.is_alphanumeric() {
            for lc in c.to_lowercase() {
                out.push(lc);
            }
        } else if c.is_whitespace() || c == '-' || c == '/' || c == '.' {
            out.push(' ');
        }
    }
    normalize_ws(&out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn tokenize_basic() {
        assert_eq!(
            tokenize("sony bravia theater"),
            vec!["sony", "bravia", "theater"]
        );
        assert_eq!(tokenize("  spaced   out  "), vec!["spaced", "out"]);
        assert!(tokenize("").is_empty());
        assert!(tokenize("   ").is_empty());
    }

    #[test]
    fn token_count_matches_tokenize() {
        for s in ["", "a", "a b", " a  b   c "] {
            assert_eq!(token_count(s), tokenize(s).len());
        }
    }

    #[test]
    fn drop_first_and_last() {
        assert_eq!(drop_first_k("a b c", 1).as_deref(), Some("b c"));
        assert_eq!(drop_first_k("a b c", 2).as_deref(), Some("c"));
        assert_eq!(drop_first_k("a b c", 3), None);
        assert_eq!(drop_first_k("a b c", 0), None);
        assert_eq!(drop_last_k("a b c", 1).as_deref(), Some("a b"));
        assert_eq!(drop_last_k("a b c", 2).as_deref(), Some("a"));
        assert_eq!(drop_last_k("a", 1), None);
        assert_eq!(drop_last_k("", 1), None);
    }

    #[test]
    fn iterator_tokenizer_matches_vec_tokenizer() {
        for s in ["", "   ", "a", " a  b   c ", "sony bravia theater"] {
            assert_eq!(tokens(s).collect::<Vec<_>>(), tokenize(s));
            assert_eq!(join_iter(tokens(s)), join(&tokenize(s)));
        }
    }

    #[test]
    fn clean_strips_punctuation_and_case() {
        assert_eq!(clean("Sony BRAVIA, DAV-IS50/B!"), "sony bravia dav is50 b");
        assert_eq!(clean("379.72"), "379 72");
        assert_eq!(clean(""), "");
    }

    proptest! {
        #[test]
        fn normalize_is_idempotent(s in "[ a-z0-9]{0,40}") {
            let once = normalize_ws(&s);
            prop_assert_eq!(normalize_ws(&once), once);
        }

        #[test]
        fn drop_first_reduces_count(s in "[a-z]{1,6}( [a-z]{1,6}){1,8}", k in 1usize..4) {
            let n = token_count(&s);
            prop_assume!(k < n);
            let dropped = drop_first_k(&s, k).unwrap();
            prop_assert_eq!(token_count(&dropped), n - k);
        }

        #[test]
        fn drop_last_keeps_prefix(s in "[a-z]{1,6}( [a-z]{1,6}){1,8}") {
            let toks = tokenize(&s).iter().map(|t| t.to_string()).collect::<Vec<_>>();
            if let Some(d) = drop_last_k(&s, 1) {
                let dt = tokenize(&d).iter().map(|t| t.to_string()).collect::<Vec<_>>();
                prop_assert_eq!(&toks[..toks.len() - 1], &dt[..]);
            }
        }

        #[test]
        fn join_tokenize_roundtrip(s in "[a-z]{1,6}( [a-z]{1,6}){0,8}") {
            let toks = tokenize(&s);
            prop_assert_eq!(join(&toks), normalize_ws(&s));
        }
    }
}
