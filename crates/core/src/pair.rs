//! Record pairs, match labels, and side designators.

use crate::record::RecordId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which source a record (or attribute) belongs to.
///
/// The paper's saliency explanations cover `A_U ∪ A_V`; a `(Side, AttrId)`
/// pair addresses one attribute in that union. Open triangles are likewise
/// `Left` (support from `U`) or `Right` (support from `V`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Side {
    /// The `U` table (the paper's left/free side for left triangles).
    Left,
    /// The `V` table.
    Right,
}

impl Side {
    /// The opposite side.
    pub fn other(self) -> Side {
        match self {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        }
    }

    /// Both sides, left first.
    pub fn both() -> [Side; 2] {
        [Side::Left, Side::Right]
    }
}

impl fmt::Display for Side {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Side::Left => write!(f, "L"),
            Side::Right => write!(f, "R"),
        }
    }
}

/// A candidate pair `(u, v) ∈ U × V`, referenced by record ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RecordPair {
    /// Id of the `U`-side record.
    pub left: RecordId,
    /// Id of the `V`-side record.
    pub right: RecordId,
}

impl RecordPair {
    /// Build a pair from raw ids.
    pub fn new(left: RecordId, right: RecordId) -> Self {
        RecordPair { left, right }
    }

    /// The id on the requested side.
    pub fn on(self, side: Side) -> RecordId {
        match side {
            Side::Left => self.left,
            Side::Right => self.right,
        }
    }
}

impl fmt::Display for RecordPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.left, self.right)
    }
}

/// Ground-truth or predicted match status.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MatchLabel {
    /// The records refer to the same entity (`E+`).
    Match,
    /// The records refer to different entities (`E-`).
    NonMatch,
}

impl MatchLabel {
    /// Threshold a matching score at 0.5, the paper's convention
    /// ("score > 0.5 corresponds to Match").
    pub fn from_score(score: f64) -> Self {
        if score > 0.5 {
            MatchLabel::Match
        } else {
            MatchLabel::NonMatch
        }
    }

    /// Build from a boolean (`true` = match).
    pub fn from_bool(is_match: bool) -> Self {
        if is_match {
            MatchLabel::Match
        } else {
            MatchLabel::NonMatch
        }
    }

    /// `true` for [`MatchLabel::Match`].
    pub fn is_match(self) -> bool {
        matches!(self, MatchLabel::Match)
    }

    /// The flipped label — the paper's `ȳ`.
    pub fn flipped(self) -> Self {
        match self {
            MatchLabel::Match => MatchLabel::NonMatch,
            MatchLabel::NonMatch => MatchLabel::Match,
        }
    }
}

impl fmt::Display for MatchLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatchLabel::Match => write!(f, "Match"),
            MatchLabel::NonMatch => write!(f, "Non-Match"),
        }
    }
}

/// A pair with its ground-truth label, as found in train/test splits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LabeledPair {
    /// The candidate pair.
    pub pair: RecordPair,
    /// Ground-truth match status.
    pub label: MatchLabel,
}

impl LabeledPair {
    /// Build a labeled pair.
    pub fn new(left: RecordId, right: RecordId, is_match: bool) -> Self {
        LabeledPair {
            pair: RecordPair::new(left, right),
            label: MatchLabel::from_bool(is_match),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn side_other_and_both() {
        assert_eq!(Side::Left.other(), Side::Right);
        assert_eq!(Side::Right.other(), Side::Left);
        assert_eq!(Side::both(), [Side::Left, Side::Right]);
        assert_eq!(Side::Left.to_string(), "L");
    }

    #[test]
    fn pair_on_side() {
        let p = RecordPair::new(RecordId(3), RecordId(9));
        assert_eq!(p.on(Side::Left), RecordId(3));
        assert_eq!(p.on(Side::Right), RecordId(9));
        assert_eq!(p.to_string(), "(r3, r9)");
    }

    #[test]
    fn label_threshold_follows_paper() {
        assert_eq!(MatchLabel::from_score(0.51), MatchLabel::Match);
        assert_eq!(MatchLabel::from_score(0.5), MatchLabel::NonMatch); // strictly greater
        assert_eq!(MatchLabel::from_score(0.01), MatchLabel::NonMatch);
    }

    #[test]
    fn label_flip_is_involution() {
        for l in [MatchLabel::Match, MatchLabel::NonMatch] {
            assert_eq!(l.flipped().flipped(), l);
            assert_ne!(l.flipped(), l);
        }
    }

    #[test]
    fn labeled_pair_construction() {
        let lp = LabeledPair::new(RecordId(1), RecordId(2), true);
        assert!(lp.label.is_match());
        assert_eq!(lp.pair.left, RecordId(1));
    }
}
