//! Interned, copy-on-write attribute values.
//!
//! CERTA's cost is dominated by scoring perturbed copies `ψ(u, w, A)` (§3),
//! and every perturbed copy used to materialize fresh `String`s that each
//! matcher then re-cleaned and re-tokenized from scratch. [`AttrValue`] is the
//! fix: a **hash-consed handle** to an immutable value. Interning guarantees
//! that two equal strings share one allocation, so:
//!
//! * cloning a value (and therefore perturbing a record) is a reference-count
//!   bump — zero string allocation;
//! * the normalized ([`crate::tokens::clean`]) form, whitespace token spans,
//!   and FxHash content hash are computed **once per distinct string** and
//!   cached on the shared allocation;
//! * every distinct value carries a stable [`ValueId`], which downstream
//!   layers (the `certa-models` featurizer memo) use as a compact memoization
//!   key for per-value and per-value-pair feature artifacts.
//!
//! # `ValueId` stability rules
//!
//! * Ids are **process-local**: they are dense `u32`s handed out in
//!   first-intern order by a global interner. Never persist them, never
//!   compare them across processes — use [`AttrValue::content_hash`] (a pure
//!   function of the string content) for anything that outlives the process.
//! * Within one process, `a.id() == b.id()` **iff** `a.as_str() == b.as_str()`.
//!   Ids are never reused and interned values are never freed, so a memo
//!   entry keyed by `ValueId` stays valid for the process lifetime.
//! * The interner grows monotonically. Its population is bounded by the
//!   distinct attribute strings ever constructed (dataset values plus
//!   augmentation variants); perturbation itself creates **no** new values —
//!   ψ only re-combines existing handles. Services that intern **untrusted**
//!   strings (e.g. `certa-serve` accepting inline records) should treat the
//!   interner as append-only state: per-request growth is bounded by the
//!   request-size limit, but adversarial traffic with ever-novel values
//!   accumulates — front such deployments with quotas, exactly as for the
//!   equally append-only score cache.
//!
//! # Determinism contract
//!
//! Everything cached here ([`AttrValue::cleaned`], token spans,
//! [`AttrValue::content_hash`]) is a pure function of the string content, so
//! records built from raw strings and records assembled from interned handles
//! are indistinguishable: equal `Display`/`Debug` output, equal `Hash`, equal
//! serde encoding, and equal [`crate::Record::content_hash`]. Property tests
//! in `tests/value_props.rs` pin this.

use crate::hash::{fx_hash_one, FxHashSet};
use crate::tokens;
use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Stable identifier of one distinct interned string within this process.
///
/// See the module docs for the stability rules (process-local, dense,
/// first-intern order, never reused).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub u32);

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Byte span `[start, end)` of one token inside its owning string.
type Span = (u32, u32);

/// The shared, immutable payload behind one interned value.
struct ValueData {
    id: ValueId,
    raw: Box<str>,
    /// FxHash of the raw string content (id-independent, process-portable).
    content_hash: u64,
    /// True when the value is blank after trimming (the `NaN` cells).
    missing: bool,
    /// Whitespace token spans into `raw`.
    raw_tokens: Box<[Span]>,
    /// [`tokens::clean`]-normalized form (lowercased, punctuation folded).
    cleaned: Box<str>,
    /// Whitespace token spans into `cleaned`.
    clean_tokens: Box<[Span]>,
}

fn token_spans(s: &str) -> Box<[Span]> {
    let base = s.as_ptr() as usize;
    s.split_whitespace()
        .map(|tok| {
            let start = tok.as_ptr() as usize - base;
            (start as u32, (start + tok.len()) as u32)
        })
        .collect()
}

impl ValueData {
    fn build(id: ValueId, raw: Box<str>) -> ValueData {
        assert!(
            raw.len() <= u32::MAX as usize,
            "attribute value too large to intern"
        );
        let content_hash = fx_hash_one(&*raw);
        let missing = raw.trim().is_empty();
        let raw_tokens = token_spans(&raw);
        let cleaned: Box<str> = tokens::clean(&raw).into_boxed_str();
        let clean_tokens = token_spans(&cleaned);
        ValueData {
            id,
            raw,
            content_hash,
            missing,
            raw_tokens,
            clean_tokens,
            cleaned,
        }
    }
}

/// A cheap-to-clone, hash-consed attribute value.
///
/// `AttrValue` dereferences to `&str`, compares/hashes like its string
/// content, and serializes as a plain string — it is a drop-in replacement
/// for `String` in the [`crate::Record`] data model, with O(1) clone and
/// cached derived forms. See the module docs for the interning contract.
#[derive(Clone)]
pub struct AttrValue(Arc<ValueData>);

/// Number of independent interner shards (power of two; shard selection is a
/// mask over the content hash, mirroring the score-cache sharding).
const INTERN_SHARDS: usize = 16;

/// Interner entry: hashes and compares as its string content so the shard
/// sets support allocation-free `&str` lookups via `Borrow<str>`.
struct Entry(AttrValue);

impl Borrow<str> for Entry {
    fn borrow(&self) -> &str {
        self.0.as_str()
    }
}

impl Hash for Entry {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.as_str().hash(state);
    }
}

impl PartialEq for Entry {
    fn eq(&self, other: &Entry) -> bool {
        self.0.as_str() == other.0.as_str()
    }
}

impl Eq for Entry {}

struct Interner {
    shards: Vec<Mutex<FxHashSet<Entry>>>,
    next_id: AtomicU32,
}

fn interner() -> &'static Interner {
    static INTERNER: OnceLock<Interner> = OnceLock::new();
    INTERNER.get_or_init(|| Interner {
        shards: (0..INTERN_SHARDS).map(|_| Mutex::default()).collect(),
        next_id: AtomicU32::new(0),
    })
}

impl Interner {
    fn shard(&self, content_hash: u64) -> &Mutex<FxHashSet<Entry>> {
        &self.shards[(content_hash as usize) & (INTERN_SHARDS - 1)]
    }

    /// Number of distinct values interned so far (diagnostic).
    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }
}

/// Allocate the next id and publish a freshly built value into `set` (the
/// caller holds the shard lock and has already established the miss).
fn publish(set: &mut FxHashSet<Entry>, raw: Box<str>) -> AttrValue {
    let id = interner().next_id.fetch_add(1, Ordering::Relaxed);
    assert!(id < u32::MAX, "interner exhausted the ValueId space");
    let value = AttrValue(Arc::new(ValueData::build(ValueId(id), raw)));
    set.insert(Entry(value.clone()));
    value
}

fn intern_owned(s: String) -> AttrValue {
    let interner = interner();
    let mut set = interner
        .shard(fx_hash_one(s.as_str()))
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    if let Some(entry) = set.get(s.as_str()) {
        return entry.0.clone();
    }
    // Miss: move the caller's allocation straight into the interner.
    publish(&mut set, s.into_boxed_str())
}

impl AttrValue {
    /// Intern a string, returning the canonical shared handle for its
    /// content. Two calls with equal content return clones of one `Arc`.
    pub fn intern(s: &str) -> AttrValue {
        let interner = interner();
        let mut set = interner
            .shard(fx_hash_one(s))
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if let Some(entry) = set.get(s) {
            return entry.0.clone();
        }
        publish(&mut set, s.into())
    }

    /// Number of distinct values interned in this process (diagnostic; the
    /// interner never shrinks).
    pub fn interned_count() -> usize {
        interner().len()
    }

    /// Snapshot of every value interned so far, in no particular order.
    ///
    /// This is the reverse-lookup path for process-local [`ValueId`]s: layers
    /// that keep `ValueId`-keyed state (the `certa-models` featurization
    /// memo) use it to translate ids back to portable string content before
    /// persisting — ids themselves must never leave the process (see the
    /// module docs). O(distinct values); takes each shard lock briefly.
    pub fn all_interned() -> Vec<AttrValue> {
        interner()
            .shards
            .iter()
            .flat_map(|s| {
                s.lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .iter()
                    .map(|e| e.0.clone())
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    /// The stable per-process id of this distinct string (see module docs).
    #[inline]
    pub fn id(&self) -> ValueId {
        self.0.id
    }

    /// The raw string content.
    #[inline]
    pub fn as_str(&self) -> &str {
        &self.0.raw
    }

    /// FxHash of the raw content — a pure content function (no id mixed in),
    /// cached at intern time. [`crate::Record::content_hash`] folds these.
    #[inline]
    pub fn content_hash(&self) -> u64 {
        self.0.content_hash
    }

    /// True when the value is blank after trimming (a `NaN` cell).
    #[inline]
    pub fn is_missing(&self) -> bool {
        self.0.missing
    }

    /// Whitespace tokens of the raw value, from cached spans (no allocation).
    pub fn tokens(&self) -> impl ExactSizeIterator<Item = &str> + Clone + '_ {
        let raw: &str = &self.0.raw;
        self.0
            .raw_tokens
            .iter()
            .map(move |&(a, b)| &raw[a as usize..b as usize])
    }

    /// Number of whitespace tokens in the raw value.
    #[inline]
    pub fn token_count(&self) -> usize {
        self.0.raw_tokens.len()
    }

    /// The [`tokens::clean`]-normalized form, computed once at intern time.
    #[inline]
    pub fn cleaned(&self) -> &str {
        &self.0.cleaned
    }

    /// Whitespace tokens of the cleaned form, from cached spans.
    pub fn clean_tokens(&self) -> impl ExactSizeIterator<Item = &str> + Clone + '_ {
        let cleaned: &str = &self.0.cleaned;
        self.0
            .clean_tokens
            .iter()
            .map(move |&(a, b)| &cleaned[a as usize..b as usize])
    }

    /// Number of whitespace tokens in the cleaned form.
    #[inline]
    pub fn clean_token_count(&self) -> usize {
        self.0.clean_tokens.len()
    }

    /// True when two handles point at the same interned allocation (always
    /// the case for equal content produced through [`AttrValue::intern`]).
    pub fn ptr_eq(a: &AttrValue, b: &AttrValue) -> bool {
        Arc::ptr_eq(&a.0, &b.0)
    }
}

impl Deref for AttrValue {
    type Target = str;

    #[inline]
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for AttrValue {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl Borrow<str> for AttrValue {
    fn borrow(&self) -> &str {
        self.as_str()
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for AttrValue {
    /// Debug-transparent: prints like the `String` it replaces, so record
    /// debug output is unchanged by the interning refactor.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

impl Hash for AttrValue {
    /// Hashes exactly like `str`/`String`, upholding the `Borrow<str>`
    /// contract (an `AttrValue` key is interchangeable with a `&str` lookup).
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_str().hash(state);
    }
}

impl PartialEq for AttrValue {
    fn eq(&self, other: &AttrValue) -> bool {
        // Hash-consing makes pointer identity the common fast path.
        Arc::ptr_eq(&self.0, &other.0) || self.as_str() == other.as_str()
    }
}

impl Eq for AttrValue {}

impl PartialOrd for AttrValue {
    fn partial_cmp(&self, other: &AttrValue) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for AttrValue {
    fn cmp(&self, other: &AttrValue) -> std::cmp::Ordering {
        self.as_str().cmp(other.as_str())
    }
}

impl PartialEq<str> for AttrValue {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for AttrValue {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<String> for AttrValue {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other.as_str()
    }
}

impl PartialEq<AttrValue> for str {
    fn eq(&self, other: &AttrValue) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<AttrValue> for &str {
    fn eq(&self, other: &AttrValue) -> bool {
        *self == other.as_str()
    }
}

impl PartialEq<AttrValue> for String {
    fn eq(&self, other: &AttrValue) -> bool {
        self.as_str() == other.as_str()
    }
}

impl From<&str> for AttrValue {
    fn from(s: &str) -> AttrValue {
        AttrValue::intern(s)
    }
}

impl From<String> for AttrValue {
    fn from(s: String) -> AttrValue {
        intern_owned(s)
    }
}

impl From<&String> for AttrValue {
    fn from(s: &String) -> AttrValue {
        AttrValue::intern(s)
    }
}

impl From<&AttrValue> for AttrValue {
    fn from(v: &AttrValue) -> AttrValue {
        v.clone()
    }
}

impl From<&AttrValue> for String {
    fn from(v: &AttrValue) -> String {
        v.as_str().to_string()
    }
}

impl From<AttrValue> for String {
    fn from(v: AttrValue) -> String {
        v.as_str().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_shares_one_allocation() {
        let a = AttrValue::intern("sony bravia theater");
        let b = AttrValue::intern("sony bravia theater");
        assert!(AttrValue::ptr_eq(&a, &b));
        assert_eq!(a.id(), b.id());
        let c = AttrValue::intern("sony bravia cinema");
        assert!(!AttrValue::ptr_eq(&a, &c));
        assert_ne!(a.id(), c.id());
    }

    #[test]
    fn from_string_and_str_agree() {
        let a = AttrValue::from("black micro system".to_string());
        let b = AttrValue::intern("black micro system");
        assert!(AttrValue::ptr_eq(&a, &b));
    }

    #[test]
    fn cached_forms_match_the_free_functions() {
        let v = AttrValue::intern("  Sony BRAVIA, DAV-IS50/B!  ");
        assert_eq!(v.cleaned(), tokens::clean(v.as_str()));
        assert_eq!(
            v.tokens().collect::<Vec<_>>(),
            v.as_str().split_whitespace().collect::<Vec<_>>()
        );
        assert_eq!(
            v.clean_tokens().collect::<Vec<_>>(),
            v.cleaned().split_whitespace().collect::<Vec<_>>()
        );
        assert_eq!(v.token_count(), 3);
        assert_eq!(v.clean_token_count(), 5);
        assert_eq!(v.content_hash(), fx_hash_one(v.as_str()));
    }

    #[test]
    fn missing_flag_matches_trim() {
        assert!(AttrValue::intern("").is_missing());
        assert!(AttrValue::intern("   ").is_missing());
        assert!(!AttrValue::intern("x").is_missing());
    }

    #[test]
    fn compares_and_displays_like_a_string() {
        let v = AttrValue::intern("sony tv");
        assert_eq!(v, "sony tv");
        assert_eq!(v, "sony tv".to_string());
        assert_eq!("sony tv", v);
        assert_eq!(v.to_string(), "sony tv");
        assert_eq!(format!("{v:?}"), "\"sony tv\"");
        assert!(v.contains("tv"), "str methods available through Deref");
    }

    #[test]
    fn hashes_like_str_for_borrow_contract() {
        let v = AttrValue::intern("davis50b");
        assert_eq!(fx_hash_one(&v), fx_hash_one(&"davis50b".to_string()));
        let mut set: FxHashSet<AttrValue> = FxHashSet::default();
        set.insert(v);
        assert!(set.contains("davis50b"), "&str lookup through Borrow");
    }

    #[test]
    fn all_interned_contains_new_values_with_their_ids() {
        let v = AttrValue::intern("a value only the all_interned test makes 0xC1");
        let all = AttrValue::all_interned();
        let found = all
            .iter()
            .find(|x| x.as_str() == v.as_str())
            .expect("freshly interned value listed");
        assert_eq!(found.id(), v.id());
        assert!(AttrValue::ptr_eq(found, &v));
        // Concurrent tests may intern more values after the snapshot; the
        // monotone interner guarantees only `≤`.
        assert!(all.len() <= AttrValue::interned_count());
    }

    #[test]
    fn interned_count_is_monotone() {
        let before = AttrValue::interned_count();
        let _ = AttrValue::intern("a value that only this test interns 0xB0");
        assert!(AttrValue::interned_count() > before);
        let again = AttrValue::interned_count();
        let _ = AttrValue::intern("a value that only this test interns 0xB0");
        assert_eq!(AttrValue::interned_count(), again, "re-intern adds nothing");
    }
}
