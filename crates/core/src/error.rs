//! Error type shared by the workspace's substrate crates.

use std::fmt;

/// Errors raised by the ER data model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// An attribute name was not found in a schema.
    UnknownAttribute { schema: String, attr: String },
    /// A record id was not present in a table.
    UnknownRecord { table: String, id: u32 },
    /// A record's value count does not match its schema's attribute count.
    ArityMismatch {
        schema: String,
        expected: usize,
        got: usize,
    },
    /// Two sides of a dataset were wired up inconsistently.
    InvalidDataset(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownAttribute { schema, attr } => {
                write!(f, "unknown attribute `{attr}` in schema `{schema}`")
            }
            CoreError::UnknownRecord { table, id } => {
                write!(f, "record id {id} not found in table `{table}`")
            }
            CoreError::ArityMismatch {
                schema,
                expected,
                got,
            } => write!(
                f,
                "record arity mismatch for schema `{schema}`: expected {expected} values, got {got}"
            ),
            CoreError::InvalidDataset(msg) => write!(f, "invalid dataset: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = CoreError::UnknownAttribute {
            schema: "Abt".into(),
            attr: "Nome".into(),
        };
        assert!(e.to_string().contains("Nome"));
        assert!(e.to_string().contains("Abt"));

        let e = CoreError::UnknownRecord {
            table: "Buy".into(),
            id: 7,
        };
        assert!(e.to_string().contains('7'));

        let e = CoreError::ArityMismatch {
            schema: "S".into(),
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains("expected 3"));

        let e = CoreError::InvalidDataset("empty".into());
        assert!(e.to_string().contains("empty"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&CoreError::InvalidDataset("x".into()));
    }
}
