//! Property tests for the certa-lint lexer's totality contract.
//!
//! The lexer promises two things for *any* input, valid Rust or not:
//! it never panics, and its token spans exactly tile the source (start at
//! 0, each token begins where the previous ended, the last ends at
//! `src.len()`, and every boundary is a `char` boundary). These tests
//! drive both promises with adversarial alphabets biased toward the
//! characters that open lexer modes — quotes, `#` fences, `r`/`b`
//! prefixes, comment openers, backslashes and newlines — so truncated
//! and mismatched literals are the common case, not the rare one.

use certa_lint::lexer::{lex, TokKind};
use proptest::collection;
use proptest::prelude::*;

/// Characters that exercise every branch of the lexer: mode openers,
/// fence characters, escapes, plus enough ordinary material to form
/// identifiers, numbers and lifetimes around them.
const ALPHABET: &[char] = &[
    '"', '\'', '#', 'r', 'b', '/', '*', '\\', '\n', ' ', 'a', 'z', '_', '0', '9', '.', 'e', '!',
    '{', '}', '(', ')', '<', '>', '=', '-', 'é', '\t',
];

/// Assert the span-tiling invariant and return the token count.
fn assert_tiles(src: &str) -> Result<usize, TestCaseError> {
    let toks = lex(src);
    let mut pos = 0usize;
    for t in &toks {
        prop_assert_eq!(
            t.start,
            pos,
            "token {:?} does not start where the previous ended in {:?}",
            t.kind,
            src
        );
        prop_assert!(t.end > t.start, "empty token {:?} in {:?}", t.kind, src);
        prop_assert!(
            src.is_char_boundary(t.start) && src.is_char_boundary(t.end),
            "span of {:?} splits a char in {:?}",
            t.kind,
            src
        );
        pos = t.end;
    }
    prop_assert_eq!(pos, src.len(), "tokens do not cover the tail of {:?}", src);
    Ok(toks.len())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    /// Arbitrary soups from the adversarial alphabet lex without panicking
    /// and tile the input exactly.
    #[test]
    fn adversarial_soup_lexes_totally(idx in collection::vec(0usize..28, 0..160)) {
        let src: String = idx.iter().map(|&i| ALPHABET[i % ALPHABET.len()]).collect();
        assert_tiles(&src)?;
    }

    /// Rust-shaped fragments (idents, literals, comments) with injected
    /// quote/fence noise also lex totally.
    #[test]
    fn rust_shaped_fragments_lex_totally(
        head in "[rb]{0,2}[#\"']{0,2}[a-z_]{0,8}",
        mid in "(//)?(/\\*)?[a-z0-9\\. \"'#]{0,12}",
        tail in "[\"'#}\\\\]{0,3}",
    ) {
        let src = format!("{head}{mid}{tail}");
        assert_tiles(&src)?;
    }

    /// Lexing is a pure function: the same input yields byte-identical
    /// token streams on repeated calls (the determinism contract the lint
    /// itself enforces elsewhere).
    #[test]
    fn lexing_is_deterministic(idx in collection::vec(0usize..28, 0..120)) {
        let src: String = idx.iter().map(|&i| ALPHABET[i % ALPHABET.len()]).collect();
        let a = lex(&src);
        let b = lex(&src);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert!(
                x.kind == y.kind && x.start == y.start && x.end == y.end && x.line == y.line,
                "re-lex diverged on {:?}",
                &src
            );
        }
    }

    /// Line numbers are monotonically non-decreasing and count `\n`s.
    #[test]
    fn line_numbers_are_monotone(idx in collection::vec(0usize..28, 0..160)) {
        let src: String = idx.iter().map(|&i| ALPHABET[i % ALPHABET.len()]).collect();
        let toks = lex(&src);
        let mut last = 1u32;
        for t in &toks {
            prop_assert!(t.line >= last, "line went backwards in {:?}", src);
            last = t.line;
        }
        let newlines = src.bytes().filter(|&b| b == b'\n').count() as u32;
        prop_assert!(last <= newlines + 1, "line overshot newline count in {:?}", src);
    }
}

/// Deterministic regression corpus: every historically tricky shape in one
/// place, checked by the same tiling helper the properties use.
#[test]
fn corpus_of_tricky_inputs_tiles() {
    let corpus: &[&str] = &[
        "",
        "\"",
        "'",
        "r\"",
        "r#\"",
        "r#\"unterminated",
        "r###\"deep fence\"#",
        "b\"bytes",
        "br##\"raw bytes\"#",
        "b'",
        "b'x",
        "'a",
        "'a'",
        "''",
        "/*",
        "/* /* nested */",
        "// line comment with \\ backslash",
        "\"escape at eof \\",
        "'\\",
        "1e",
        "1e+",
        "0x",
        "0..10",
        "1.0f64",
        "r#fn",
        "r#",
        "br",
        "b",
        "r",
        "#\"not a raw string\"",
        "é'é\"é",
        "\u{0}\u{1}\"\u{0}",
    ];
    for src in corpus {
        let toks = lex(src);
        let mut pos = 0usize;
        for t in &toks {
            assert_eq!(t.start, pos, "gap before {:?} in {src:?}", t.kind);
            pos = t.end;
        }
        assert_eq!(pos, src.len(), "tail uncovered in {src:?}");
        if src.is_empty() {
            assert!(toks.is_empty());
        } else {
            assert!(!toks.is_empty());
            assert!(toks
                .iter()
                .all(|t| t.kind != TokKind::Whitespace || t.end > t.start));
        }
    }
}
