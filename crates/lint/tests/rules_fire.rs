//! Seeded-violation fixtures: one deliberately broken source per rule,
//! proving each of the five rules actually fires and that the JSON report
//! carries the rule id, file, and line a CI consumer would key on.
//!
//! These are the lint's own canaries — if a rule regresses into silence,
//! the corresponding fixture here goes green-on-violation and fails.

use certa_lint::lint_source;
use certa_lint::report::{json, Finding};

/// Lint a fixture and assert the JSON report names `rule` at
/// `(file, line)` as a non-allowed finding. Returns the findings for
/// further assertions.
fn assert_fires(rule: &str, file: &str, src: &str, line: u32) -> Vec<Finding> {
    let findings = lint_source(file, src);
    let hit = findings
        .iter()
        .find(|f| f.rule == rule && f.line == line && f.allowed.is_none());
    assert!(
        hit.is_some(),
        "expected {rule} at {file}:{line}, got: {:#?}",
        findings
    );
    let report = json(&findings, 1, true);
    for needle in [
        &format!("\"rule\":\"{rule}\""),
        &format!("\"file\":\"{file}\""),
        &format!("\"line\":{line}"),
    ] {
        assert!(
            report.contains(needle.as_str()),
            "JSON report missing {needle}: {report}"
        );
    }
    findings
}

#[test]
fn no_panic_path_fires_on_unwrap() {
    let src = "\
pub fn handler(input: Option<u32>) -> u32 {
    input.unwrap()
}
";
    assert_fires("no-panic-path", "crates/serve/src/fixture.rs", src, 2);
}

#[test]
fn no_panic_path_fires_on_slice_index() {
    let src = "\
pub fn first(xs: &[u8]) -> u8 {
    xs[0]
}
";
    assert_fires("no-panic-path", "crates/store/src/fixture.rs", src, 2);
}

#[test]
fn no_unordered_iteration_fires_on_hashmap_for_loop() {
    let src = "\
use std::collections::HashMap;
pub fn render(counts: HashMap<String, u64>, out: &mut String) {
    for (k, v) in counts.iter() {
        out.push_str(k);
        let _ = v;
    }
}
";
    assert_fires(
        "no-unordered-iteration",
        "crates/serve/src/fixture.rs",
        src,
        3,
    );
}

#[test]
fn no_unordered_iteration_stays_quiet_after_sort() {
    let src = "\
use std::collections::HashMap;
pub fn render(counts: HashMap<String, u64>) -> Vec<(String, u64)> {
    let mut rows: Vec<(String, u64)> = counts.into_iter().collect();
    rows.sort();
    rows
}
";
    let findings = lint_source("crates/serve/src/fixture.rs", src);
    assert!(
        findings.iter().all(|f| f.rule != "no-unordered-iteration"),
        "sorted collection still flagged: {findings:#?}"
    );
}

#[test]
fn no_nondeterminism_fires_on_wall_clock() {
    let src = "\
use std::time::Instant;
pub fn score_with_timing(x: f64) -> f64 {
    let t0 = Instant::now();
    let y = x * 2.0;
    let _elapsed = t0.elapsed();
    y
}
";
    assert_fires("no-nondeterminism", "crates/text/src/fixture.rs", src, 3);
}

#[test]
fn no_float_format_fires_on_float_in_format_macro() {
    let src = "\
pub fn render(score: f64) -> String {
    format!(\"score={}\", score * 1.5f64)
}
";
    assert_fires("no-float-format", "crates/serve/src/fixture.rs", src, 2);
}

#[test]
fn lock_order_fires_on_nested_acquisition() {
    let src = "\
pub fn transfer(&self, a: usize, b: usize) {
    let from = self.shards[a].lock();
    let to = self.shards[b].lock();
    let _ = (from, to);
}
";
    assert_fires("lock-order", "crates/models/src/cache.rs", src, 3);
}

#[test]
fn suppression_with_justification_downgrades_to_allowed() {
    let src = "\
pub fn handler(input: Option<u32>) -> u32 {
    // certa-lint: allow(no-panic-path) — fixture exercising the allow path
    input.unwrap()
}
";
    let findings = lint_source("crates/serve/src/fixture.rs", src);
    let f = findings
        .iter()
        .find(|f| f.rule == "no-panic-path")
        .expect("finding should still be reported");
    assert!(f.allowed.is_some(), "allow comment did not attach: {f:#?}");
    let report = json(&findings, 1, true);
    assert!(report.contains("\"allowed\":true"));
    assert!(
        report.contains("\"denied\":0"),
        "allowed finding counted as denied: {report}"
    );
}

#[test]
fn suppression_without_justification_is_a_deny() {
    let src = "\
pub fn handler(input: Option<u32>) -> u32 {
    // certa-lint: allow(no-panic-path)
    input.unwrap()
}
";
    let findings = lint_source("crates/serve/src/fixture.rs", src);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "bad-suppression" && f.line == 2),
        "empty justification not flagged: {findings:#?}"
    );
    // The unwrap itself stays un-allowed: a bad suppression covers nothing.
    assert!(findings
        .iter()
        .any(|f| f.rule == "no-panic-path" && f.allowed.is_none()));
}

#[test]
fn suppression_naming_unknown_rule_is_a_deny() {
    let src = "\
// certa-lint: allow(no-such-rule) — typo'd rule names must not pass silently
pub fn f() {}
";
    let findings = lint_source("crates/serve/src/fixture.rs", src);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "bad-suppression" && f.line == 1),
        "unknown rule name not flagged: {findings:#?}"
    );
}

#[test]
fn test_code_is_exempt() {
    let src = "\
pub fn prod(x: Option<u32>) -> Option<u32> {
    x
}

#[test]
fn check() {
    assert_eq!(prod(Some(1)).unwrap(), 1);
}
";
    let findings = lint_source("crates/serve/src/fixture.rs", src);
    assert!(
        findings.iter().all(|f| f.rule != "no-panic-path"),
        "test-only unwrap/assert flagged: {findings:#?}"
    );
}

#[test]
fn out_of_scope_files_produce_no_findings() {
    let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    let findings = lint_source("crates/eval/src/fixture.rs", src);
    assert!(
        findings.is_empty(),
        "rule fired outside its scope: {findings:#?}"
    );
}
