//! A hand-rolled Rust lexer, just deep enough for token-stream lints.
//!
//! The rules in this crate only need to tell code from non-code: a
//! `unwrap` inside a string literal or a comment is not a finding, and a
//! suppression comment must be recognized wherever it appears. That means
//! the lexer has to get the genuinely tricky parts of Rust's lexical
//! grammar right — nested block comments, raw strings with `#` fences,
//! byte/char literals, and the `'a` lifetime vs `'a'` char ambiguity —
//! while staying robust on arbitrary (even invalid) input:
//!
//! - lexing never panics, for any input byte sequence;
//! - token spans exactly tile the input: `tokens[0].start == 0`, each
//!   token starts where the previous one ended, and the last token ends at
//!   `src.len()`. Unterminated literals/comments swallow the rest of the
//!   input as a single token rather than erroring.
//!
//! Both properties are pinned by proptests in `tests/lexer_props.rs`.

/// Lexical class of a token. Punctuation is one token per character — the
/// analyzer joins multi-character operators itself where it cares (`::`,
/// `..`), which keeps the lexer trivially total.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// A run of whitespace characters.
    Whitespace,
    /// `// ...` up to (not including) the newline.
    LineComment,
    /// `/* ... */`, nesting tracked; unterminated runs to end of input.
    BlockComment,
    /// Identifier or keyword, including raw identifiers (`r#fn`).
    Ident,
    /// `'a` — a quote followed by an identifier with no closing quote.
    Lifetime,
    /// `'x'`, with escapes (`'\n'`, `'\u{1F600}'`, `'\''`).
    CharLit,
    /// `"..."` with escapes; unterminated runs to end of input.
    StrLit,
    /// `r"..."` / `r#"..."#` with any number of `#` fences.
    RawStrLit,
    /// `b"..."` byte string.
    ByteStrLit,
    /// `br"..."` / `br#"..."#` raw byte string.
    ByteRawStrLit,
    /// `b'x'` byte literal.
    ByteLit,
    /// Integer or float literal, including suffixes (`1_000u64`, `1e-6`).
    Num,
    /// A single ASCII punctuation character.
    Punct,
    /// Anything else (stray control or non-ASCII characters).
    Unknown,
}

/// One lexed token: kind plus byte span and 1-based start line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    pub kind: TokKind,
    /// Byte offset of the first byte (always a char boundary).
    pub start: usize,
    /// Byte offset one past the last byte (always a char boundary).
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: u32,
}

impl Token {
    /// The token's text within its source.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.start..self.end).unwrap_or("")
    }
}

/// Cursor over the source with char-boundary-safe peeking.
struct Cursor<'a> {
    src: &'a str,
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<char> {
        self.src.get(self.pos..).and_then(|r| r.chars().next())
    }

    fn peek_at(&self, n_chars: usize) -> Option<char> {
        self.src
            .get(self.pos..)
            .and_then(|r| r.chars().nth(n_chars))
    }

    /// Advance past one char, tracking line numbers.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        if c == '\n' {
            self.line += 1;
        }
        self.pos += c.len_utf8();
        Some(c)
    }

    fn eat_while(&mut self, pred: impl Fn(char) -> bool) {
        while let Some(c) = self.peek() {
            if !pred(c) {
                break;
            }
            self.bump();
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lex `src` into a complete token stream. Never panics; the returned
/// tokens exactly tile the input (see module docs).
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor {
        src,
        pos: 0,
        line: 1,
    };
    let mut out = Vec::new();
    while cur.pos < src.len() {
        let start = cur.pos;
        let line = cur.line;
        let kind = next_kind(&mut cur);
        debug_assert!(cur.pos > start, "lexer must always make progress");
        if cur.pos == start {
            // Unreachable by construction, but never loop forever on a bug.
            cur.bump();
        }
        out.push(Token {
            kind,
            start,
            end: cur.pos,
            line,
        });
    }
    out
}

/// Consume one token starting at the cursor and return its kind.
fn next_kind(cur: &mut Cursor<'_>) -> TokKind {
    let Some(c) = cur.peek() else {
        return TokKind::Unknown;
    };
    if c.is_whitespace() {
        cur.eat_while(|c| c.is_whitespace());
        return TokKind::Whitespace;
    }
    if c == '/' {
        match cur.peek_at(1) {
            Some('/') => {
                cur.eat_while(|c| c != '\n');
                return TokKind::LineComment;
            }
            Some('*') => {
                cur.bump();
                cur.bump();
                block_comment_body(cur);
                return TokKind::BlockComment;
            }
            _ => {
                cur.bump();
                return TokKind::Punct;
            }
        }
    }
    // Raw strings / raw identifiers: r"..."  r#"..."#  r#ident
    if c == 'r' {
        if let Some(kind) = raw_string(cur, TokKind::RawStrLit) {
            return kind;
        }
    }
    // Byte literals: b'x'  b"..."  br#"..."#
    if c == 'b' {
        match cur.peek_at(1) {
            Some('\'') => {
                cur.bump();
                quoted(cur, '\'');
                return TokKind::ByteLit;
            }
            Some('"') => {
                cur.bump();
                quoted(cur, '"');
                return TokKind::ByteStrLit;
            }
            Some('r') => {
                // `br` raw byte string, or an identifier like `broker`.
                let saved = (cur.pos, cur.line);
                cur.bump();
                if let Some(kind) = raw_string(cur, TokKind::ByteRawStrLit) {
                    if kind == TokKind::ByteRawStrLit {
                        return kind;
                    }
                }
                (cur.pos, cur.line) = saved;
            }
            _ => {}
        }
    }
    if is_ident_start(c) {
        cur.eat_while(is_ident_continue);
        return TokKind::Ident;
    }
    if c == '\'' {
        return quote_token(cur);
    }
    if c == '"' {
        quoted(cur, '"');
        return TokKind::StrLit;
    }
    if c.is_ascii_digit() {
        number(cur);
        return TokKind::Num;
    }
    if c.is_ascii() {
        cur.bump();
        return TokKind::Punct;
    }
    cur.bump();
    TokKind::Unknown
}

/// Body of a block comment after the opening `/*`, tracking nesting.
/// Unterminated comments run to end of input.
fn block_comment_body(cur: &mut Cursor<'_>) {
    let mut depth = 1usize;
    while depth > 0 {
        match (cur.peek(), cur.peek_at(1)) {
            (Some('/'), Some('*')) => {
                depth += 1;
                cur.bump();
                cur.bump();
            }
            (Some('*'), Some('/')) => {
                depth -= 1;
                cur.bump();
                cur.bump();
            }
            (Some(_), _) => {
                cur.bump();
            }
            (None, _) => break,
        }
    }
}

/// Try to lex a raw string at `r` (or the string part of `br`). Returns
/// `Some(kind)` for a raw string, `Some(Ident)` after consuming a raw
/// identifier (`r#fn`), or `None` (cursor untouched) when `r` starts a
/// plain identifier.
fn raw_string(cur: &mut Cursor<'_>, kind: TokKind) -> Option<TokKind> {
    // Count `#` fence characters after the `r`.
    let mut hashes = 0usize;
    while cur.peek_at(1 + hashes) == Some('#') {
        hashes += 1;
    }
    match cur.peek_at(1 + hashes) {
        Some('"') => {
            cur.bump(); // r
            for _ in 0..hashes {
                cur.bump();
            }
            cur.bump(); // opening quote
            raw_body(cur, hashes);
            Some(kind)
        }
        // `r#ident` is a raw identifier (exactly one `#`); only meaningful
        // for bare `r`, not `br`.
        Some(c) if hashes == 1 && kind == TokKind::RawStrLit && is_ident_start(c) => {
            cur.bump(); // r
            cur.bump(); // #
            cur.eat_while(is_ident_continue);
            Some(TokKind::Ident)
        }
        _ => None,
    }
}

/// Raw string body: scan for `"` followed by `hashes` `#` characters.
/// No escapes exist in raw strings. Unterminated runs to end of input.
fn raw_body(cur: &mut Cursor<'_>, hashes: usize) {
    while let Some(c) = cur.bump() {
        if c == '"' {
            let mut matched = 0usize;
            while matched < hashes && cur.peek() == Some('#') {
                cur.bump();
                matched += 1;
            }
            if matched == hashes {
                return;
            }
        }
    }
}

/// Body of a `'`-or-`"`-delimited literal with backslash escapes, starting
/// at the opening delimiter. Unterminated runs to end of input.
fn quoted(cur: &mut Cursor<'_>, delim: char) {
    cur.bump(); // opening delimiter
    while let Some(c) = cur.bump() {
        if c == '\\' {
            cur.bump(); // the escaped character, whatever it is
        } else if c == delim {
            return;
        }
    }
}

/// Disambiguate `'` between a lifetime, a char literal, and a stray quote.
fn quote_token(cur: &mut Cursor<'_>) -> TokKind {
    match cur.peek_at(1) {
        // `'\...'` is always a char literal.
        Some('\\') => {
            quoted(cur, '\'');
            TokKind::CharLit
        }
        Some(c) if is_ident_start(c) => {
            // `'a'` char literal vs `'a` lifetime: scan the identifier run
            // and check for a closing quote right after it.
            let mut n = 2usize;
            while cur.peek_at(n).is_some_and(is_ident_continue) {
                n += 1;
            }
            if cur.peek_at(n) == Some('\'') {
                for _ in 0..=n {
                    cur.bump();
                }
                TokKind::CharLit
            } else {
                cur.bump(); // '
                cur.eat_while(is_ident_continue);
                TokKind::Lifetime
            }
        }
        // `'+'` etc: a single non-identifier char then a closing quote.
        Some(c) if c != '\'' && cur.peek_at(2) == Some('\'') => {
            cur.bump();
            cur.bump();
            cur.bump();
            TokKind::CharLit
        }
        _ => {
            cur.bump();
            TokKind::Unknown
        }
    }
}

/// Numeric literal: digits, `_`, suffixes, hex/octal/binary, a decimal
/// point when followed by a digit, and exponent signs (`1e-6`).
fn number(cur: &mut Cursor<'_>) {
    let mut prev = '0';
    cur.eat_while(|c| c.is_ascii_digit());
    loop {
        match cur.peek() {
            Some(c) if c.is_alphanumeric() || c == '_' => {
                prev = c;
                cur.bump();
            }
            // `1.5` continues the number; `0..len` and `x.0` do not reach
            // here (the `.` after a digit only joins when a digit follows).
            Some('.') if cur.peek_at(1).is_some_and(|c| c.is_ascii_digit()) => {
                prev = '.';
                cur.bump();
            }
            // Exponent sign: `1e-6` / `1E+9`.
            Some('+' | '-')
                if matches!(prev, 'e' | 'E')
                    && cur.peek_at(1).is_some_and(|c| c.is_ascii_digit()) =>
            {
                prev = '-';
                cur.bump();
            }
            _ => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src)
            .into_iter()
            .map(|t| t.kind)
            .filter(|k| *k != TokKind::Whitespace)
            .collect()
    }

    fn assert_tiles(src: &str) {
        let toks = lex(src);
        let mut pos = 0;
        for t in &toks {
            assert_eq!(t.start, pos, "gap before token {t:?} in {src:?}");
            assert!(t.end > t.start);
            pos = t.end;
        }
        assert_eq!(pos, src.len(), "tokens must cover all of {src:?}");
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still comment */ b";
        assert_eq!(
            kinds(src),
            vec![TokKind::Ident, TokKind::BlockComment, TokKind::Ident]
        );
        assert_tiles(src);
    }

    #[test]
    fn unterminated_block_comment_runs_to_eof() {
        let src = "x /* never closed /* deeper */";
        assert_eq!(kinds(src), vec![TokKind::Ident, TokKind::BlockComment]);
        assert_tiles(src);
    }

    #[test]
    fn raw_strings_with_fences() {
        let src =
            r####"let s = r#"quote " inside"#; let t = r##"# one fence "# still going"##;"####;
        let k = kinds(src);
        assert_eq!(k.iter().filter(|k| **k == TokKind::RawStrLit).count(), 2);
        assert_tiles(src);
    }

    #[test]
    fn raw_ident_is_ident_not_string() {
        let src = "r#fn r#match";
        assert_eq!(kinds(src), vec![TokKind::Ident, TokKind::Ident]);
        assert_tiles(src);
    }

    #[test]
    fn byte_literals() {
        let src = r##"b'x' b"bytes" br#"raw bytes"# broker"##;
        assert_eq!(
            kinds(src),
            vec![
                TokKind::ByteLit,
                TokKind::ByteStrLit,
                TokKind::ByteRawStrLit,
                TokKind::Ident
            ]
        );
        assert_tiles(src);
    }

    #[test]
    fn lifetime_vs_char_literal() {
        let src = "fn f<'a>(x: &'a str) { let c = 'a'; let nl = '\\n'; let q = '\\''; }";
        let k = kinds(src);
        assert_eq!(k.iter().filter(|k| **k == TokKind::Lifetime).count(), 2);
        assert_eq!(k.iter().filter(|k| **k == TokKind::CharLit).count(), 3);
        assert_tiles(src);
    }

    #[test]
    fn static_lifetime_and_label() {
        let src = "&'static str; 'outer: loop { break 'outer; }";
        let k = kinds(src);
        assert_eq!(k.iter().filter(|k| **k == TokKind::Lifetime).count(), 3);
        assert_tiles(src);
    }

    #[test]
    fn strings_with_escapes_hide_code() {
        let src = r#"let s = "no .unwrap() in \" here"; s.len()"#;
        let toks = lex(src);
        let unwraps = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident && t.text(src) == "unwrap")
            .count();
        assert_eq!(unwraps, 0);
        assert_tiles(src);
    }

    #[test]
    fn numbers() {
        for src in ["1_000u64", "0xFF_u8", "1e-6", "3.125f32", "0..10", "x.0"] {
            assert_tiles(src);
        }
        // `0..10` must lex the range dots as punctuation, not a float.
        let k = kinds("0..10");
        assert_eq!(
            k,
            vec![TokKind::Num, TokKind::Punct, TokKind::Punct, TokKind::Num]
        );
    }

    #[test]
    fn line_numbers() {
        let src = "a\nb\n  c";
        let idents: Vec<(u32, TokKind)> = lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| (t.line, t.kind))
            .collect();
        assert_eq!(
            idents,
            vec![
                (1, TokKind::Ident),
                (2, TokKind::Ident),
                (3, TokKind::Ident)
            ]
        );
    }

    #[test]
    fn adversarial_unterminated_literals() {
        for src in ["\"never closed", "'a", "'", "r#\"open", "b\"open", "b'"] {
            assert_tiles(src);
        }
    }
}
