//! certa-lint: zero-dependency static analysis for the workspace's three
//! load-bearing contracts — determinism of served bytes, panic-freedom of
//! the serve/store paths, and ordered lock acquisition in the sharded
//! caches.
//!
//! The five bench gates verify those contracts *dynamically* by
//! byte-comparing outputs; this crate checks them *statically* on every
//! commit, so a stray `HashMap` iteration feeding the wire serializer or
//! an `unwrap()` on the request path is caught before a workload has to
//! hit it. See `README.md` § "Static analysis" for the rule catalogue and
//! the suppression syntax.

pub mod analyzer;
pub mod lexer;
pub mod policy;
pub mod report;
pub mod rules;

use analyzer::FileCtx;
use policy::Policy;
use report::Finding;
use rules::Level;

/// Lint one file's source under a policy. `path` must be
/// workspace-relative with forward slashes (it drives rule scoping).
pub fn lint_file(path: &str, src: &str, policy: &Policy) -> Vec<Finding> {
    let ctx = FileCtx::new(path, src);
    let mut out = Vec::new();
    for (rule, level) in policy.rules_for(path) {
        for raw in rules::run_rule(rule, &ctx) {
            let allowed = ctx
                .suppressions
                .iter()
                .find(|s| {
                    (s.covers.0 == raw.line || s.covers.1 == raw.line)
                        && s.rules.iter().any(|r| r == raw.rule)
                        && !s.justification.is_empty()
                })
                .map(|s| s.justification.clone());
            out.push(Finding {
                rule: raw.rule,
                file: path.to_string(),
                line: raw.line,
                col: raw.col,
                level,
                message: raw.message,
                allowed,
            });
        }
    }
    // Suppression hygiene is checked everywhere, independent of scoping:
    // an allow with no justification (or naming no known rule) is itself
    // a deny-level finding — the justification requirement is the point.
    for s in &ctx.suppressions {
        if s.justification.is_empty() {
            out.push(Finding {
                rule: "bad-suppression",
                file: path.to_string(),
                line: s.line,
                col: 1,
                level: Level::Deny,
                message: "suppression without a justification: write `// certa-lint: allow(rule) — <why this is safe>`".into(),
                allowed: None,
            });
        } else if let Some(unknown) = s.rules.iter().find(|r| !rules::RULES.contains(&r.as_str())) {
            out.push(Finding {
                rule: "bad-suppression",
                file: path.to_string(),
                line: s.line,
                col: 1,
                level: Level::Deny,
                message: format!("suppression names unknown rule `{unknown}`"),
                allowed: None,
            });
        }
    }
    report::sort(&mut out);
    out
}

/// [`lint_file`] under the default policy — the entry point the fixture
/// tests drive.
pub fn lint_source(path: &str, src: &str) -> Vec<Finding> {
    lint_file(path, src, &Policy::default())
}
