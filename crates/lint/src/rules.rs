//! The five contract rules.
//!
//! Each rule is a pure function over a [`FileCtx`] producing raw findings;
//! the driver applies policy scoping and suppressions afterwards. Rules
//! are heuristic by design — they work on the significant-token stream,
//! not an AST — and are tuned to have near-zero false positives on the
//! patterns this workspace actually uses. Known blind spots are documented
//! inline; the runtime `certa_core::lockcheck` pass covers the dynamic
//! side of `lock-order` that token scanning cannot see (e.g. guards held
//! by `if let` temporaries).

use crate::analyzer::FileCtx;
use crate::lexer::TokKind;

/// Severity of a rule. `Warn` findings are reported but only fail the
/// build under `--deny-all`; `Deny` findings always fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Warn,
    Deny,
}

/// A single rule violation (pre-suppression).
#[derive(Debug, Clone)]
pub struct RawFinding {
    pub rule: &'static str,
    pub line: u32,
    pub col: u32,
    pub message: String,
}

/// All rule ids, in report order.
pub const RULES: &[&str] = &[
    "no-panic-path",
    "no-unordered-iteration",
    "no-nondeterminism",
    "no-float-format",
    "lock-order",
];

pub fn run_rule(rule: &str, ctx: &FileCtx<'_>) -> Vec<RawFinding> {
    match rule {
        "no-panic-path" => no_panic_path(ctx),
        "no-unordered-iteration" => no_unordered_iteration(ctx),
        "no-nondeterminism" => no_nondeterminism(ctx),
        "no-float-format" => no_float_format(ctx),
        "lock-order" => lock_order(ctx),
        _ => Vec::new(),
    }
}

fn finding(ctx: &FileCtx<'_>, rule: &'static str, i: usize, message: String) -> RawFinding {
    let s = &ctx.sig[i];
    RawFinding {
        rule,
        line: s.line,
        col: s.col,
        message,
    }
}

/// Keywords that make a following `[` an array/slice expression or type
/// rather than an index into the preceding value.
const KEYWORDS_BEFORE_BRACKET: &[&str] = &[
    "in", "return", "break", "if", "else", "match", "let", "mut", "ref", "move", "as", "dyn",
    "impl", "where", "unsafe", "async", "await", "loop", "while", "for", "const", "static",
];

/// `no-panic-path`: `unwrap`/`expect`, panicking macros, and slice/array
/// indexing in modules documented as panic-free (the serve request path
/// and the store decoder).
fn no_panic_path(ctx: &FileCtx<'_>) -> Vec<RawFinding> {
    const PANIC_MACROS: &[&str] = &[
        "panic",
        "unreachable",
        "todo",
        "unimplemented",
        "assert",
        "assert_eq",
        "assert_ne",
    ];
    let mut out = Vec::new();
    for (i, s) in ctx.sig.iter().enumerate() {
        if !s.active {
            continue;
        }
        match s.text {
            "unwrap" | "expect"
                if s.kind == TokKind::Ident
                    && i > 0
                    && ctx.is(i - 1, ".")
                    && ctx.is(i + 1, "(") =>
            {
                out.push(finding(
                    ctx,
                    "no-panic-path",
                    i,
                    format!("`.{}()` on a documented panic-free path; return a typed error or add a justified allow", s.text),
                ));
            }
            t if s.kind == TokKind::Ident && PANIC_MACROS.contains(&t) && ctx.is(i + 1, "!") => {
                out.push(finding(
                    ctx,
                    "no-panic-path",
                    i,
                    format!("`{t}!` on a documented panic-free path"),
                ));
            }
            "[" if i > 0 => {
                let prev = &ctx.sig[i - 1];
                let indexes_value = match prev.kind {
                    TokKind::Ident => !KEYWORDS_BEFORE_BRACKET.contains(&prev.text),
                    _ => prev.text == ")" || prev.text == "]",
                };
                if indexes_value {
                    out.push(finding(
                        ctx,
                        "no-panic-path",
                        i,
                        format!(
                            "indexing `{}[..]` may panic out of bounds; use `.get()` or add a justified allow",
                            prev.text
                        ),
                    ));
                }
            }
            _ => {}
        }
    }
    out
}

/// Hash-ordered collection type names (std and the workspace FxHash
/// aliases). `BTreeMap`/`BTreeSet` are ordered and never flagged.
const MAP_TYPES: &[&str] = &["HashMap", "HashSet", "FxHashMap", "FxHashSet"];

/// Methods that surface a map's arbitrary iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// Sort-family identifiers whose presence later in the same function pins
/// the order before it can escape.
const SORTERS: &[&str] = &[
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "BTreeMap",
    "BTreeSet",
];

/// `no-unordered-iteration`: iterating a hash-ordered map/set in a module
/// that feeds serialized or wire output, without a downstream sort in the
/// same function.
///
/// Taint tracking is name-based and deliberately conservative: a binding
/// is tainted when its declared type's *outermost* path segment is a hash
/// collection (`df: FxHashMap<...>`, fields and params alike), or when a
/// `let` right-hand side mentions a tainted name or a hash-map
/// constructor. Collections merely *containing* a map (`Vec<RwLock<FxHashMap>>`)
/// are not tainted — iterating the vector is deterministic.
fn no_unordered_iteration(ctx: &FileCtx<'_>) -> Vec<RawFinding> {
    let mut tainted: Vec<&str> = Vec::new();
    // Pass A: `name: [&|mut|dyn]* Path<...>` declarations (fields, params,
    // annotated lets) whose outermost type is a hash collection.
    for i in 0..ctx.sig.len() {
        if ctx.sig[i].kind != TokKind::Ident || !ctx.is(i + 1, ":") {
            continue;
        }
        let mut j = i + 2;
        while ctx.is(j, "&")
            || ctx.is(j, "mut")
            || ctx.is(j, "dyn")
            || ctx.kind(j) == Some(TokKind::Lifetime)
        {
            j += 1;
        }
        // First path segment chain: ident (:: ident)*, stop at `<`.
        let mut last_seg = "";
        while ctx.kind(j) == Some(TokKind::Ident) {
            last_seg = ctx.text(j);
            if ctx.is(j + 1, ":") && ctx.is(j + 2, ":") {
                j += 3;
            } else {
                break;
            }
        }
        if MAP_TYPES.contains(&last_seg) && !tainted.contains(&ctx.sig[i].text) {
            tainted.push(ctx.sig[i].text);
        }
    }
    // Pass B (twice, for forward references): propagate through
    // `let [mut] name = <rhs>;` and drop taint at `name.sort*()`.
    for _ in 0..2 {
        for i in 0..ctx.sig.len() {
            if ctx.is(i, "let") {
                let name_idx = if ctx.is(i + 1, "mut") { i + 2 } else { i + 1 };
                if ctx.kind(name_idx) != Some(TokKind::Ident) || !ctx.is(name_idx + 1, "=") {
                    continue;
                }
                let name = ctx.text(name_idx);
                let mut j = name_idx + 2;
                let mut rhs_tainted = false;
                let mut rhs_sorted = false;
                while j < ctx.sig.len() && !ctx.is(j, ";") {
                    let t = ctx.text(j);
                    if tainted.contains(&t) || MAP_TYPES.contains(&t) {
                        rhs_tainted = true;
                    }
                    if SORTERS.contains(&t) {
                        rhs_sorted = true;
                    }
                    j += 1;
                }
                if rhs_tainted && !rhs_sorted && !tainted.contains(&name) {
                    tainted.push(name);
                }
            } else if ctx.sig[i].kind == TokKind::Ident
                && SORTERS.contains(&ctx.sig[i].text)
                && i >= 2
                && ctx.is(i - 1, ".")
            {
                tainted.retain(|n| *n != ctx.text(i - 2));
            }
        }
    }

    let mut out = Vec::new();
    let mut push_unless_sorted = |ctx: &FileCtx<'_>, i: usize, what: String| {
        let end = ctx.enclosing_fn_end(i);
        let sorted_later = ctx.sig[i..end.min(ctx.sig.len())]
            .iter()
            .any(|s| s.kind == TokKind::Ident && SORTERS.contains(&s.text));
        if !sorted_later {
            out.push(finding(ctx, "no-unordered-iteration", i, what));
        }
    };
    for i in 0..ctx.sig.len() {
        if !ctx.sig[i].active {
            continue;
        }
        // `tainted.iter()` / `self.field.keys()` where field is tainted.
        if ctx.sig[i].kind == TokKind::Ident
            && ITER_METHODS.contains(&ctx.sig[i].text)
            && i >= 2
            && ctx.is(i - 1, ".")
            && ctx.is(i + 1, "(")
            && ctx.sig[i - 2].kind == TokKind::Ident
            && tainted.contains(&ctx.sig[i - 2].text)
        {
            push_unless_sorted(
                ctx,
                i,
                format!(
                    "iterating hash-ordered `{}` via `.{}()` with no downstream sort in this function",
                    ctx.text(i - 2),
                    ctx.text(i)
                ),
            );
        }
        // `for pat in <expr mentioning a tainted name> {`
        if ctx.is(i, "for") {
            let mut j = i + 1;
            while j < ctx.sig.len() && !ctx.is(j, "in") && !ctx.is(j, "{") {
                j += 1;
            }
            if !ctx.is(j, "in") {
                continue;
            }
            let mut k = j + 1;
            let mut hit: Option<&str> = None;
            let mut sorted_expr = false;
            let mut depth = 0i32;
            while k < ctx.sig.len() {
                let t = ctx.text(k);
                match t {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth <= 0 => break,
                    _ => {
                        if ctx.sig[k].kind == TokKind::Ident {
                            if tainted.contains(&t) {
                                hit = Some(ctx.sig[k].text);
                            }
                            if SORTERS.contains(&t) {
                                sorted_expr = true;
                            }
                        }
                    }
                }
                k += 1;
            }
            if let Some(name) = hit {
                if !sorted_expr {
                    push_unless_sorted(
                        ctx,
                        i,
                        format!("`for` over hash-ordered `{name}` with no downstream sort in this function"),
                    );
                }
            }
        }
    }
    out
}

/// `no-nondeterminism`: wall-clock and entropy sources in scoring,
/// featurization, and serialization modules, where output bytes must be a
/// pure function of input.
fn no_nondeterminism(ctx: &FileCtx<'_>) -> Vec<RawFinding> {
    const BANNED: &[&str] = &[
        "SystemTime",
        "thread_rng",
        "from_entropy",
        "RandomState",
        "DefaultHasher",
    ];
    let mut out = Vec::new();
    for (i, s) in ctx.sig.iter().enumerate() {
        if !s.active || s.kind != TokKind::Ident {
            continue;
        }
        if BANNED.contains(&s.text) || s.text == "Instant" {
            out.push(finding(
                ctx,
                "no-nondeterminism",
                i,
                format!(
                    "`{}` in a determinism-scoped module; outputs must be pure functions of inputs",
                    s.text
                ),
            ));
        }
    }
    out
}

/// Macros whose arguments get `Display`/`Debug`-formatted into text.
const FORMAT_MACROS: &[&str] = &[
    "format",
    "format_args",
    "print",
    "println",
    "eprint",
    "eprintln",
    "write",
    "writeln",
];

/// `no-float-format`: `{}`/`{:?}` float formatting outside the wire
/// serializer. Float→text conversion is centralized in
/// `certa_serve::wire::json` (shortest-round-trip `Display`); ad-hoc
/// formatting elsewhere risks drift between surfaces. Detection is
/// signal-based: a format-macro argument list containing a float literal,
/// an `f32`/`f64` token (e.g. `as f64`), or an `*_f32`/`*_f64` method.
fn no_float_format(ctx: &FileCtx<'_>) -> Vec<RawFinding> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < ctx.sig.len() {
        let s = &ctx.sig[i];
        let is_fmt = s.active
            && s.kind == TokKind::Ident
            && FORMAT_MACROS.contains(&s.text)
            && ctx.is(i + 1, "!")
            && ctx.is(i + 2, "(");
        if !is_fmt {
            i += 1;
            continue;
        }
        let mut depth = 0i32;
        let mut j = i + 2;
        let mut float_signal: Option<String> = None;
        while j < ctx.sig.len() {
            let t = &ctx.sig[j];
            match t.text {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {
                    let is_float_lit = t.kind == TokKind::Num
                        && !t.text.starts_with("0x")
                        && (t.text.contains('.')
                            || t.text.contains('e')
                            || t.text.contains('E')
                            || t.text.ends_with("f32")
                            || t.text.ends_with("f64"));
                    let is_float_ident = t.kind == TokKind::Ident
                        && (t.text == "f32"
                            || t.text == "f64"
                            || t.text.ends_with("_f32")
                            || t.text.ends_with("_f64"));
                    if is_float_lit || is_float_ident {
                        float_signal = Some(t.text.to_string());
                    }
                }
            }
            j += 1;
        }
        if let Some(sig_text) = float_signal {
            out.push(finding(
                ctx,
                "no-float-format",
                i,
                format!(
                    "`{}!` formats a float (`{}`) outside the wire serializer; floats must go through `wire::json`",
                    s.text, sig_text
                ),
            ));
        }
        i = j.max(i + 1);
    }
    out
}

/// Lock-acquiring method names (parking_lot and std styles).
const LOCK_METHODS: &[&str] = &["lock", "read", "write"];

/// `lock-order`: acquiring any lock while a `let`-bound guard from the
/// same function is still live. Guards die at the end of their block, at
/// an explicit `drop(name)`, or at function end.
///
/// Blind spot (by design): guards held by temporaries (`if let Some(x) =
/// m.read().get(..)`) are invisible to token scanning — the runtime
/// `certa_core::lockcheck` tracker covers those in debug builds.
fn lock_order(ctx: &FileCtx<'_>) -> Vec<RawFinding> {
    struct Guard<'a> {
        name: &'a str,
        depth: u32,
    }
    let mut out = Vec::new();
    let mut guards: Vec<Guard<'_>> = Vec::new();
    let mut i = 0usize;
    while i < ctx.sig.len() {
        let s = &ctx.sig[i];
        // Expire guards whose block has closed.
        guards.retain(|g| s.depth >= g.depth);
        // `drop(name)` releases explicitly.
        if s.text == "drop" && ctx.is(i + 1, "(") && ctx.is(i + 3, ")") {
            let dropped = ctx.text(i + 2);
            guards.retain(|g| g.name != dropped);
        }
        // A lock call: `.lock()` / `.read()` / `.write()`.
        let is_lock_call = s.kind == TokKind::Ident
            && LOCK_METHODS.contains(&s.text)
            && i > 0
            && ctx.is(i - 1, ".")
            && ctx.is(i + 1, "(");
        if is_lock_call && s.active {
            if let Some(held) = guards.first() {
                out.push(finding(
                    ctx,
                    "lock-order",
                    i,
                    format!(
                        "`.{}()` acquired while guard `{}` is still held; release it first or add a justified allow",
                        s.text, held.name
                    ),
                ));
            }
        }
        // Register `let [mut] name = <rhs with a lock call>;` guards after
        // scanning the rhs (so the rhs' own acquisition doesn't self-flag).
        if s.text == "let" {
            let name_idx = if ctx.is(i + 1, "mut") { i + 2 } else { i + 1 };
            if ctx.kind(name_idx) == Some(TokKind::Ident) && ctx.is(name_idx + 1, "=") {
                let mut j = name_idx + 2;
                let mut acquires = false;
                while j < ctx.sig.len() && !ctx.is(j, ";") {
                    if ctx.sig[j].kind == TokKind::Ident
                        && LOCK_METHODS.contains(&ctx.sig[j].text)
                        && ctx.is(j - 1, ".")
                        && ctx.is(j + 1, "(")
                    {
                        acquires = true;
                    }
                    j += 1;
                }
                if acquires {
                    // Walk the rhs for nested lock calls (they fire the
                    // check above via the main loop as we pass them).
                    guards.push(Guard {
                        name: ctx.text(name_idx),
                        depth: s.depth,
                    });
                    // Note: the guard becomes "live" now, but the main
                    // loop has not yet visited the rhs tokens; the rhs'
                    // own lock call will be skipped below.
                    i += 1;
                    // Skip ahead over the rhs so its acquiring call does
                    // not count against the just-registered guard...
                    // except it must count against *previously* held
                    // guards, so we only skip when this guard is the sole
                    // holder.
                    if guards.len() == 1 {
                        i = j;
                    }
                    continue;
                }
            }
        }
        i += 1;
    }
    out
}
