//! Token-stream analysis shared by every rule: significant-token
//! extraction, `#[cfg(test)]`/`#[test]` region masking, enclosing-function
//! tracking, and the inline suppression syntax.
//!
//! The analyzer deliberately stops short of parsing Rust — rules work on a
//! flat significant-token stream with just enough structure (brace depth,
//! function body ranges, test-region masks) to scope their heuristics.
//! That keeps the pass total: any input that lexes (which is all input)
//! can be analyzed.

use crate::lexer::{lex, TokKind, Token};

/// One significant token (whitespace and comments removed).
#[derive(Debug, Clone, Copy)]
pub struct Sig<'a> {
    pub kind: TokKind,
    pub text: &'a str,
    pub line: u32,
    /// 1-based byte column of the token start on its line.
    pub col: u32,
    /// False inside items behind `#[test]` / `#[cfg(test)]` attributes —
    /// rules never fire there (tests are allowed to `unwrap()`).
    pub active: bool,
    /// Brace depth: `{` carries the pre-increment depth, `}` the
    /// post-decrement depth, so a token is inside a block iff its depth is
    /// greater than the block's braces'.
    pub depth: u32,
}

/// An inline `// certa-lint: allow(rule, ...) — justification` comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Line of the comment itself.
    pub line: u32,
    /// Rule ids listed in `allow(...)`.
    pub rules: Vec<String>,
    /// Justification text after the rule list (may be empty — which is
    /// itself a deny-level finding).
    pub justification: String,
    /// Lines this suppression covers: its own line, plus — when the
    /// comment stands alone — the next line holding significant code.
    pub covers: (u32, u32),
}

/// Fully analyzed source file, ready for rules.
pub struct FileCtx<'a> {
    pub path: &'a str,
    pub src: &'a str,
    pub sig: Vec<Sig<'a>>,
    pub suppressions: Vec<Suppression>,
    /// `(open, close)` significant-token index ranges of `fn` bodies,
    /// innermost-last in source order of the closing brace.
    fn_bodies: Vec<(usize, usize)>,
}

impl<'a> FileCtx<'a> {
    pub fn new(path: &'a str, src: &'a str) -> FileCtx<'a> {
        let toks = lex(src);
        let line_starts = line_starts(src);
        let mut sig = significant(src, &toks, &line_starts);
        mark_test_regions(&mut sig);
        let fn_bodies = fn_bodies(&sig);
        let suppressions = suppressions(src, &toks, &sig);
        FileCtx {
            path,
            src,
            sig,
            suppressions,
            fn_bodies,
        }
    }

    /// Text of significant token `i`, or `""` out of range.
    pub fn text(&self, i: usize) -> &str {
        self.sig.get(i).map_or("", |s| s.text)
    }

    pub fn kind(&self, i: usize) -> Option<TokKind> {
        self.sig.get(i).map(|s| s.kind)
    }

    pub fn is(&self, i: usize, t: &str) -> bool {
        self.sig.get(i).is_some_and(|s| s.text == t)
    }

    /// End (exclusive sig index) of the innermost `fn` body containing
    /// `i`, or the end of the file when `i` is not inside any function.
    pub fn enclosing_fn_end(&self, i: usize) -> usize {
        self.fn_bodies
            .iter()
            .filter(|(open, close)| *open <= i && i <= *close)
            .map(|(open, close)| (close - open, *close))
            .min()
            .map_or(self.sig.len(), |(_, close)| close)
    }
}

/// Byte offsets at which each line starts (line 1 at offset 0).
fn line_starts(src: &str) -> Vec<usize> {
    let mut starts = vec![0usize];
    for (i, b) in src.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

fn significant<'a>(src: &'a str, toks: &[Token], line_starts: &[usize]) -> Vec<Sig<'a>> {
    let mut out = Vec::new();
    let mut depth = 0u32;
    for t in toks {
        if matches!(
            t.kind,
            TokKind::Whitespace | TokKind::LineComment | TokKind::BlockComment
        ) {
            continue;
        }
        let text = t.text(src);
        let depth_here = match text {
            "{" => {
                depth += 1;
                depth - 1
            }
            "}" => {
                depth = depth.saturating_sub(1);
                depth
            }
            _ => depth,
        };
        let line_start = line_starts
            .get(t.line.saturating_sub(1) as usize)
            .copied()
            .unwrap_or(0);
        out.push(Sig {
            kind: t.kind,
            text,
            line: t.line,
            col: (t.start.saturating_sub(line_start) + 1) as u32,
            active: true,
            depth: depth_here,
        });
    }
    out
}

/// Deactivate tokens inside `#[test]`-family attributes and the items they
/// annotate (through any stacked attributes), so rules skip test code.
fn mark_test_regions(sig: &mut [Sig<'_>]) {
    let mut i = 0usize;
    while i < sig.len() {
        if !(sig[i].text == "#" && sig.get(i + 1).is_some_and(|s| s.text == "[")) {
            i += 1;
            continue;
        }
        let attr_end = match bracket_end(sig, i + 1) {
            Some(e) => e,
            None => break,
        };
        let is_test = sig[i + 2..attr_end].iter().any(|s| s.text == "test");
        if !is_test {
            i = attr_end + 1;
            continue;
        }
        // Deactivate this attribute, any further stacked attributes, and
        // the annotated item (to its `;` or the close of its first brace).
        let mut j = attr_end + 1;
        while sig.get(j).is_some_and(|s| s.text == "#")
            && sig.get(j + 1).is_some_and(|s| s.text == "[")
        {
            match bracket_end(sig, j + 1) {
                Some(e) => j = e + 1,
                None => break,
            }
        }
        let item_end = item_end(sig, j).min(sig.len() - 1);
        for s in sig[i..=item_end].iter_mut() {
            s.active = false;
        }
        i = item_end + 1;
    }
}

/// Index of the `]` matching the `[` at `open`.
fn bracket_end(sig: &[Sig<'_>], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (off, s) in sig[open..].iter().enumerate() {
        match s.text {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return Some(open + off);
                }
            }
            _ => {}
        }
    }
    None
}

/// Index of the last token of the item starting at `start`: its top-level
/// `;`, or the `}` closing its first top-level brace.
fn item_end(sig: &[Sig<'_>], start: usize) -> usize {
    let (mut paren, mut bracket, mut brace) = (0i32, 0i32, 0i32);
    let mut opened_brace = false;
    for (off, s) in sig[start..].iter().enumerate() {
        match s.text {
            "(" => paren += 1,
            ")" => paren -= 1,
            "[" => bracket += 1,
            "]" => bracket -= 1,
            "{" => {
                brace += 1;
                opened_brace = true;
            }
            "}" => {
                brace -= 1;
                if opened_brace && brace == 0 {
                    return start + off;
                }
            }
            ";" if paren <= 0 && bracket <= 0 && brace <= 0 => return start + off,
            _ => {}
        }
    }
    sig.len().saturating_sub(1)
}

/// `fn` body ranges as `(open_brace_idx, close_brace_idx)` sig indices.
fn fn_bodies(sig: &[Sig<'_>]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut stack: Vec<(usize, bool)> = Vec::new();
    let mut pending_fn = false;
    for (i, s) in sig.iter().enumerate() {
        match s.text {
            "fn" if s.kind == TokKind::Ident => pending_fn = true,
            // A `;` before the body means a bodiless declaration.
            ";" => pending_fn = false,
            "{" => {
                stack.push((i, pending_fn));
                pending_fn = false;
            }
            "}" => {
                if let Some((open, was_fn)) = stack.pop() {
                    if was_fn {
                        out.push((open, i));
                    }
                }
            }
            _ => {}
        }
    }
    // Unclosed bodies (truncated input) extend to the end of the file.
    while let Some((open, was_fn)) = stack.pop() {
        if was_fn {
            out.push((open, sig.len().saturating_sub(1)));
        }
    }
    out
}

/// Parse every `// certa-lint: allow(...)` comment in the raw stream.
fn suppressions(src: &str, toks: &[Token], sig: &[Sig<'_>]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for t in toks {
        if t.kind != TokKind::LineComment {
            continue;
        }
        let body = t.text(src).trim_start_matches('/').trim();
        let Some(rest) = body.strip_prefix("certa-lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let (rules, justification) = match rest.strip_prefix("allow(") {
            Some(r) => match r.split_once(')') {
                Some((list, after)) => {
                    let rules: Vec<String> = list
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect();
                    // Justification follows an optional `—` / `-` separator.
                    let just = after
                        .trim()
                        .trim_start_matches(['—', '–', '-'])
                        .trim()
                        .to_string();
                    (rules, just)
                }
                None => (Vec::new(), String::new()),
            },
            None => (Vec::new(), String::new()),
        };
        // Coverage: the comment's own line; when no code shares that line,
        // also the next line that holds significant code.
        let own = t.line;
        let code_on_own_line = sig.iter().any(|s| s.line == own);
        let next = if code_on_own_line {
            own
        } else {
            sig.iter().map(|s| s.line).find(|l| *l > own).unwrap_or(own)
        };
        out.push(Suppression {
            line: own,
            rules,
            justification,
            covers: (own, next),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_regions_are_masked() {
        let src =
            "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n fn t() { y.unwrap(); }\n}\n";
        let ctx = FileCtx::new("f.rs", src);
        let unwraps: Vec<bool> = ctx
            .sig
            .iter()
            .filter(|s| s.text == "unwrap")
            .map(|s| s.active)
            .collect();
        assert_eq!(unwraps, vec![true, false]);
    }

    #[test]
    fn stacked_attributes_mask_the_item() {
        let src =
            "#[test]\n#[allow(dead_code)]\nfn t() { a.unwrap(); }\nfn live() { b.unwrap(); }\n";
        let ctx = FileCtx::new("f.rs", src);
        let unwraps: Vec<bool> = ctx
            .sig
            .iter()
            .filter(|s| s.text == "unwrap")
            .map(|s| s.active)
            .collect();
        assert_eq!(unwraps, vec![false, true]);
    }

    #[test]
    fn cfg_test_on_use_statement() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn live() { b.unwrap(); }\n";
        let ctx = FileCtx::new("f.rs", src);
        assert!(ctx
            .sig
            .iter()
            .filter(|s| s.text == "unwrap")
            .all(|s| s.active));
        assert!(ctx
            .sig
            .iter()
            .filter(|s| s.text == "bar")
            .all(|s| !s.active));
    }

    #[test]
    fn suppression_parses_rules_and_justification() {
        let src = "// certa-lint: allow(no-panic-path, lock-order) — bounded by construction\nx.unwrap();\n";
        let ctx = FileCtx::new("f.rs", src);
        assert_eq!(ctx.suppressions.len(), 1);
        let s = &ctx.suppressions[0];
        assert_eq!(s.rules, vec!["no-panic-path", "lock-order"]);
        assert_eq!(s.justification, "bounded by construction");
        assert_eq!(s.covers, (1, 2));
    }

    #[test]
    fn trailing_suppression_covers_only_its_line() {
        let src = "x.unwrap(); // certa-lint: allow(no-panic-path) - fine\ny.unwrap();\n";
        let ctx = FileCtx::new("f.rs", src);
        assert_eq!(ctx.suppressions[0].covers, (1, 1));
    }

    #[test]
    fn empty_justification_detected() {
        let src = "// certa-lint: allow(no-panic-path)\nx.unwrap();\n";
        let ctx = FileCtx::new("f.rs", src);
        assert!(ctx.suppressions[0].justification.is_empty());
    }

    #[test]
    fn fn_end_spans_the_body() {
        let src = "fn a() { x; }\nfn b() { y; }\n";
        let ctx = FileCtx::new("f.rs", src);
        let x = ctx.sig.iter().position(|s| s.text == "x").unwrap();
        let end = ctx.enclosing_fn_end(x);
        assert!(ctx.sig[end].text == "}");
        assert!(ctx.sig[..end].iter().any(|s| s.text == "x"));
        assert!(!ctx.sig[..end].iter().any(|s| s.text == "y"));
    }
}
