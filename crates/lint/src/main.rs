//! The `certa-lint` binary: walk the workspace sources, run the policy,
//! report, and gate.
//!
//! Exit codes: `0` clean, `1` denied findings, `2` usage or I/O error.

use certa_lint::policy::Policy;
use certa_lint::{lint_file, report};
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str =
    "usage: certa-lint [--root DIR] [--format human|json] [--deny-all] [--output FILE]

  --root DIR      workspace root to scan (default: .; must contain crates/)
  --format F      report format on stdout: human (default) or json
  --deny-all      treat warn-level findings as deny (CI mode)
  --output FILE   additionally write the JSON report to FILE
";

struct Args {
    root: PathBuf,
    json: bool,
    deny_all: bool,
    output: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        json: false,
        deny_all: false,
        output: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => args.root = PathBuf::from(it.next().ok_or("--root needs a value")?),
            "--format" => match it.next().as_deref() {
                Some("human") => args.json = false,
                Some("json") => args.json = true,
                other => return Err(format!("--format must be human or json, got {other:?}")),
            },
            "--deny-all" => args.deny_all = true,
            "--output" => {
                args.output = Some(PathBuf::from(it.next().ok_or("--output needs a value")?))
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

/// Collect `.rs` files under `dir`, recursively, in sorted order.
fn collect(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// The lintable source set: `src/` of every workspace crate plus the
/// facade's root `src/`. Vendored shims, integration `tests/`, benches,
/// and build artifacts are out of scope — the contracts only bind the
/// first-party library code.
fn source_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for c in crate_dirs {
            let src = c.join("src");
            if src.is_dir() {
                collect(&src, &mut files)?;
            }
        }
    }
    let facade = root.join("src");
    if facade.is_dir() {
        collect(&facade, &mut files)?;
    }
    Ok(files)
}

fn run() -> Result<u8, String> {
    let args = parse_args()?;
    if !args.root.join("crates").is_dir() {
        return Err(format!(
            "{} does not look like the workspace root (no crates/ directory)",
            args.root.display()
        ));
    }
    let files = source_files(&args.root).map_err(|e| format!("walking sources: {e}"))?;
    let policy = Policy::default();
    let mut findings = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(&args.root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let src =
            fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        findings.extend(lint_file(&rel, &src, &policy));
    }
    report::sort(&mut findings);
    if let Some(out_path) = &args.output {
        fs::write(
            out_path,
            report::json(&findings, files.len(), args.deny_all),
        )
        .map_err(|e| format!("writing {}: {e}", out_path.display()))?;
    }
    if args.json {
        println!("{}", report::json(&findings, files.len(), args.deny_all));
    } else {
        print!("{}", report::human(&findings, files.len(), args.deny_all));
    }
    let denied = report::denied(&findings, args.deny_all).count();
    Ok(if denied > 0 { 1 } else { 0 })
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => ExitCode::from(code),
        Err(msg) if msg.is_empty() => {
            print!("{USAGE}");
            ExitCode::from(0)
        }
        Err(msg) => {
            eprintln!("certa-lint: {msg}");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
