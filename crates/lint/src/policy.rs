//! Per-module rule scoping: which contract applies where.
//!
//! Paths are workspace-relative with forward slashes. An entry ending in
//! `/` is a prefix (whole directory); otherwise it must match the file
//! exactly. A rule runs on a file when some include entry matches and no
//! exclude entry does.
//!
//! The default policy encodes the repo's documented contracts:
//!
//! - the serve request path and the store decoder are panic-free
//!   (`no-panic-path`);
//! - everything that feeds serialized/wire output iterates in pinned
//!   order (`no-unordered-iteration`);
//! - scoring, featurization, and serialization are pure functions of
//!   their inputs (`no-nondeterminism`);
//! - float→text conversion is centralized in `wire::json`
//!   (`no-float-format`);
//! - the sharded caches and the serve registry never acquire a second
//!   lock while one is held (`lock-order`), cross-checked dynamically by
//!   `certa_core::lockcheck` in debug builds.

use crate::rules::Level;

pub struct RuleScope {
    pub rule: &'static str,
    pub level: Level,
    pub include: &'static [&'static str],
    pub exclude: &'static [&'static str],
}

pub struct Policy {
    pub scopes: Vec<RuleScope>,
}

/// CLI binaries and the offline inspector print diagnostics for humans —
/// they are exempt from the wire-output contracts.
const BIN_EXCLUDES: &[&str] = &[
    "crates/serve/src/bin/",
    "crates/store/src/bin/",
    "crates/store/src/inspect.rs",
    "crates/block/src/bin/",
    "crates/cluster/src/bin/",
];

impl Default for Policy {
    fn default() -> Policy {
        Policy {
            scopes: vec![
                RuleScope {
                    rule: "no-panic-path",
                    level: Level::Deny,
                    include: &[
                        "crates/serve/src/",
                        "crates/store/src/",
                        // The data-parallel kernels and the SoA batch layout
                        // sit on the serve hot path too: a panic there kills
                        // a scoring worker, so they carry the same contract.
                        "crates/ml/src/kernels.rs",
                        "crates/ml/src/batch.rs",
                    ],
                    exclude: BIN_EXCLUDES,
                },
                RuleScope {
                    rule: "no-unordered-iteration",
                    level: Level::Warn,
                    include: &[
                        "crates/serve/src/",
                        "crates/store/src/",
                        "crates/text/src/",
                        "crates/models/src/cache.rs",
                        "crates/models/src/memo.rs",
                        "crates/core/src/value.rs",
                        "crates/block/src/",
                    ],
                    // BIN_EXCLUDES expanded inline, plus the repository
                    // files that graduate to the Deny scope below.
                    exclude: &[
                        "crates/serve/src/bin/",
                        "crates/store/src/bin/",
                        "crates/store/src/inspect.rs",
                        "crates/block/src/bin/",
                        "crates/cluster/src/bin/",
                        "crates/store/src/signature.rs",
                        "crates/store/src/repository.rs",
                    ],
                },
                // The clusterer's partition bytes, the dataset signature
                // sketches, and the repository index ranking are compared
                // byte-for-byte across runs (bench_cluster and bench_repo
                // gates) — unordered iteration is promoted to a hard error
                // there.
                RuleScope {
                    rule: "no-unordered-iteration",
                    level: Level::Deny,
                    include: &[
                        "crates/cluster/src/",
                        "crates/store/src/signature.rs",
                        "crates/store/src/repository.rs",
                    ],
                    exclude: BIN_EXCLUDES,
                },
                RuleScope {
                    rule: "no-nondeterminism",
                    level: Level::Deny,
                    include: &[
                        "crates/core/src/",
                        "crates/text/src/",
                        "crates/ml/src/",
                        "crates/models/src/",
                        "crates/explain/src/",
                        "crates/serve/src/wire/",
                        // The reactor is clock-free on purpose (callers pass
                        // millisecond ticks), so the whole epoll/token-bucket
                        // layer is checkable as a pure function of its input.
                        "crates/serve/src/reactor.rs",
                        "crates/store/src/",
                        "crates/block/src/",
                        "crates/cluster/src/",
                    ],
                    exclude: BIN_EXCLUDES,
                },
                RuleScope {
                    rule: "no-float-format",
                    level: Level::Warn,
                    include: &["crates/serve/src/", "crates/store/src/"],
                    exclude: &[
                        "crates/serve/src/wire/json.rs",
                        "crates/serve/src/bin/",
                        "crates/store/src/bin/",
                        "crates/store/src/inspect.rs",
                    ],
                },
                RuleScope {
                    rule: "lock-order",
                    level: Level::Deny,
                    include: &[
                        "crates/models/src/cache.rs",
                        "crates/models/src/memo.rs",
                        "crates/serve/src/state.rs",
                        "crates/core/src/value.rs",
                    ],
                    exclude: &[],
                },
            ],
        }
    }
}

fn matches(path: &str, entry: &str) -> bool {
    if let Some(prefix) = entry.strip_suffix('/') {
        path.starts_with(prefix) && path[prefix.len()..].starts_with('/')
    } else {
        path == entry
    }
}

impl Policy {
    /// Rules (with levels) that apply to `path`.
    pub fn rules_for(&self, path: &str) -> Vec<(&'static str, Level)> {
        self.scopes
            .iter()
            .filter(|s| {
                s.include.iter().any(|e| matches(path, e))
                    && !s.exclude.iter().any(|e| matches(path, e))
            })
            .map(|s| (s.rule, s.level))
            .collect()
    }

    pub fn level_of(&self, rule: &str) -> Level {
        self.scopes
            .iter()
            .find(|s| s.rule == rule)
            .map_or(Level::Deny, |s| s.level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_sources_get_deny_level_determinism_rules() {
        let p = Policy::default();
        let rules = p.rules_for("crates/cluster/src/unionfind.rs");
        assert!(rules.contains(&("no-unordered-iteration", Level::Deny)));
        assert!(rules.contains(&("no-nondeterminism", Level::Deny)));
        // Exactly one scope matches per rule — no duplicate findings.
        assert_eq!(rules.len(), 2, "{rules:?}");
        assert!(p
            .rules_for("crates/cluster/src/bin/certa_cluster.rs")
            .is_empty());
    }

    #[test]
    fn repository_sources_get_deny_level_determinism_rules() {
        let p = Policy::default();
        for file in [
            "crates/store/src/signature.rs",
            "crates/store/src/repository.rs",
        ] {
            let rules = p.rules_for(file);
            assert!(
                rules.contains(&("no-unordered-iteration", Level::Deny)),
                "{file}: {rules:?}"
            );
            assert!(
                rules.contains(&("no-nondeterminism", Level::Deny)),
                "{file}: {rules:?}"
            );
            // Exactly one scope matches per rule — no duplicate findings.
            let iter_rules = rules
                .iter()
                .filter(|(r, _)| *r == "no-unordered-iteration")
                .count();
            assert_eq!(iter_rules, 1, "{file}: {rules:?}");
        }
        // The rest of the store keeps the Warn-level iteration scope.
        assert!(p
            .rules_for("crates/store/src/store.rs")
            .contains(&("no-unordered-iteration", Level::Warn)));
    }

    #[test]
    fn scoping_includes_and_excludes() {
        let p = Policy::default();
        let rules: Vec<&str> = p
            .rules_for("crates/serve/src/router.rs")
            .into_iter()
            .map(|(r, _)| r)
            .collect();
        assert!(rules.contains(&"no-panic-path"));
        assert!(!rules.contains(&"lock-order"));
        assert!(p
            .rules_for("crates/serve/src/bin/certa_serve.rs")
            .is_empty());
        assert!(p
            .rules_for("crates/serve/src/wire/json.rs")
            .iter()
            .all(|(r, _)| *r != "no-float-format"));
        assert!(p.rules_for("crates/eval/src/report.rs").is_empty());
    }

    #[test]
    fn reactor_and_kernels_carry_deny_contracts() {
        let p = Policy::default();
        let reactor = p.rules_for("crates/serve/src/reactor.rs");
        assert!(reactor.contains(&("no-panic-path", Level::Deny)));
        assert!(reactor.contains(&("no-nondeterminism", Level::Deny)));
        for file in ["crates/ml/src/kernels.rs", "crates/ml/src/batch.rs"] {
            let rules = p.rules_for(file);
            assert!(rules.contains(&("no-panic-path", Level::Deny)), "{file}");
            assert!(
                rules.contains(&("no-nondeterminism", Level::Deny)),
                "{file}"
            );
        }
        // The rest of certa-ml keeps determinism-only coverage.
        assert!(!p
            .rules_for("crates/ml/src/mlp.rs")
            .contains(&("no-panic-path", Level::Deny)));
    }

    #[test]
    fn prefix_needs_component_boundary() {
        assert!(matches("crates/serve/src/ops.rs", "crates/serve/src/"));
        assert!(!matches("crates/serve/srcfoo/ops.rs", "crates/serve/src/"));
        assert!(matches(
            "crates/models/src/cache.rs",
            "crates/models/src/cache.rs"
        ));
    }
}
