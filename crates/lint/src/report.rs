//! Finding model and the human/JSON reporters.
//!
//! Both reporters are deterministic: findings are sorted by
//! `(file, line, col, rule, message)` and the JSON summary uses ordered
//! maps, so the CI artifact diffs cleanly between runs.

use crate::rules::Level;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A finding after suppression processing.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: &'static str,
    pub file: String,
    pub line: u32,
    pub col: u32,
    pub level: Level,
    pub message: String,
    /// `Some(justification)` when an inline allow covers this finding;
    /// allowed findings are reported but never fail the build.
    pub allowed: Option<String>,
}

pub fn sort(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule, a.message.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.col,
            b.rule,
            b.message.as_str(),
        ))
    });
}

/// Findings that fail the build: not allowed, and deny-level (or any
/// level under `--deny-all`).
pub fn denied(findings: &[Finding], deny_all: bool) -> impl Iterator<Item = &Finding> {
    findings
        .iter()
        .filter(move |f| f.allowed.is_none() && (deny_all || f.level == Level::Deny))
}

pub fn human(findings: &[Finding], files_scanned: usize, deny_all: bool) -> String {
    let mut out = String::new();
    for f in findings {
        let tag = match (&f.allowed, f.level) {
            (Some(_), _) => "allow",
            (None, Level::Deny) => "deny",
            (None, Level::Warn) => {
                if deny_all {
                    "deny"
                } else {
                    "warn"
                }
            }
        };
        let _ = write!(
            out,
            "{}:{}:{}: {tag}[{}] {}",
            f.file, f.line, f.col, f.rule, f.message
        );
        if let Some(just) = &f.allowed {
            let _ = write!(out, " — {just}");
        }
        out.push('\n');
    }
    let denied_n = denied(findings, deny_all).count();
    let allowed_n = findings.iter().filter(|f| f.allowed.is_some()).count();
    let _ = writeln!(
        out,
        "certa-lint: {files_scanned} files, {} findings ({denied_n} denied, {allowed_n} allowed)",
        findings.len()
    );
    out
}

/// Hand-rolled JSON (the lint depends on nothing, including the
/// workspace's own serializer).
fn esc(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

pub fn json(findings: &[Finding], files_scanned: usize, deny_all: bool) -> String {
    let mut out = String::from("{\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"rule\":");
        esc(f.rule, &mut out);
        out.push_str(",\"file\":");
        esc(&f.file, &mut out);
        let _ = write!(out, ",\"line\":{},\"col\":{}", f.line, f.col);
        out.push_str(",\"level\":");
        esc(
            match f.level {
                Level::Deny => "deny",
                Level::Warn => "warn",
            },
            &mut out,
        );
        out.push_str(",\"message\":");
        esc(&f.message, &mut out);
        match &f.allowed {
            Some(j) => {
                out.push_str(",\"allowed\":true,\"justification\":");
                esc(j, &mut out);
            }
            None => out.push_str(",\"allowed\":false"),
        }
        out.push('}');
    }
    let mut by_rule: BTreeMap<&str, usize> = BTreeMap::new();
    for f in findings {
        *by_rule.entry(f.rule).or_insert(0) += 1;
    }
    let denied_n = denied(findings, deny_all).count();
    let allowed_n = findings.iter().filter(|f| f.allowed.is_some()).count();
    let _ = write!(
        out,
        "],\"summary\":{{\"files\":{files_scanned},\"findings\":{},\"denied\":{denied_n},\"allowed\":{allowed_n},\"deny_all\":{deny_all},\"by_rule\":{{",
        findings.len()
    );
    for (i, (rule, n)) in by_rule.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        esc(rule, &mut out);
        let _ = write!(out, ":{n}");
    }
    out.push_str("}}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_deterministic_and_escaped() {
        let f = vec![Finding {
            rule: "no-panic-path",
            file: "crates/serve/src/x.rs".into(),
            line: 3,
            col: 7,
            level: Level::Deny,
            message: "a \"quoted\" thing\n".into(),
            allowed: None,
        }];
        let j = json(&f, 1, false);
        assert!(j.contains("\\\"quoted\\\""));
        assert!(j.contains("\\n"));
        assert!(j.contains("\"by_rule\":{\"no-panic-path\":1}"));
        assert_eq!(json(&f, 1, false), j);
    }
}
