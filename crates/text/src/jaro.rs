//! Jaro and Jaro-Winkler similarities.

/// Jaro similarity in `[0, 1]`.
///
/// Matching window is `max(|a|,|b|)/2 − 1`; transpositions counted over the
/// matched subsequences.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut a_matches: Vec<char> = Vec::new();
    let mut b_match_flags = vec![false; b.len()];
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == ca {
                b_used[j] = true;
                b_match_flags[j] = true;
                a_matches.push(ca);
                break;
            }
        }
    }
    let m = a_matches.len();
    if m == 0 {
        return 0.0;
    }
    let b_matches: Vec<char> = b
        .iter()
        .zip(b_match_flags.iter())
        .filter(|&(_, &f)| f)
        .map(|(&c, _)| c)
        .collect();
    let transpositions = a_matches
        .iter()
        .zip(b_matches.iter())
        .filter(|&(x, y)| x != y)
        .count()
        / 2;
    let m = m as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - transpositions as f64) / m) / 3.0
}

/// Jaro-Winkler similarity: Jaro boosted by shared prefix (up to 4 chars,
/// scaling factor 0.1), the standard parameterization.
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count() as f64;
    j + prefix * 0.1 * (1.0 - j)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-3
    }

    #[test]
    fn jaro_reference_values() {
        // Classic textbook examples.
        assert!(close(jaro("MARTHA", "MARHTA"), 0.9444));
        assert!(close(jaro("DIXON", "DICKSONX"), 0.7667));
        assert!(close(jaro("JELLYFISH", "SMELLYFISH"), 0.8963));
    }

    #[test]
    fn jaro_winkler_reference_values() {
        assert!(close(jaro_winkler("MARTHA", "MARHTA"), 0.9611));
        assert!(close(jaro_winkler("DIXON", "DICKSONX"), 0.8133));
    }

    #[test]
    fn degenerate_cases() {
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("a", ""), 0.0);
        assert_eq!(jaro("", "a"), 0.0);
        assert_eq!(jaro("abc", "xyz"), 0.0);
        assert_eq!(jaro("same", "same"), 1.0);
        assert_eq!(jaro_winkler("same", "same"), 1.0);
    }

    proptest! {
        #[test]
        fn jaro_bounded_and_symmetric(a in "[a-z]{0,12}", b in "[a-z]{0,12}") {
            let s = jaro(&a, &b);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&s));
            prop_assert!((s - jaro(&b, &a)).abs() < 1e-12);
        }

        #[test]
        fn winkler_bounded_never_below_jaro(a in "[a-z]{0,12}", b in "[a-z]{0,12}") {
            let j = jaro(&a, &b);
            let w = jaro_winkler(&a, &b);
            prop_assert!(w + 1e-12 >= j);
            prop_assert!(w <= 1.0 + 1e-12);
        }

        #[test]
        fn identity_scores_one(a in "[a-z]{1,12}") {
            prop_assert!((jaro(&a, &a) - 1.0).abs() < 1e-12);
        }
    }
}
