//! Monge-Elkan hybrid similarity: token-level alignment with a
//! character-level inner measure.

use crate::jaro::jaro_winkler;
use certa_core::tokens::tokenize;

/// Monge-Elkan similarity with Jaro-Winkler as the inner measure:
/// for each token of `a`, take its best Jaro-Winkler match in `b`, then
/// average. Note: **asymmetric** by definition; use
/// [`monge_elkan_symmetric`] when symmetry is required.
pub fn monge_elkan(a: &str, b: &str) -> f64 {
    let ta = tokenize(a);
    let tb = tokenize(b);
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    if ta.is_empty() || tb.is_empty() {
        return 0.0;
    }
    let total: f64 = ta
        .iter()
        .map(|x| tb.iter().map(|y| jaro_winkler(x, y)).fold(0.0, f64::max))
        .sum();
    total / ta.len() as f64
}

/// Symmetrized Monge-Elkan: mean of both directions.
pub fn monge_elkan_symmetric(a: &str, b: &str) -> f64 {
    0.5 * (monge_elkan(a, b) + monge_elkan(b, a))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identical_strings_score_one() {
        assert!((monge_elkan("sony bravia theater", "sony bravia theater") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn token_subset_scores_high_one_way() {
        // Every token of "sony bravia" has a perfect match in the longer string.
        let forward = monge_elkan("sony bravia", "sony bravia theater black");
        assert!((forward - 1.0).abs() < 1e-12);
        // The reverse direction is penalized for unmatched tokens.
        let backward = monge_elkan("sony bravia theater black", "sony bravia");
        assert!(backward < forward);
    }

    #[test]
    fn tolerates_token_typos() {
        let s = monge_elkan("sony bravia", "sonny bravia");
        assert!(s > 0.85 && s < 1.0);
    }

    #[test]
    fn degenerate_cases() {
        assert_eq!(monge_elkan("", ""), 1.0);
        assert_eq!(monge_elkan("a", ""), 0.0);
        assert_eq!(monge_elkan("", "a"), 0.0);
    }

    proptest! {
        #[test]
        fn bounded(a in "[a-c ]{0,16}", b in "[a-c ]{0,16}") {
            let s = monge_elkan(&a, &b);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&s));
        }

        #[test]
        fn symmetric_variant_is_symmetric(a in "[a-c ]{0,16}", b in "[a-c ]{0,16}") {
            let s1 = monge_elkan_symmetric(&a, &b);
            let s2 = monge_elkan_symmetric(&b, &a);
            prop_assert!((s1 - s2).abs() < 1e-12);
        }
    }
}
