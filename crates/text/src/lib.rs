//! # certa-text
//!
//! String-similarity substrate for the `certa-rs` workspace.
//!
//! The DeepMatcher-style matcher consumes per-attribute similarity summaries,
//! the counterfactual metrics (proximity / diversity, §5.3) need attribute-wise
//! distances, and the synthetic data generator validates its corruption
//! channels against these measures. All functions return similarities in
//! `[0, 1]` where 1 means identical, and are symmetric unless documented
//! otherwise.

pub mod cosine;
pub mod edit;
pub mod jaro;
pub mod monge_elkan;
pub mod ngram;
pub mod numeric;
pub mod token_sets;

pub use cosine::{cosine_tf, CorpusStats};
pub use edit::{levenshtein, levenshtein_sim, osa_distance};
pub use jaro::{jaro, jaro_winkler};
pub use monge_elkan::{monge_elkan, monge_elkan_symmetric};
pub use ngram::{char_ngrams, trigram_sim};
pub use numeric::{numeric_sim, parse_number};
pub use token_sets::{
    dice, dice_tokens, jaccard, jaccard_tokens, overlap_coefficient, overlap_coefficient_tokens,
};

/// A robust hybrid attribute-value similarity used by the evaluation metrics.
///
/// * both empty → 1.0 (two missing values are "the same");
/// * one empty → 0.0;
/// * numeric values → [`numeric::numeric_sim`];
/// * otherwise the mean of token Jaccard and Jaro-Winkler, which is tolerant
///   to both token reordering and character-level typos.
pub fn attribute_sim(a: &str, b: &str) -> f64 {
    let (a, b) = (a.trim(), b.trim());
    match (a.is_empty(), b.is_empty()) {
        (true, true) => return 1.0,
        (true, false) | (false, true) => return 0.0,
        _ => {}
    }
    if let (Some(x), Some(y)) = (parse_number(a), parse_number(b)) {
        return numeric_sim(x, y);
    }
    0.5 * jaccard(a, b) + 0.5 * jaro_winkler(a, b)
}

/// Distance counterpart of [`attribute_sim`] (`1 − sim`).
pub fn attribute_dist(a: &str, b: &str) -> f64 {
    1.0 - attribute_sim(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn attribute_sim_handles_missing() {
        assert_eq!(attribute_sim("", ""), 1.0);
        assert_eq!(attribute_sim("  ", ""), 1.0);
        assert_eq!(attribute_sim("x", ""), 0.0);
        assert_eq!(attribute_sim("", "x"), 0.0);
    }

    #[test]
    fn attribute_sim_identical_strings() {
        assert!((attribute_sim("sony bravia", "sony bravia") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn attribute_sim_numeric_branch() {
        assert!(attribute_sim("100", "100") > 0.999);
        assert!(attribute_sim("100", "1000") < attribute_sim("100", "110"));
    }

    #[test]
    fn attribute_dist_complements() {
        let s = attribute_sim("sony tv", "sony television");
        assert!((attribute_dist("sony tv", "sony television") - (1.0 - s)).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn attribute_sim_bounded_and_symmetric(
            a in "[a-z0-9 ]{0,24}", b in "[a-z0-9 ]{0,24}"
        ) {
            let s = attribute_sim(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s));
            prop_assert!((s - attribute_sim(&b, &a)).abs() < 1e-12);
        }
    }
}
