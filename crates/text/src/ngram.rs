//! Character n-gram extraction and n-gram-set similarity.

use certa_core::hash::FxHashSet;

/// Extract the set of character `n`-grams of `s` (padding-free).
///
/// Strings shorter than `n` yield the whole string as a single gram so that
/// short model codes ("b")" still compare non-trivially.
pub fn char_ngrams(s: &str, n: usize) -> FxHashSet<String> {
    assert!(n >= 1, "n-gram size must be >= 1");
    let chars: Vec<char> = s.chars().collect();
    let mut grams = FxHashSet::default();
    if chars.is_empty() {
        return grams;
    }
    if chars.len() < n {
        grams.insert(chars.iter().collect());
        return grams;
    }
    for w in chars.windows(n) {
        grams.insert(w.iter().collect());
    }
    grams
}

/// Jaccard similarity of character trigram sets — a cheap typo-tolerant
/// similarity used by the Ditto-style serialized matcher.
pub fn trigram_sim(a: &str, b: &str) -> f64 {
    let ga = char_ngrams(a, 3);
    let gb = char_ngrams(b, 3);
    if ga.is_empty() && gb.is_empty() {
        return 1.0;
    }
    if ga.is_empty() || gb.is_empty() {
        return 0.0;
    }
    let inter = ga.intersection(&gb).count();
    let union = ga.len() + gb.len() - inter;
    inter as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ngram_extraction() {
        let grams = char_ngrams("abcd", 2);
        assert_eq!(grams.len(), 3);
        assert!(grams.contains("ab") && grams.contains("bc") && grams.contains("cd"));
    }

    #[test]
    fn short_strings_become_single_gram() {
        let grams = char_ngrams("ab", 3);
        assert_eq!(grams.len(), 1);
        assert!(grams.contains("ab"));
        assert!(char_ngrams("", 3).is_empty());
    }

    #[test]
    fn trigram_sim_tolerates_typos() {
        let clean = trigram_sim("bravia theater", "bravia theater");
        let typo = trigram_sim("bravia theater", "bravia thaeter");
        let different = trigram_sim("bravia theater", "walkman player");
        assert_eq!(clean, 1.0);
        assert!(typo > 0.4 && typo < 1.0);
        assert!(different < typo);
    }

    #[test]
    fn trigram_degenerate() {
        assert_eq!(trigram_sim("", ""), 1.0);
        assert_eq!(trigram_sim("abc", ""), 0.0);
    }

    #[test]
    #[should_panic(expected = "n-gram size")]
    fn zero_n_rejected() {
        let _ = char_ngrams("abc", 0);
    }

    proptest! {
        #[test]
        fn trigram_bounded_symmetric(a in "[a-c]{0,12}", b in "[a-c]{0,12}") {
            let s = trigram_sim(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s));
            prop_assert!((s - trigram_sim(&b, &a)).abs() < 1e-12);
        }

        #[test]
        fn gram_count_bound(s in "[a-z]{0,20}", n in 1usize..5) {
            let grams = char_ngrams(&s, n);
            let len = s.chars().count();
            prop_assert!(grams.len() <= len.saturating_sub(n) + 1 || grams.len() <= 1);
        }
    }
}
