//! Character-level edit distances.

/// Levenshtein distance (insert / delete / substitute, unit costs).
///
/// Two-row dynamic program, `O(|a|·|b|)` time, `O(min(|a|,|b|))` space.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    // Keep the inner row the shorter one.
    let (long, short) = if a.len() >= b.len() {
        (&a, &b)
    } else {
        (&b, &a)
    };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut cur = vec![0usize; short.len() + 1];
    for (i, &lc) in long.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &sc) in short.iter().enumerate() {
            let sub = prev[j] + usize::from(lc != sc);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[short.len()]
}

/// Normalized Levenshtein similarity: `1 − dist / max(|a|, |b|)`.
///
/// Empty-vs-empty is 1.0.
pub fn levenshtein_sim(a: &str, b: &str) -> f64 {
    let la = a.chars().count();
    let lb = b.chars().count();
    let denom = la.max(lb);
    if denom == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / denom as f64
}

/// Optimal string alignment distance (Levenshtein + adjacent transposition,
/// each substring edited at most once). Catches the "typo swaps two letters"
/// corruption the data generator emits.
pub fn osa_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (n, m) = (a.len(), b.len());
    if n == 0 {
        return m;
    }
    if m == 0 {
        return n;
    }
    // Three rows: i-2, i-1, i.
    let mut row2: Vec<usize> = vec![0; m + 1];
    let mut row1: Vec<usize> = (0..=m).collect();
    let mut row0: Vec<usize> = vec![0; m + 1];
    for i in 1..=n {
        row0[0] = i;
        for j in 1..=m {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            let mut best = (row1[j - 1] + cost).min(row1[j] + 1).min(row0[j - 1] + 1);
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                best = best.min(row2[j - 2] + 1);
            }
            row0[j] = best;
        }
        std::mem::swap(&mut row2, &mut row1);
        std::mem::swap(&mut row1, &mut row0);
    }
    row1[m]
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn levenshtein_known_values() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("sony", "sony"), 0);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
    }

    #[test]
    fn levenshtein_unicode() {
        assert_eq!(levenshtein("café", "cafe"), 1);
        assert_eq!(levenshtein("über", "uber"), 1);
    }

    #[test]
    fn sim_normalization() {
        assert_eq!(levenshtein_sim("", ""), 1.0);
        assert_eq!(levenshtein_sim("ab", "ab"), 1.0);
        assert_eq!(levenshtein_sim("ab", "cd"), 0.0);
        assert!((levenshtein_sim("kitten", "sitting") - (1.0 - 3.0 / 7.0)).abs() < 1e-12);
    }

    #[test]
    fn osa_counts_transposition_as_one() {
        assert_eq!(osa_distance("ab", "ba"), 1);
        assert_eq!(levenshtein("ab", "ba"), 2);
        assert_eq!(osa_distance("ca", "abc"), 3); // OSA (not full Damerau)
        assert_eq!(osa_distance("", "xy"), 2);
        assert_eq!(osa_distance("xy", ""), 2);
    }

    proptest! {
        #[test]
        fn levenshtein_symmetric(a in "[a-z]{0,12}", b in "[a-z]{0,12}") {
            prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        }

        #[test]
        fn levenshtein_identity(a in "[a-z]{0,12}") {
            prop_assert_eq!(levenshtein(&a, &a), 0);
        }

        #[test]
        fn levenshtein_triangle(a in "[a-z]{0,8}", b in "[a-z]{0,8}", c in "[a-z]{0,8}") {
            prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
        }

        #[test]
        fn osa_never_exceeds_levenshtein(a in "[a-z]{0,10}", b in "[a-z]{0,10}") {
            prop_assert!(osa_distance(&a, &b) <= levenshtein(&a, &b));
        }

        #[test]
        fn single_edit_costs_one(a in "[a-z]{1,12}", idx in 0usize..12) {
            let chars: Vec<char> = a.chars().collect();
            let i = idx % chars.len();
            let mut edited = chars.clone();
            edited[i] = if edited[i] == 'z' { 'a' } else { 'z' };
            let edited: String = edited.into_iter().collect();
            if edited != a {
                prop_assert_eq!(levenshtein(&a, &edited), 1);
            }
        }
    }
}
