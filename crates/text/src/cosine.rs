//! Cosine similarity over term-frequency vectors, with optional IDF weights.

use certa_core::hash::FxHashMap;
use certa_core::tokens::tokens;

fn tf<'a>(toks: impl IntoIterator<Item = &'a str>) -> FxHashMap<&'a str, f64> {
    let mut m: FxHashMap<&str, f64> = FxHashMap::default();
    for t in toks {
        *m.entry(t).or_insert(0.0) += 1.0;
    }
    m
}

/// Plain TF cosine similarity between two strings' token-count vectors.
pub fn cosine_tf(a: &str, b: &str) -> f64 {
    let ta = tf(tokens(a));
    let tb = tf(tokens(b));
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    cosine_of(&ta, &tb, None)
}

fn cosine_of(
    ta: &FxHashMap<&str, f64>,
    tb: &FxHashMap<&str, f64>,
    idf: Option<&CorpusStats>,
) -> f64 {
    let weight = |tok: &str| idf.map_or(1.0, |c| c.idf(tok));
    let mut dot = 0.0;
    // Iteration order here chooses the float-summation order, which picks
    // the rounding of `dot` and the norms. FxHashMap iteration is a pure
    // function of the insertion sequence (FxHash has no per-process
    // RandomState), and tokenization builds these maps in text order, so
    // the sums are bit-stable across runs and platforms. Sorting instead
    // would *change* the pinned bits and invalidate every golden fixture.
    // certa-lint: allow(no-unordered-iteration) — FxHashMap order is a pure function of the insertion sequence; sorting would change summed-float rounding pinned by golden fixtures
    for (tok, &fa) in ta {
        if let Some(&fb) = tb.get(tok) {
            let w = weight(tok);
            dot += fa * w * fb * w;
        }
    }
    let na: f64 = ta
        // certa-lint: allow(no-unordered-iteration) — same insertion-ordered float sum as `dot` above
        .iter()
        .map(|(t, f)| (f * weight(t)).powi(2))
        .sum::<f64>()
        .sqrt();
    let nb: f64 = tb
        // certa-lint: allow(no-unordered-iteration) — same insertion-ordered float sum as `dot` above
        .iter()
        .map(|(t, f)| (f * weight(t)).powi(2))
        .sum::<f64>()
        .sqrt();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot / (na * nb)
}

/// Document-frequency statistics over a corpus of strings, providing smoothed
/// IDF weights: `ln(1 + N / (1 + df))`.
///
/// The DeepMatcher-style matcher weighs attribute tokens by corpus IDF so
/// that brand names ("sony") count less than model numbers ("davis50b") —
/// matching how the real systems lean on distinctive tokens.
#[derive(Debug, Clone, Default)]
pub struct CorpusStats {
    doc_count: usize,
    df: FxHashMap<String, usize>,
}

impl CorpusStats {
    /// Empty corpus (all tokens get the same weight).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one document's distinct tokens.
    pub fn add_document(&mut self, text: &str) {
        self.add_document_tokens(tokens(text));
    }

    /// [`CorpusStats::add_document`] over a pre-tokenized view.
    pub fn add_document_tokens<'a>(&mut self, toks: impl IntoIterator<Item = &'a str>) {
        self.doc_count += 1;
        let mut seen: certa_core::hash::FxHashSet<&str> = certa_core::hash::FxHashSet::default();
        for t in toks {
            if seen.insert(t) {
                *self.df.entry(t.to_string()).or_insert(0) += 1;
            }
        }
    }

    /// Number of documents added.
    pub fn doc_count(&self) -> usize {
        self.doc_count
    }

    /// Every `(token, document frequency)` entry, in map order (callers that
    /// need determinism — e.g. the `certa-store` codec — sort the result).
    pub fn df_entries(&self) -> impl Iterator<Item = (&str, usize)> {
        // certa-lint: allow(no-unordered-iteration) — raw export; the certa-store codec sorts before encoding (pinned by its snapshot tests)
        self.df.iter().map(|(t, &c)| (t.as_str(), c))
    }

    /// Rebuild fitted statistics from exported entries (the persistence
    /// path). Duplicate tokens keep the last count.
    pub fn from_parts(
        doc_count: usize,
        entries: impl IntoIterator<Item = (String, usize)>,
    ) -> Self {
        CorpusStats {
            doc_count,
            df: entries.into_iter().collect(),
        }
    }

    /// Smoothed inverse document frequency of a token.
    pub fn idf(&self, token: &str) -> f64 {
        let df = self.df.get(token).copied().unwrap_or(0);
        (1.0 + self.doc_count as f64 / (1.0 + df as f64)).ln()
    }

    /// TF-IDF cosine similarity under this corpus' weights.
    pub fn cosine_tfidf(&self, a: &str, b: &str) -> f64 {
        self.cosine_tfidf_tokens(tokens(a), tokens(b))
    }

    /// [`CorpusStats::cosine_tfidf`] over pre-tokenized views (identical
    /// term-frequency maps, hence bit-identical results).
    pub fn cosine_tfidf_tokens<'a>(
        &self,
        a: impl IntoIterator<Item = &'a str>,
        b: impl IntoIterator<Item = &'a str>,
    ) -> f64 {
        let ta = tf(a);
        let tb = tf(b);
        if ta.is_empty() && tb.is_empty() {
            return 1.0;
        }
        cosine_of(&ta, &tb, Some(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn cosine_known_values() {
        assert!((cosine_tf("a b", "a b") - 1.0).abs() < 1e-12);
        assert_eq!(cosine_tf("a", "b"), 0.0);
        // ("a b", "a c"): dot = 1, norms = sqrt(2) each → 0.5
        assert!((cosine_tf("a b", "a c") - 0.5).abs() < 1e-12);
        assert_eq!(cosine_tf("", ""), 1.0);
        assert_eq!(cosine_tf("a", ""), 0.0);
    }

    #[test]
    fn tf_weighting_counts_repeats() {
        // "a a b" = (2,1); "a b" = (1,1): dot = 3, norms √5·√2 → 3/√10
        let expected = 3.0 / (10.0f64).sqrt();
        assert!((cosine_tf("a a b", "a b") - expected).abs() < 1e-12);
    }

    #[test]
    fn idf_downweights_common_tokens() {
        let mut c = CorpusStats::new();
        for _ in 0..50 {
            c.add_document("sony product");
        }
        c.add_document("davis50b rare");
        assert!(c.idf("davis50b") > c.idf("sony"));
        assert!(c.idf("unseen-token") > c.idf("davis50b"));
        assert_eq!(c.doc_count(), 51);
    }

    #[test]
    fn parts_roundtrip_preserves_weights() {
        let mut c = CorpusStats::new();
        c.add_document("sony tv common");
        c.add_document("sony rare davis50b");
        let entries: Vec<(String, usize)> =
            c.df_entries().map(|(t, n)| (t.to_string(), n)).collect();
        let rebuilt = CorpusStats::from_parts(c.doc_count(), entries);
        assert_eq!(rebuilt.doc_count(), 2);
        for tok in ["sony", "tv", "davis50b", "unseen"] {
            assert_eq!(rebuilt.idf(tok).to_bits(), c.idf(tok).to_bits());
        }
        assert_eq!(
            rebuilt.cosine_tfidf("sony tv", "sony davis50b").to_bits(),
            c.cosine_tfidf("sony tv", "sony davis50b").to_bits()
        );
    }

    #[test]
    fn tfidf_prefers_distinctive_overlap() {
        let mut c = CorpusStats::new();
        for _ in 0..40 {
            c.add_document("sony tv common words");
        }
        c.add_document("davis50b");
        c.add_document("im600usb");
        // Shared rare token beats shared common token.
        let rare = c.cosine_tfidf("davis50b sony", "davis50b tv");
        let common = c.cosine_tfidf("sony davis50b", "sony im600usb");
        assert!(rare > common);
    }

    proptest! {
        #[test]
        fn cosine_bounded_symmetric(a in "[a-c ]{0,16}", b in "[a-c ]{0,16}") {
            let s = cosine_tf(&a, &b);
            prop_assert!((-1e-12..=1.0 + 1e-12).contains(&s));
            prop_assert!((s - cosine_tf(&b, &a)).abs() < 1e-12);
        }

        #[test]
        fn tfidf_identity_is_one(a in "[a-z]{1,8}( [a-z]{1,8}){0,4}") {
            let mut c = CorpusStats::new();
            c.add_document(&a);
            prop_assert!((c.cosine_tfidf(&a, &a) - 1.0).abs() < 1e-9);
        }
    }
}
