//! Numeric attribute handling (prices, years, capacities).

/// Try to parse a string as a single number, tolerating currency symbols,
/// thousands separators and surrounding whitespace (`"$1,299.00"` → 1299.0).
///
/// Returns `None` for empty strings or strings with non-numeric content.
pub fn parse_number(s: &str) -> Option<f64> {
    let cleaned: String = s
        .trim()
        .chars()
        .filter(|c| !matches!(c, '$' | '€' | '£' | ','))
        .collect();
    if cleaned.is_empty() {
        return None;
    }
    cleaned.trim().parse::<f64>().ok().filter(|v| v.is_finite())
}

/// Similarity of two numbers based on relative difference:
/// `1 − |x−y| / max(|x|, |y|)`, clamped to `[0, 1]`; equal values give 1.0.
pub fn numeric_sim(x: f64, y: f64) -> f64 {
    if x == y {
        return 1.0;
    }
    let denom = x.abs().max(y.abs());
    if denom == 0.0 {
        return 1.0;
    }
    (1.0 - (x - y).abs() / denom).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parse_variants() {
        assert_eq!(parse_number("379.72"), Some(379.72));
        assert_eq!(parse_number("$1,299.00"), Some(1299.0));
        assert_eq!(parse_number("  42 "), Some(42.0));
        assert_eq!(parse_number("-3.5"), Some(-3.5));
        assert_eq!(parse_number(""), None);
        assert_eq!(parse_number("NaN-ish text"), None);
        assert_eq!(parse_number("sony"), None);
        assert_eq!(parse_number("inf"), None, "non-finite rejected");
    }

    #[test]
    fn sim_known_values() {
        assert_eq!(numeric_sim(100.0, 100.0), 1.0);
        assert_eq!(numeric_sim(0.0, 0.0), 1.0);
        assert!((numeric_sim(100.0, 110.0) - (1.0 - 10.0 / 110.0)).abs() < 1e-12);
        assert_eq!(numeric_sim(1.0, -1.0), 0.0); // |x−y| = 2, denom = 1 → clamp
        assert_eq!(numeric_sim(0.0, 5.0), 0.0);
    }

    proptest! {
        #[test]
        fn sim_bounded_symmetric(x in -1e6f64..1e6, y in -1e6f64..1e6) {
            let s = numeric_sim(x, y);
            prop_assert!((0.0..=1.0).contains(&s));
            prop_assert!((s - numeric_sim(y, x)).abs() < 1e-12);
        }

        #[test]
        fn closer_is_more_similar(x in 1.0f64..1e4, d1 in 0.0f64..100.0, d2 in 100.0f64..1e4) {
            prop_assert!(numeric_sim(x, x + d1) >= numeric_sim(x, x + d2));
        }

        #[test]
        fn parse_roundtrip(v in -1e6f64..1e6) {
            let s = format!("{v}");
            let parsed = parse_number(&s).unwrap();
            prop_assert!((parsed - v).abs() < 1e-9 * v.abs().max(1.0));
        }
    }
}
