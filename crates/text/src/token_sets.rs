//! Token-set similarities (Jaccard, Dice, overlap coefficient).
//!
//! Every measure has two entry points: the classic `&str` form (tokenizes
//! internally) and a `*_tokens` form over **pre-tokenized views** — callers
//! holding cached token lists (e.g. [`certa_core::AttrValue::clean_tokens`])
//! skip the re-tokenization entirely. Both forms build identical sets, so
//! they return bit-identical results.
//!
//! Set sizes and intersections are counted by a **sorted-slice merge**
//! rather than hash-set probes: dedup-sorted token slices walk forward in
//! one branch-predictable linear pass over contiguous memory, which is the
//! cache-friendly shape for the DeepMatcher featurizer's hot inner loop.
//! The counts are exact integers either way, so every ratio is
//! bit-identical to the old `FxHashSet` implementation.

use certa_core::tokens::tokens;
use std::cmp::Ordering;

fn sorted_unique<'a>(toks: impl IntoIterator<Item = &'a str>) -> Vec<&'a str> {
    let mut v: Vec<&str> = toks.into_iter().collect();
    v.sort_unstable();
    v.dedup();
    v
}

/// `|A ∩ B|` of two dedup-sorted slices by linear merge.
fn intersection_count(a: &[&str], b: &[&str]) -> usize {
    let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
    while let (Some(x), Some(y)) = (a.get(i), b.get(j)) {
        match x.cmp(y) {
            Ordering::Less => i += 1,
            Ordering::Greater => j += 1,
            Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Jaccard similarity over whitespace token sets: `|A∩B| / |A∪B|`.
///
/// Both-empty is 1.0.
pub fn jaccard(a: &str, b: &str) -> f64 {
    jaccard_tokens(tokens(a), tokens(b))
}

/// [`jaccard`] over pre-tokenized views (no re-tokenization).
pub fn jaccard_tokens<'a>(
    a: impl IntoIterator<Item = &'a str>,
    b: impl IntoIterator<Item = &'a str>,
) -> f64 {
    let sa = sorted_unique(a);
    let sb = sorted_unique(b);
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = intersection_count(&sa, &sb);
    let union = sa.len() + sb.len() - inter;
    inter as f64 / union as f64
}

/// Dice coefficient over token sets: `2|A∩B| / (|A| + |B|)`.
pub fn dice(a: &str, b: &str) -> f64 {
    dice_tokens(tokens(a), tokens(b))
}

/// [`dice`] over pre-tokenized views.
pub fn dice_tokens<'a>(
    a: impl IntoIterator<Item = &'a str>,
    b: impl IntoIterator<Item = &'a str>,
) -> f64 {
    let sa = sorted_unique(a);
    let sb = sorted_unique(b);
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = intersection_count(&sa, &sb);
    2.0 * inter as f64 / (sa.len() + sb.len()) as f64
}

/// Overlap coefficient: `|A∩B| / min(|A|, |B|)` — 1.0 when one token set
/// contains the other, which flags the "description embeds the name"
/// structure common in product datasets like Abt-Buy.
pub fn overlap_coefficient(a: &str, b: &str) -> f64 {
    overlap_coefficient_tokens(tokens(a), tokens(b))
}

/// [`overlap_coefficient`] over pre-tokenized views.
pub fn overlap_coefficient_tokens<'a>(
    a: impl IntoIterator<Item = &'a str>,
    b: impl IntoIterator<Item = &'a str>,
) -> f64 {
    let sa = sorted_unique(a);
    let sb = sorted_unique(b);
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    if sa.is_empty() || sb.is_empty() {
        return 0.0;
    }
    let inter = intersection_count(&sa, &sb);
    inter as f64 / sa.len().min(sb.len()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn jaccard_known_values() {
        assert_eq!(jaccard("a b c", "a b c"), 1.0);
        assert_eq!(jaccard("a b", "c d"), 0.0);
        assert!((jaccard("a b c", "b c d") - 0.5).abs() < 1e-12); // 2 / 4
        assert_eq!(jaccard("", ""), 1.0);
        assert_eq!(jaccard("a", ""), 0.0);
    }

    #[test]
    fn duplicates_collapse() {
        assert_eq!(jaccard("a a a", "a"), 1.0);
        assert_eq!(dice("b b", "b"), 1.0);
    }

    #[test]
    fn dice_known_values() {
        assert!((dice("a b c", "b c d") - (2.0 * 2.0 / 6.0)).abs() < 1e-12);
        assert_eq!(dice("", ""), 1.0);
        assert_eq!(dice("x", "y"), 0.0);
    }

    #[test]
    fn overlap_detects_containment() {
        assert_eq!(
            overlap_coefficient("sony bravia", "sony bravia theater black micro"),
            1.0
        );
        assert_eq!(overlap_coefficient("a", ""), 0.0);
        assert_eq!(overlap_coefficient("", ""), 1.0);
        assert!((overlap_coefficient("a b", "b c d") - 0.5).abs() < 1e-12);
    }

    #[test]
    fn token_views_match_string_entry_points() {
        for (a, b) in [
            ("a b c", "b c d"),
            ("", ""),
            ("a", ""),
            ("sony bravia theater", "sony cinema"),
        ] {
            let (ta, tb): (Vec<&str>, Vec<&str>) = (
                a.split_whitespace().collect(),
                b.split_whitespace().collect(),
            );
            assert_eq!(
                jaccard(a, b),
                jaccard_tokens(ta.iter().copied(), tb.iter().copied())
            );
            assert_eq!(
                dice(a, b),
                dice_tokens(ta.iter().copied(), tb.iter().copied())
            );
            assert_eq!(
                overlap_coefficient(a, b),
                overlap_coefficient_tokens(ta.iter().copied(), tb.iter().copied())
            );
        }
    }

    proptest! {
        #[test]
        fn all_bounded_symmetric(a in "[a-c ]{0,16}", b in "[a-c ]{0,16}") {
            for f in [jaccard, dice, overlap_coefficient] {
                let s = f(&a, &b);
                prop_assert!((0.0..=1.0).contains(&s));
                prop_assert!((s - f(&b, &a)).abs() < 1e-12);
            }
        }

        #[test]
        fn dice_at_least_jaccard(a in "[a-c ]{0,16}", b in "[a-c ]{0,16}") {
            prop_assert!(dice(&a, &b) + 1e-12 >= jaccard(&a, &b));
        }

        #[test]
        fn identity_is_one(a in "[a-z ]{1,16}") {
            prop_assume!(!a.trim().is_empty());
            prop_assert_eq!(jaccard(&a, &a), 1.0);
            prop_assert_eq!(dice(&a, &a), 1.0);
            prop_assert_eq!(overlap_coefficient(&a, &a), 1.0);
        }
    }
}
