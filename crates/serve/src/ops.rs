//! Operational counters: lock-free request/response accounting and a
//! log2-bucketed latency histogram, rendered through `GET /healthz` and
//! `GET /metrics`.
//!
//! Everything here is atomics — the hot path (one `record` per response)
//! never takes a lock, so ops accounting cannot become the serving
//! bottleneck it is meant to observe.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Number of histogram buckets. Bucket `i` counts latencies in
/// `[2^(i-1), 2^i)` microseconds (bucket 0 is `< 1µs`); bucket 39 tops out
/// above 9 minutes, far beyond any plausible request.
pub const BUCKETS: usize = 40;

/// A log2-bucketed latency histogram over microseconds.
///
/// Quantile queries return the *upper bound* of the bucket containing the
/// requested rank — a ≤2× overestimate by construction, which is the right
/// bias for tail-latency monitoring (never under-reports). Exact
/// percentiles come from the load-generator harness, which keeps raw
/// samples; the server-side histogram is bounded-memory by design.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_micros: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Bucket index for a duration.
    fn bucket_of(d: Duration) -> usize {
        let micros = d.as_micros().min(u64::MAX as u128) as u64;
        ((64 - micros.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// Upper bound (µs) of bucket `i`.
    fn upper_bound_micros(i: usize) -> u64 {
        1u64 << i
    }

    /// Record one observation.
    pub fn record(&self, d: Duration) {
        let micros = d.as_micros().min(u64::MAX as u128) as u64;
        // certa-lint: allow(no-panic-path) — bucket_of clamps to BUCKETS - 1, so the index is in range by construction
        self.buckets[Self::bucket_of(d)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_micros(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_micros.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Upper bound (µs) of the bucket holding the `q`-quantile observation
    /// (`q` in `[0, 1]`); 0 when empty.
    pub fn quantile_micros(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::upper_bound_micros(i);
            }
        }
        Self::upper_bound_micros(BUCKETS - 1)
    }

    /// Snapshot of the non-empty buckets as `(upper_bound_micros, count)`.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((Self::upper_bound_micros(i), n))
            })
            .collect()
    }

    /// Total of all recorded latencies, in microseconds (the Prometheus
    /// histogram `_sum` series).
    pub fn sum_micros(&self) -> u64 {
        self.sum_micros.load(Ordering::Relaxed)
    }

    /// Prometheus-style **cumulative** bucket snapshot: for each non-empty
    /// bucket's upper bound, the count of observations `≤` that bound.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                seen += n;
                out.push((Self::upper_bound_micros(i), seen));
            }
        }
        out
    }
}

/// The routes with dedicated counters (everything else lands in `Other`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// `POST /v1/score`
    Score,
    /// `POST /v1/score_batch`
    ScoreBatch,
    /// `POST /v1/explain`
    Explain,
    /// `POST /v1/explain_batch`
    ExplainBatch,
    /// `POST /v1/block`
    Block,
    /// `POST /v1/cluster`
    Cluster,
    /// `GET /v1/entity`
    Entity,
    /// `GET /v1/models`
    Models,
    /// `POST /v1/reload`
    Reload,
    /// `GET /healthz`
    Healthz,
    /// `GET /metrics`
    Metrics,
    /// Anything else (404s, bad methods, …).
    Other,
}

impl Route {
    const ALL: [Route; 12] = [
        Route::Score,
        Route::ScoreBatch,
        Route::Explain,
        Route::ExplainBatch,
        Route::Block,
        Route::Cluster,
        Route::Entity,
        Route::Models,
        Route::Reload,
        Route::Healthz,
        Route::Metrics,
        Route::Other,
    ];

    /// Position in [`Route::ALL`]; the `route_index_matches_all` test pins
    /// the correspondence.
    fn index(self) -> usize {
        match self {
            Route::Score => 0,
            Route::ScoreBatch => 1,
            Route::Explain => 2,
            Route::ExplainBatch => 3,
            Route::Block => 4,
            Route::Cluster => 5,
            Route::Entity => 6,
            Route::Models => 7,
            Route::Reload => 8,
            Route::Healthz => 9,
            Route::Metrics => 10,
            Route::Other => 11,
        }
    }

    /// Metric label for this route.
    pub fn label(self) -> &'static str {
        match self {
            Route::Score => "score",
            Route::ScoreBatch => "score_batch",
            Route::Explain => "explain",
            Route::ExplainBatch => "explain_batch",
            Route::Block => "block",
            Route::Cluster => "cluster",
            Route::Entity => "entity",
            Route::Models => "models",
            Route::Reload => "reload",
            Route::Healthz => "healthz",
            Route::Metrics => "metrics",
            Route::Other => "other",
        }
    }
}

/// All serving-layer counters, shared across workers via `Arc<AppState>`.
#[derive(Debug)]
pub struct ServerMetrics {
    started: Instant,
    connections_accepted: AtomicU64,
    overload_rejections: AtomicU64,
    worker_panics: AtomicU64,
    conn_timeouts: AtomicU64,
    conn_resets: AtomicU64,
    conn_pipeline_overflows: AtomicU64,
    rate_limited: AtomicU64,
    streamed_responses: AtomicU64,
    requests_by_route: [AtomicU64; 12],
    responses_2xx: AtomicU64,
    responses_4xx: AtomicU64,
    responses_5xx: AtomicU64,
    /// Latency of successfully routed API requests (2xx responses).
    pub latency: LatencyHistogram,
}

impl Default for ServerMetrics {
    fn default() -> Self {
        ServerMetrics {
            started: Instant::now(),
            connections_accepted: AtomicU64::new(0),
            overload_rejections: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            conn_timeouts: AtomicU64::new(0),
            conn_resets: AtomicU64::new(0),
            conn_pipeline_overflows: AtomicU64::new(0),
            rate_limited: AtomicU64::new(0),
            streamed_responses: AtomicU64::new(0),
            requests_by_route: Default::default(),
            responses_2xx: AtomicU64::new(0),
            responses_4xx: AtomicU64::new(0),
            responses_5xx: AtomicU64::new(0),
            latency: LatencyHistogram::default(),
        }
    }
}

impl ServerMetrics {
    /// Uptime since construction.
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// One accepted connection.
    pub fn connection_accepted(&self) {
        self.connections_accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// One connection turned away with `503` because the queue was full.
    pub fn overload_rejected(&self) {
        self.overload_rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// Total `503` overload rejections so far.
    pub fn overload_rejections(&self) -> u64 {
        self.overload_rejections.load(Ordering::Relaxed)
    }

    /// A worker caught a panic while handling a connection.
    pub fn worker_panicked(&self) {
        self.worker_panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Total worker panics caught (0 in a healthy server).
    pub fn worker_panics(&self) -> u64 {
        self.worker_panics.load(Ordering::Relaxed)
    }

    /// One keep-alive connection reaped after idling past the read timeout.
    pub fn conn_timed_out(&self) {
        self.conn_timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Total idle-timeout reaps.
    pub fn conn_timeouts(&self) -> u64 {
        self.conn_timeouts.load(Ordering::Relaxed)
    }

    /// One connection torn down by a transport error (reset, broken pipe,
    /// write failure) rather than an orderly close.
    pub fn conn_reset(&self) {
        self.conn_resets.fetch_add(1, Ordering::Relaxed);
    }

    /// Total transport-error teardowns.
    pub fn conn_resets(&self) -> u64 {
        self.conn_resets.load(Ordering::Relaxed)
    }

    /// One connection hit the per-connection pipelining cap and had its
    /// socket reads paused until responses drained (TCP backpressure).
    pub fn conn_pipeline_overflowed(&self) {
        self.conn_pipeline_overflows.fetch_add(1, Ordering::Relaxed);
    }

    /// Total pipelining-cap backpressure events.
    pub fn conn_pipeline_overflows(&self) -> u64 {
        self.conn_pipeline_overflows.load(Ordering::Relaxed)
    }

    /// One request refused with `429` by per-tenant admission control.
    pub fn rate_limited_rejected(&self) {
        self.rate_limited.fetch_add(1, Ordering::Relaxed);
    }

    /// Total `429` rate-limit rejections.
    pub fn rate_limited(&self) -> u64 {
        self.rate_limited.load(Ordering::Relaxed)
    }

    /// One response streamed with chunked transfer-encoding.
    pub fn response_streamed(&self) {
        self.streamed_responses.fetch_add(1, Ordering::Relaxed);
    }

    /// Total chunked-streamed responses.
    pub fn streamed_responses(&self) -> u64 {
        self.streamed_responses.load(Ordering::Relaxed)
    }

    /// Account one routed request and its response status; `latency` is
    /// recorded for non-error API responses only. Only 4xx and 5xx are
    /// error classes — anything else (2xx today; 1xx/3xx should a handler
    /// ever emit one) counts as success rather than inflating the 5xx
    /// error-rate counter.
    pub fn observe(&self, route: Route, status: u16, latency: Duration) {
        if let Some(counter) = self.requests_by_route.get(route.index()) {
            counter.fetch_add(1, Ordering::Relaxed);
        }
        match status / 100 {
            4 => {
                self.responses_4xx.fetch_add(1, Ordering::Relaxed);
            }
            5 => {
                self.responses_5xx.fetch_add(1, Ordering::Relaxed);
            }
            _ => {
                self.responses_2xx.fetch_add(1, Ordering::Relaxed);
                if !matches!(route, Route::Healthz | Route::Metrics) {
                    self.latency.record(latency);
                }
            }
        }
    }

    /// Total requests observed across routes.
    pub fn requests_total(&self) -> u64 {
        self.requests_by_route
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Responses in the given status class (2, 4, or 5).
    pub fn responses_in_class(&self, class: u16) -> u64 {
        match class {
            2 => self.responses_2xx.load(Ordering::Relaxed),
            4 => self.responses_4xx.load(Ordering::Relaxed),
            _ => self.responses_5xx.load(Ordering::Relaxed),
        }
    }

    /// Render the Prometheus-style text exposition, with per-model cache
    /// lines appended by the caller (the registry owns those).
    pub fn render_prometheus(&self, extra_lines: &str) -> String {
        let mut out = String::with_capacity(2048);
        let p = "certa_serve";
        // certa-lint: allow(no-float-format) — monitoring gauge, not byte-compared wire output; f64 Display is shortest-round-trip
        out.push_str(&format!(
            "# TYPE {p}_uptime_seconds gauge\n{p}_uptime_seconds {}\n",
            self.uptime().as_secs_f64()
        ));
        out.push_str(&format!(
            "# TYPE {p}_connections_accepted_total counter\n{p}_connections_accepted_total {}\n",
            self.connections_accepted.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "# TYPE {p}_overload_rejections_total counter\n{p}_overload_rejections_total {}\n",
            self.overload_rejections()
        ));
        out.push_str(&format!(
            "# TYPE {p}_worker_panics_total counter\n{p}_worker_panics_total {}\n",
            self.worker_panics()
        ));
        // Connection-lifecycle accounting — every abnormal teardown that
        // `serve_connection` used to swallow with `let _ =` is a counter
        // now, so dropped-connection debugging starts at /metrics.
        out.push_str(&format!(
            "# TYPE {p}_conn_timeouts_total counter\n{p}_conn_timeouts_total {}\n",
            self.conn_timeouts()
        ));
        out.push_str(&format!(
            "# TYPE {p}_conn_resets_total counter\n{p}_conn_resets_total {}\n",
            self.conn_resets()
        ));
        out.push_str(&format!(
            "# TYPE {p}_conn_pipeline_overflows_total counter\n{p}_conn_pipeline_overflows_total {}\n",
            self.conn_pipeline_overflows()
        ));
        out.push_str(&format!(
            "# TYPE {p}_rate_limited_total counter\n{p}_rate_limited_total {}\n",
            self.rate_limited()
        ));
        out.push_str(&format!(
            "# TYPE {p}_streamed_responses_total counter\n{p}_streamed_responses_total {}\n",
            self.streamed_responses()
        ));
        out.push_str(&format!("# TYPE {p}_requests_total counter\n"));
        for route in Route::ALL {
            let n = self
                .requests_by_route
                .get(route.index())
                .map_or(0, |c| c.load(Ordering::Relaxed));
            out.push_str(&format!(
                "{p}_requests_total{{route=\"{}\"}} {}\n",
                route.label(),
                n
            ));
        }
        out.push_str(&format!("# TYPE {p}_responses_total counter\n"));
        for (class, n) in [
            ("2xx", self.responses_2xx.load(Ordering::Relaxed)),
            ("4xx", self.responses_4xx.load(Ordering::Relaxed)),
            ("5xx", self.responses_5xx.load(Ordering::Relaxed)),
        ] {
            out.push_str(&format!("{p}_responses_total{{class=\"{class}\"}} {n}\n"));
        }
        // Conformant Prometheus histogram: cumulative buckets ending in
        // `+Inf`, plus `_sum` and `_count` (so `histogram_quantile` and
        // avg-latency queries work on a real Prometheus server).
        out.push_str(&format!("# TYPE {p}_request_latency_micros histogram\n"));
        for (le, cumulative) in self.latency.cumulative_buckets() {
            out.push_str(&format!(
                "{p}_request_latency_micros_bucket{{le=\"{le}\"}} {cumulative}\n"
            ));
        }
        out.push_str(&format!(
            "{p}_request_latency_micros_bucket{{le=\"+Inf\"}} {}\n{p}_request_latency_micros_sum {}\n{p}_request_latency_micros_count {}\n",
            self.latency.count(),
            self.latency.sum_micros(),
            self.latency.count(),
        ));
        // Server-side quantile estimates (bucket upper bounds, ≤2× high) as
        // a separate gauge — quantile labels belong to summaries, not
        // histograms, so they get their own series name.
        out.push_str(&format!(
            "# TYPE {p}_request_latency_quantile_micros gauge\n"
        ));
        for (q, label) in [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
            out.push_str(&format!(
                "{p}_request_latency_quantile_micros{{quantile=\"{label}\"}} {}\n",
                self.latency.quantile_micros(q)
            ));
        }
        out.push_str(extra_lines);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_index_matches_all() {
        for (i, route) in Route::ALL.into_iter().enumerate() {
            assert_eq!(route.index(), i, "{:?} out of place in Route::ALL", route);
        }
    }

    #[test]
    fn histogram_buckets_by_log2_micros() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_micros(0.5), 0, "empty histogram");
        h.record(Duration::from_micros(0)); // bucket 0
        h.record(Duration::from_micros(1)); // bucket 1 (le=2)
        h.record(Duration::from_micros(3)); // bucket 2 (le=4)
        h.record(Duration::from_micros(1000)); // le=1024
        assert_eq!(h.count(), 4);
        assert_eq!(h.mean_micros(), 251.0);
        assert_eq!(h.sum_micros(), 1004);
        assert_eq!(
            h.cumulative_buckets(),
            vec![(1, 1), (2, 2), (4, 3), (1024, 4)],
            "Prometheus buckets are cumulative"
        );
        assert_eq!(h.nonzero_buckets(), vec![(1, 1), (2, 1), (4, 1), (1024, 1)]);
        assert_eq!(h.quantile_micros(0.0), 1);
        assert_eq!(h.quantile_micros(0.5), 2);
        assert_eq!(h.quantile_micros(1.0), 1024);
    }

    #[test]
    fn quantiles_never_under_report() {
        let h = LatencyHistogram::default();
        for micros in [10u64, 20, 30, 40, 50, 1000, 2000, 5000, 100_000, 400_000] {
            h.record(Duration::from_micros(micros));
        }
        // Upper-bound semantics: the bucket bound is ≥ the true value.
        assert!(h.quantile_micros(0.5) >= 30);
        assert!(h.quantile_micros(0.99) >= 400_000);
        // And within 2× by construction.
        assert!(h.quantile_micros(0.99) < 2 * 524_288);
    }

    #[test]
    fn huge_durations_saturate_the_top_bucket() {
        let h = LatencyHistogram::default();
        // ~7 days in microseconds lands beyond bucket 39's lower bound …
        h.record(Duration::from_secs(600_000));
        // … and a value that would overflow u64 microseconds saturates.
        h.record(Duration::from_secs(u64::MAX / 1000));
        assert_eq!(h.count(), 2);
        assert_eq!(h.nonzero_buckets(), vec![(1u64 << (BUCKETS - 1), 2)]);
        assert_eq!(h.quantile_micros(1.0), 1u64 << (BUCKETS - 1));
    }

    #[test]
    fn metrics_account_routes_and_classes() {
        let m = ServerMetrics::default();
        m.connection_accepted();
        m.observe(Route::Explain, 200, Duration::from_micros(500));
        m.observe(Route::Score, 200, Duration::from_micros(100));
        m.observe(Route::Healthz, 200, Duration::from_micros(5));
        m.observe(Route::Other, 404, Duration::from_micros(5));
        m.observe(Route::Explain, 500, Duration::from_micros(5));
        m.overload_rejected();
        assert_eq!(m.requests_total(), 5);
        assert_eq!(m.responses_in_class(2), 3);
        assert_eq!(m.responses_in_class(4), 1);
        assert_eq!(m.responses_in_class(5), 1);
        assert_eq!(m.overload_rejections(), 1);
        assert_eq!(
            m.latency.count(),
            2,
            "healthz and errors stay out of the API latency histogram"
        );
        let text = m.render_prometheus("certa_serve_cache_hits_total{model=\"x\"} 3\n");
        assert!(text.contains("certa_serve_requests_total{route=\"explain\"} 2"));
        assert!(text.contains("certa_serve_responses_total{class=\"5xx\"} 1"));
        assert!(text.contains("certa_serve_overload_rejections_total 1"));
        // Conformant histogram: cumulative buckets end in +Inf and _sum /
        // _count are present; quantiles live on their own gauge series.
        assert!(text.contains("certa_serve_request_latency_micros_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("certa_serve_request_latency_micros_sum 600"));
        assert!(text.contains("certa_serve_request_latency_micros_count 2"));
        assert!(text.contains("certa_serve_request_latency_quantile_micros{quantile=\"0.99\"}"));
        assert!(text.ends_with("certa_serve_cache_hits_total{model=\"x\"} 3\n"));
    }

    #[test]
    fn connection_lifecycle_counters_render() {
        let m = ServerMetrics::default();
        m.conn_timed_out();
        m.conn_timed_out();
        m.conn_reset();
        m.conn_pipeline_overflowed();
        m.rate_limited_rejected();
        m.response_streamed();
        assert_eq!(m.conn_timeouts(), 2);
        assert_eq!(m.conn_resets(), 1);
        assert_eq!(m.conn_pipeline_overflows(), 1);
        assert_eq!(m.rate_limited(), 1);
        assert_eq!(m.streamed_responses(), 1);
        let text = m.render_prometheus("");
        assert!(text.contains("certa_serve_conn_timeouts_total 2"));
        assert!(text.contains("certa_serve_conn_resets_total 1"));
        assert!(text.contains("certa_serve_conn_pipeline_overflows_total 1"));
        assert!(text.contains("certa_serve_rate_limited_total 1"));
        assert!(text.contains("certa_serve_streamed_responses_total 1"));
    }

    #[test]
    fn observe_counts_only_4xx_and_5xx_as_errors() {
        let m = ServerMetrics::default();
        m.observe(Route::Metrics, 304, Duration::from_micros(5));
        assert_eq!(m.responses_in_class(2), 1, "3xx is not an error class");
        assert_eq!(m.responses_in_class(5), 0);
    }
}
