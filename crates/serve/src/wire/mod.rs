//! The wire format: a hand-rolled JSON model ([`json`]) and the DTO
//! encode/decode layer ([`dto`]) that maps the workspace's domain types
//! onto it.

pub mod dto;
pub mod json;

pub use dto::{DtoError, PairDto, PairsRequest, RecordDto};
pub use json::{Json, WireError, MAX_DEPTH};
