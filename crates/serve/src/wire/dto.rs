//! Data-transfer objects: domain types ⇄ [`Json`] wire values.
//!
//! Encoding is total (every domain value has a wire form) and
//! deterministic — field order is fixed, so a [`CertaExplanation`] always
//! serializes to the same bytes. Decoding validates shape and reports
//! field-level errors (`pairs[3].left.values` …) that surface as structured
//! `400` responses.

use crate::wire::json::Json;
use certa_core::{MatchLabel, Prediction, Record, RecordId, Side};
use certa_explain::{
    AttrRef, CertaExplanation, CounterfactualExample, CounterfactualExplanation, LatticeStats,
    SaliencyExplanation, TriangleStats,
};

/// A decode failure: which field, and what was wrong with it.
#[derive(Debug, Clone, PartialEq)]
pub struct DtoError {
    /// Dotted path to the offending field (e.g. `pairs[2].left_id`).
    pub field: String,
    /// What was expected.
    pub message: String,
}

impl std::fmt::Display for DtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "field `{}`: {}", self.field, self.message)
    }
}

impl std::error::Error for DtoError {}

fn expected(field: &str, message: impl Into<String>) -> DtoError {
    DtoError {
        field: field.to_string(),
        message: message.into(),
    }
}

// ---------------------------------------------------------------- encoding

/// `{"id":0,"values":["a","b"]}`
pub fn record_to_json(r: &Record) -> Json {
    Json::obj([
        ("id", Json::num(r.id().0 as f64)),
        (
            "values",
            Json::Arr(r.values().iter().map(Json::str).collect()),
        ),
    ])
}

/// `"match"` / `"non_match"` — the wire spelling of [`MatchLabel`].
pub fn label_to_json(label: MatchLabel) -> Json {
    Json::str(match label {
        MatchLabel::Match => "match",
        MatchLabel::NonMatch => "non_match",
    })
}

/// `{"score":0.92,"label":"match"}`
pub fn prediction_to_json(p: &Prediction) -> Json {
    Json::obj([
        ("score", Json::Num(p.score)),
        ("label", label_to_json(p.label)),
    ])
}

/// `{"side":"L","attr":0}`
pub fn attr_ref_to_json(a: &AttrRef) -> Json {
    Json::obj([
        (
            "side",
            Json::str(match a.side {
                Side::Left => "L",
                Side::Right => "R",
            }),
        ),
        ("attr", Json::num(a.attr.index() as f64)),
    ])
}

/// `{"left":[…],"right":[…]}` — Φ per side, in attribute order.
pub fn saliency_to_json(s: &SaliencyExplanation) -> Json {
    Json::obj([
        (
            "left",
            Json::Arr(s.left_scores().iter().map(|&x| Json::Num(x)).collect()),
        ),
        (
            "right",
            Json::Arr(s.right_scores().iter().map(|&x| Json::Num(x)).collect()),
        ),
    ])
}

/// One counterfactual example with the full perturbed pair.
pub fn cf_example_to_json(ex: &CounterfactualExample) -> Json {
    Json::obj([
        ("left", record_to_json(&ex.left)),
        ("right", record_to_json(&ex.right)),
        (
            "changed",
            Json::Arr(ex.changed.iter().map(attr_ref_to_json).collect()),
        ),
        ("score", Json::Num(ex.score)),
    ])
}

/// Golden set `A★`, χ★, and the example list `E`.
pub fn counterfactual_to_json(cf: &CounterfactualExplanation) -> Json {
    Json::obj([
        (
            "golden_set",
            Json::Arr(cf.golden_set.iter().map(attr_ref_to_json).collect()),
        ),
        ("sufficiency", Json::Num(cf.sufficiency)),
        (
            "examples",
            Json::Arr(cf.examples.iter().map(cf_example_to_json).collect()),
        ),
    ])
}

fn triangle_stats_to_json(t: &TriangleStats) -> Json {
    Json::obj([
        ("natural", Json::num(t.natural as f64)),
        ("augmented", Json::num(t.augmented as f64)),
        ("candidates_scored", Json::num(t.candidates_scored as f64)),
    ])
}

fn lattice_stats_to_json(l: &LatticeStats) -> Json {
    Json::obj([
        ("arity", Json::num(l.arity as f64)),
        ("expected", Json::num(l.expected as f64)),
        ("performed", Json::num(l.performed as f64)),
        ("inferred", Json::num(l.inferred as f64)),
        ("skipped", Json::num(l.skipped as f64)),
    ])
}

/// The full [`CertaExplanation`], field order fixed.
pub fn explanation_to_json(e: &CertaExplanation) -> Json {
    Json::obj([
        ("prediction", prediction_to_json(&e.prediction)),
        ("saliency", saliency_to_json(&e.saliency)),
        ("counterfactual", counterfactual_to_json(&e.counterfactual)),
        ("triangle_stats", triangle_stats_to_json(&e.triangle_stats)),
        (
            "lattice_stats",
            Json::Arr(e.lattice_stats.iter().map(lattice_stats_to_json).collect()),
        ),
        ("mean_sufficiency", Json::Num(e.mean_sufficiency)),
        ("mean_necessity", Json::Num(e.mean_necessity)),
    ])
}

// ---------------------------------------------------------------- decoding

/// A request-side record pair: inline records, table references, or a mix.
#[derive(Debug, Clone, PartialEq)]
pub struct PairDto {
    /// Left record: inline, or a `RecordId` into the dataset's left table.
    pub left: RecordDto,
    /// Right record: inline or referenced.
    pub right: RecordDto,
}

/// One side of a [`PairDto`].
#[derive(Debug, Clone, PartialEq)]
pub enum RecordDto {
    /// A full record given inline (`{"left": {"id":…, "values":[…]}}`).
    Inline(Record),
    /// A reference into the registry dataset (`{"left_id": 3}`).
    ById(RecordId),
}

/// A scoring / explanation request: target model plus one or many pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct PairsRequest {
    /// `"<dataset>/<model>"`, e.g. `"FZ/DeepMatcher"`.
    pub model: String,
    /// The pairs to score or explain.
    pub pairs: Vec<PairDto>,
}

fn num_field(value: &Json, field: &str) -> Result<f64, DtoError> {
    value
        .get(field)
        .ok_or_else(|| expected(field, "missing"))?
        .as_num()
        .ok_or_else(|| expected(field, "expected a number"))
}

fn u32_field(value: &Json, field: &str) -> Result<u32, DtoError> {
    let n = num_field(value, field)?;
    if n < 0.0 || n > u32::MAX as f64 || n.fract() != 0.0 {
        return Err(expected(
            field,
            format!("expected a u32 record id, got {n}"),
        ));
    }
    Ok(n as u32)
}

/// Decode `{"id":…, "values":[…]}`.
pub fn record_from_json(value: &Json, field: &str) -> Result<Record, DtoError> {
    let id =
        u32_field(value, "id").map_err(|e| expected(&format!("{field}.{}", e.field), e.message))?;
    let values = value
        .get("values")
        .ok_or_else(|| expected(&format!("{field}.values"), "missing"))?
        .as_arr()
        .ok_or_else(|| expected(&format!("{field}.values"), "expected an array of strings"))?;
    let mut out = Vec::with_capacity(values.len());
    for (i, v) in values.iter().enumerate() {
        out.push(
            v.as_str()
                .ok_or_else(|| expected(&format!("{field}.values[{i}]"), "expected a string"))?
                .to_string(),
        );
    }
    Ok(Record::new(RecordId(id), out))
}

fn side_from_json(
    value: &Json,
    field: &str,
    inline_key: &str,
    id_key: &str,
) -> Result<RecordDto, DtoError> {
    match (value.get(inline_key), value.get(id_key)) {
        (Some(rec), None) => Ok(RecordDto::Inline(record_from_json(
            rec,
            &format!("{field}.{inline_key}"),
        )?)),
        (None, Some(_)) => Ok(RecordDto::ById(RecordId(
            u32_field(value, id_key)
                .map_err(|e| expected(&format!("{field}.{}", e.field), e.message))?,
        ))),
        (Some(_), Some(_)) => Err(expected(
            field,
            format!("give `{inline_key}` or `{id_key}`, not both"),
        )),
        (None, None) => Err(expected(
            field,
            format!("missing `{inline_key}` (inline record) or `{id_key}` (table reference)"),
        )),
    }
}

/// Decode one pair object (inline records and/or id references).
pub fn pair_from_json(value: &Json, field: &str) -> Result<PairDto, DtoError> {
    if !matches!(value, Json::Obj(_)) {
        return Err(expected(field, "expected a pair object"));
    }
    Ok(PairDto {
        left: side_from_json(value, field, "left", "left_id")?,
        right: side_from_json(value, field, "right", "right_id")?,
    })
}

/// Decode a single-pair request body: `{"model":…, "pair":{…}}`.
pub fn single_request_from_json(value: &Json) -> Result<PairsRequest, DtoError> {
    let model = model_field(value)?;
    let pair = value
        .get("pair")
        .ok_or_else(|| expected("pair", "missing"))?;
    Ok(PairsRequest {
        model,
        pairs: vec![pair_from_json(pair, "pair")?],
    })
}

/// Decode a batch request body: `{"model":…, "pairs":[{…},…]}`.
pub fn batch_request_from_json(value: &Json) -> Result<PairsRequest, DtoError> {
    let model = model_field(value)?;
    let pairs = value
        .get("pairs")
        .ok_or_else(|| expected("pairs", "missing"))?
        .as_arr()
        .ok_or_else(|| expected("pairs", "expected an array of pair objects"))?;
    let mut out = Vec::with_capacity(pairs.len());
    for (i, p) in pairs.iter().enumerate() {
        out.push(pair_from_json(p, &format!("pairs[{i}]"))?);
    }
    Ok(PairsRequest { model, pairs: out })
}

fn model_field(value: &Json) -> Result<String, DtoError> {
    if !matches!(value, Json::Obj(_)) {
        return Err(expected("<body>", "expected a JSON object"));
    }
    Ok(value
        .get("model")
        .ok_or_else(|| expected("model", "missing (`\"<dataset>/<model>\"`)"))?
        .as_str()
        .ok_or_else(|| expected("model", "expected a string"))?
        .to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use certa_core::AttrId;

    fn rec(id: u32, vals: &[&str]) -> Record {
        Record::new(RecordId(id), vals.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn record_roundtrips_through_wire() {
        let r = rec(7, &["sony bravia", "", "42\" tv"]);
        let j = record_to_json(&r);
        assert_eq!(
            j.serialize().unwrap(),
            r#"{"id":7,"values":["sony bravia","","42\" tv"]}"#
        );
        assert_eq!(record_from_json(&j, "r").unwrap(), r);
    }

    #[test]
    fn prediction_and_saliency_encode() {
        let p = Prediction::from_score(0.92);
        assert_eq!(
            prediction_to_json(&p).serialize().unwrap(),
            r#"{"score":0.92,"label":"match"}"#
        );
        let s = SaliencyExplanation::new(vec![0.5, 0.0], vec![1.0]);
        assert_eq!(
            saliency_to_json(&s).serialize().unwrap(),
            r#"{"left":[0.5,0],"right":[1]}"#
        );
    }

    #[test]
    fn explanation_encodes_every_field_in_order() {
        let e = CertaExplanation {
            prediction: Prediction::from_score(0.2),
            saliency: SaliencyExplanation::zeros(1, 1),
            counterfactual: CounterfactualExplanation {
                examples: vec![CounterfactualExample {
                    left: rec(0, &["a"]),
                    right: rec(1, &["b"]),
                    changed: vec![AttrRef {
                        side: Side::Left,
                        attr: AttrId(0),
                    }],
                    score: 0.8,
                }],
                golden_set: vec![AttrRef {
                    side: Side::Left,
                    attr: AttrId(0),
                }],
                sufficiency: 1.0,
            },
            triangle_stats: TriangleStats {
                natural: 4,
                augmented: 2,
                candidates_scored: 30,
            },
            lattice_stats: vec![LatticeStats {
                arity: 3,
                expected: 6,
                performed: 4,
                inferred: 2,
                skipped: 1,
            }],
            mean_sufficiency: 0.75,
            mean_necessity: 0.5,
        };
        let wire = explanation_to_json(&e).serialize().unwrap();
        let parsed = Json::parse(&wire).unwrap();
        // Spot-check structure and field order.
        assert!(wire.starts_with(r#"{"prediction":{"score":0.2,"label":"non_match"}"#));
        assert_eq!(
            parsed.get("counterfactual").unwrap().get("sufficiency"),
            Some(&Json::Num(1.0))
        );
        assert_eq!(
            parsed.get("lattice_stats").unwrap().as_arr().unwrap()[0].get("performed"),
            Some(&Json::Num(4.0))
        );
        assert_eq!(parsed.get("mean_necessity"), Some(&Json::Num(0.5)));
    }

    #[test]
    fn requests_decode_inline_and_by_id() {
        let body = Json::parse(
            r#"{"model":"FZ/DeepMatcher",
                "pairs":[{"left_id":0,"right_id":6},
                         {"left":{"id":1,"values":["x"]},"right_id":2}]}"#,
        )
        .unwrap();
        let req = batch_request_from_json(&body).unwrap();
        assert_eq!(req.model, "FZ/DeepMatcher");
        assert_eq!(req.pairs.len(), 2);
        assert_eq!(req.pairs[0].left, RecordDto::ById(RecordId(0)));
        assert_eq!(req.pairs[1].left, RecordDto::Inline(rec(1, &["x"])));
        assert_eq!(req.pairs[1].right, RecordDto::ById(RecordId(2)));

        let single =
            Json::parse(r#"{"model":"AB/Ditto","pair":{"left_id":1,"right_id":1}}"#).unwrap();
        let req = single_request_from_json(&single).unwrap();
        assert_eq!(req.pairs.len(), 1);
    }

    #[test]
    fn request_decode_errors_name_the_field() {
        let cases: &[(&str, &str)] = &[
            (r#"{"pair":{"left_id":0,"right_id":0}}"#, "model"),
            (r#"{"model":"FZ/Ditto"}"#, "pair"),
            (r#"{"model":"FZ/Ditto","pair":{"right_id":0}}"#, "left"),
            (
                r#"{"model":"FZ/Ditto","pair":{"left_id":-3,"right_id":0}}"#,
                "left_id",
            ),
            (
                r#"{"model":"FZ/Ditto","pair":{"left_id":0.5,"right_id":0}}"#,
                "left_id",
            ),
            (
                r#"{"model":"FZ/Ditto","pair":{"left":{"id":0,"values":[1]},"right_id":0}}"#,
                "values[0]",
            ),
            (
                r#"{"model":"FZ/Ditto","pair":{"left_id":0,"left":{"id":0,"values":[]},"right_id":0}}"#,
                "not both",
            ),
            (r#"[1,2,3]"#, "object"),
        ];
        for (body, needle) in cases {
            let v = Json::parse(body).unwrap();
            let err = single_request_from_json(&v).unwrap_err().to_string();
            assert!(err.contains(needle), "{body} -> {err}");
        }
        // Batch-specific: pairs must be an array, elements must be objects.
        let v = Json::parse(r#"{"model":"FZ/Ditto","pairs":7}"#).unwrap();
        assert!(batch_request_from_json(&v).is_err());
        let v = Json::parse(r#"{"model":"FZ/Ditto","pairs":[7]}"#).unwrap();
        let err = batch_request_from_json(&v).unwrap_err();
        assert_eq!(err.field, "pairs[0]");
    }
}
