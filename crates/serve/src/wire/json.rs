//! A zero-dependency JSON value model with a serializer and a parser.
//!
//! Nothing else in the workspace can emit JSON (the vendored `serde` shim
//! only provides derive markers), so the wire format is hand-rolled here.
//! Design points:
//!
//! * **Deterministic bytes.** Objects preserve insertion order (they are
//!   association vectors, not hash maps), the serializer emits no optional
//!   whitespace, and numbers use Rust's shortest-round-trip `Display` for
//!   `f64`. The same [`Json`] value therefore always serializes to the same
//!   byte string — the property the serving layer's byte-equality guarantee
//!   (server output ≡ in-process output) rests on.
//! * **Total functions.** Serialization returns `Err` on non-finite numbers
//!   (`NaN`/`±inf` have no JSON representation and must never be emitted
//!   silently); parsing returns `Err` on malformed input and enforces a
//!   recursion-depth cap so a hostile `[[[[…` body cannot overflow a worker
//!   thread's stack. Neither path panics on any input.
//! * **Round-trip fidelity.** `parse(serialize(v)) == v` for every value the
//!   serializer accepts: strings round-trip through escape handling
//!   (including `\uXXXX` and surrogate pairs) and floats through
//!   shortest-digits formatting. Enforced by the `wire_props` property
//!   tests.

use std::fmt;

/// Maximum nesting depth the parser accepts. Far deeper than any legitimate
/// explanation payload, far shallower than a stack overflow.
pub const MAX_DEPTH: usize = 64;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (JSON has one numeric type; `f64` covers the wire).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Insertion-ordered so serialization is deterministic.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match; wire objects never repeat keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Builder: an object from key/value pairs, preserving order.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Builder: a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builder: a number from anything convertible to `f64`.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Serialize to a compact JSON byte string.
    ///
    /// Fails (with the offending value's path) if any number in the tree is
    /// non-finite — `NaN` and `±inf` are rejected, never silently emitted.
    pub fn serialize(&self) -> Result<String, WireError> {
        let mut out = String::with_capacity(64);
        write_value(self, &mut out)?;
        Ok(out)
    }

    /// Parse a JSON document. The whole input must be one value (trailing
    /// non-whitespace is an error), nested at most [`MAX_DEPTH`] deep.
    pub fn parse(input: &str) -> Result<Json, WireError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

/// Wire-format error: what went wrong and (for parse errors) where.
#[derive(Debug, Clone, PartialEq)]
pub struct WireError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the input (parse errors only).
    pub offset: Option<usize>,
}

impl WireError {
    fn new(message: impl Into<String>) -> Self {
        WireError {
            message: message.into(),
            offset: None,
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(off) => write!(f, "{} at byte {off}", self.message),
            None => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------- serialize

fn write_value(value: &Json, out: &mut String) -> Result<(), WireError> {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(n) => {
            if !n.is_finite() {
                return Err(WireError::new(format!(
                    "cannot serialize non-finite number {n}"
                )));
            }
            // Rust's `Display` for f64 is shortest-round-trip and never uses
            // exponent notation — always a valid JSON number literal.
            out.push_str(&n.to_string());
        }
        Json::Str(s) => write_string(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Json::Obj(fields) => {
            out.push('{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(v, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// -------------------------------------------------------------------- parse

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> WireError {
        WireError {
            message: message.into(),
            offset: Some(self.pos),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), WireError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, WireError> {
        let rest = self.bytes.get(self.pos..).unwrap_or(&[]);
        if rest.starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(format!("invalid literal (expected `{lit}`)")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, WireError> {
        if depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH}")));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected byte 0x{other:02x}"))),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, WireError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, WireError> {
        self.expect_byte(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, WireError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue; // unicode_escape advanced past digits
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"));
                }
                Some(_) => {
                    // Consume one UTF-8 code point (input is a &str, so the
                    // byte sequence is guaranteed valid).
                    let rest = self.bytes.get(self.pos..).unwrap_or(&[]);
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    match s.chars().next() {
                        Some(c) => {
                            out.push(c);
                            self.pos += c.len_utf8();
                        }
                        None => return Err(self.err("unexpected end of input")),
                    }
                }
            }
        }
    }

    /// Parse the 4 hex digits after `\u` (cursor is on the first digit),
    /// handling UTF-16 surrogate pairs. Leaves the cursor after the escape.
    fn unicode_escape(&mut self) -> Result<char, WireError> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate — a low surrogate escape must follow.
            if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                self.pos += 2;
                let lo = self.hex4()?;
                if !(0xDC00..0xE000).contains(&lo) {
                    return Err(self.err("invalid low surrogate"));
                }
                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                return char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"));
            }
            return Err(self.err("unpaired high surrogate"));
        }
        if (0xDC00..0xE000).contains(&hi) {
            return Err(self.err("unpaired low surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid unicode escape"))
    }

    fn hex4(&mut self) -> Result<u32, WireError> {
        let mut code: u32 = 0;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.err("expected 4 hex digits after \\u")),
            };
            code = code * 16 + d;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, WireError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` or a nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => self.digits(),
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digits after decimal point"));
            }
            self.digits();
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digits in exponent"));
            }
            self.digits();
        }
        let digits = self.bytes.get(start..self.pos).unwrap_or(&[]);
        let text = std::str::from_utf8(digits).map_err(|_| self.err("invalid UTF-8 in number"))?;
        let n: f64 = text
            .parse()
            .map_err(|_| self.err(format!("unparseable number `{text}`")))?;
        if !n.is_finite() {
            // e.g. `1e999` overflows to infinity — not representable.
            return Err(self.err(format!("number `{text}` overflows f64")));
        }
        Ok(Json::Num(n))
    }

    fn digits(&mut self) {
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) -> Json {
        Json::parse(&v.serialize().unwrap()).unwrap()
    }

    #[test]
    fn scalars_serialize_compactly() {
        assert_eq!(Json::Null.serialize().unwrap(), "null");
        assert_eq!(Json::Bool(true).serialize().unwrap(), "true");
        assert_eq!(Json::Num(3.0).serialize().unwrap(), "3");
        assert_eq!(Json::Num(0.25).serialize().unwrap(), "0.25");
        assert_eq!(Json::str("hi").serialize().unwrap(), "\"hi\"");
    }

    #[test]
    fn objects_preserve_insertion_order() {
        let v = Json::obj([
            ("z", Json::num(1.0)),
            ("a", Json::num(2.0)),
            ("m", Json::Arr(vec![Json::Null, Json::Bool(false)])),
        ]);
        assert_eq!(v.serialize().unwrap(), r#"{"z":1,"a":2,"m":[null,false]}"#);
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn non_finite_numbers_are_rejected() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = Json::Num(bad).serialize().unwrap_err();
            assert!(err.message.contains("non-finite"), "{err}");
            // Nested occurrences are caught too.
            let nested = Json::Arr(vec![Json::obj([("x", Json::Num(bad))])]);
            assert!(nested.serialize().is_err());
        }
        // Overflowing literals fail to parse rather than becoming inf.
        assert!(Json::parse("1e999").is_err());
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "quote:\" backslash:\\ newline:\n tab:\t cr:\r nul:\u{0} bell:\u{7} emoji:🦀 ελ";
        let v = Json::str(s);
        let wire = v.serialize().unwrap();
        assert!(wire.contains("\\\"") && wire.contains("\\\\") && wire.contains("\\u0000"));
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn unicode_escapes_parse_including_surrogate_pairs() {
        assert_eq!(
            Json::parse(r#""\u0041\u00e9\u20ac""#).unwrap(),
            Json::str("Aé€")
        );
        // 🦀 = U+1F980 = surrogate pair D83E DD80.
        assert_eq!(Json::parse(r#""\ud83e\udd80""#).unwrap(), Json::str("🦀"));
        assert!(Json::parse(r#""\ud83e""#).is_err(), "unpaired high");
        assert!(Json::parse(r#""\udd80""#).is_err(), "unpaired low");
        assert!(Json::parse(r#""\ud83e\u0041""#).is_err(), "bad low");
    }

    #[test]
    fn malformed_documents_error_not_panic() {
        for bad in [
            "",
            "{",
            "}",
            "[",
            "]",
            "{]",
            "[}",
            "nul",
            "tru",
            "+1",
            "01",
            "1.",
            ".5",
            "1e",
            "\"abc",
            "\"\\q\"",
            "{\"a\"}",
            "{\"a\":}",
            "{a:1}",
            "[1,]",
            "[1 2]",
            "{\"a\":1,}",
            "1 2",
            "\u{1}",
            "\"\u{1}\"",
            "--1",
            "1e+",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn whitespace_and_number_forms_parse() {
        let v = Json::parse(" { \"a\" : [ 1 , -2.5e2 , 0.125 , 1E2 ] } ").unwrap();
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap(),
            &[
                Json::Num(1.0),
                Json::Num(-250.0),
                Json::Num(0.125),
                Json::Num(100.0)
            ]
        );
    }

    #[test]
    fn depth_limit_blocks_hostile_nesting() {
        let deep_ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(Json::parse(&deep_ok).is_ok());
        let deep_bad = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        let err = Json::parse(&deep_bad).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
    }

    #[test]
    fn accessors() {
        let v = Json::obj([("s", Json::str("x")), ("n", Json::num(2.0))]);
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("n").unwrap().as_num(), Some(2.0));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Bool(true).as_bool(), Some(true));
        assert_eq!(Json::Null.get("x"), None);
        assert_eq!(Json::Null.as_str(), None);
        assert_eq!(Json::Null.as_arr(), None);
        assert_eq!(Json::Null.as_num(), None);
        assert_eq!(Json::Null.as_bool(), None);
    }
}
