//! The server: an event-driven reactor core with a worker pool for CPU
//! work — plus the original worker-per-connection path as a measurable
//! baseline.
//!
//! ## Event mode (default)
//!
//! One **event thread** owns the `TcpListener` (nonblocking) and an epoll
//! [`reactor::Poller`]. Sockets never hold threads: the event loop
//! accepts, reads, and writes with nonblocking syscalls, and each
//! connection is a small state machine ([`Conn`]) holding its read buffer,
//! pipeline of in-flight requests, and pending output bytes. Complete
//! requests parsed by [`crate::http::parse_request`] are handed to the
//! **worker pool** over a bounded job queue; workers run the router (CPU
//! work only — no socket IO), encode the response bytes, and post a
//! completion back through a wake pipe. The loop stitches completions into
//! each connection's pipeline **in request order**, so pipelined clients
//! always see responses in the order they asked.
//!
//! Backpressure and protection:
//! - a connection cap (`queue_depth`) sheds new connections with a
//!   structured `503` at the door;
//! - a per-connection pipeline cap (`max_pipeline`) pauses *reading* from
//!   over-eager pipeliners instead of buffering unboundedly (counted in
//!   `certa_serve_conn_pipeline_overflows_total`);
//! - optional per-tenant token buckets ([`reactor::TenantBuckets`]) answer
//!   `429` on `/v1/*` before any CPU work is queued;
//! - idle connections past `read_timeout` are reaped (counted in
//!   `certa_serve_conn_timeouts_total`).
//!
//! Large HTTP/1.1 response bodies stream as `transfer-encoding: chunked`
//! (threshold `stream_chunk_bytes`); de-chunking yields byte-identical
//! payloads, so the served-bytes ≡ in-process equality gate is unchanged.
//!
//! ## Threaded mode
//!
//! The pre-reactor design, kept selectable (`ServeMode::Threaded`) as the
//! benchmark baseline: accept loop → bounded connection queue → workers
//! that own one socket each until it closes. Abnormal teardowns that were
//! once silently swallowed are now counted (`certa_serve_conn_*`).
//!
//! ## Graceful shutdown
//!
//! [`ServerHandle::shutdown`] flips the stop flag and wakes the main
//! thread (wake-pipe byte in event mode; throwaway loopback connect in
//! threaded mode). In-flight connections drain — bounded by a deadline in
//! event mode — workers join, and the listener is closed before
//! `shutdown` returns, so the port is immediately rebindable.

use crate::http::{parse_request, read_request, HttpError, ParseOutcome, ReadOutcome, Request};
use crate::ops::{Route, ServerMetrics};
use crate::reactor::{Event, Interest, Poller, TenantBuckets};
use crate::router;
use crate::state::{Registry, ServeConfig, ServeMode};
use std::collections::VecDeque;
use std::io::{self, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
// The queues need a Condvar; the parking_lot shim only provides locks, so
// they use std's pair (std Condvar only works with std Mutex).
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Everything the workers share.
pub struct AppState {
    /// The model registry.
    pub registry: Registry,
    /// Ops counters.
    pub metrics: ServerMetrics,
}

impl AppState {
    /// Fresh state for a configuration.
    pub fn new(config: ServeConfig) -> Arc<AppState> {
        Arc::new(AppState {
            registry: Registry::new(config),
            metrics: ServerMetrics::default(),
        })
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServeConfig {
        self.registry.config()
    }
}

/// Bounded MPMC queue (connections in threaded mode, jobs in event mode).
///
/// `push` fails fast when full (the 503 path); `pop` blocks until an item
/// arrives or the queue is closed *and* drained — workers finish the
/// backlog before exiting, which is what makes shutdown graceful rather
/// than abortive.
struct BoundedQueue<T> {
    inner: Mutex<QueueInner<T>>,
    ready: Condvar,
    capacity: usize,
}

struct QueueInner<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(QueueInner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueue, or hand the item back if the queue is full/closed.
    fn push(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.closed || inner.items.len() >= self.capacity {
            return Err(item);
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeue; `None` means closed and fully drained.
    fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn close(&self) {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).closed = true;
        self.ready.notify_all();
    }
}

/// A running server. Dropping the handle without calling
/// [`ServerHandle::shutdown`] detaches the threads (the process exit
/// reaps them); tests and the load harness always shut down explicitly.
pub struct Server {
    addr: SocketAddr,
    state: Arc<AppState>,
    stop: Arc<AtomicBool>,
    main_thread: Option<JoinHandle<()>>,
    /// Event-mode wake pipe; `None` in threaded mode (which wakes its
    /// accept loop with a throwaway loopback connect instead).
    wake: Option<UnixStream>,
}

/// Owning handle to a running [`Server`].
pub type ServerHandle = Server;

impl Server {
    /// Bind and start serving. `addr` is a `host:port` string; port `0`
    /// picks a free port (the actual address is [`Server::addr`]).
    pub fn bind(config: ServeConfig, addr: &str) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let state = AppState::new(config);
        Server::start(listener, local, state)
    }

    /// Start on an already-bound listener with pre-built state (lets the
    /// load harness pre-resolve registry entries before opening the door).
    pub fn start(
        listener: TcpListener,
        addr: SocketAddr,
        state: Arc<AppState>,
    ) -> io::Result<Server> {
        match state.config().mode {
            ServeMode::Threaded => Server::start_threaded(listener, addr, state),
            ServeMode::Event => Server::start_event(listener, addr, state),
        }
    }

    fn start_threaded(
        listener: TcpListener,
        addr: SocketAddr,
        state: Arc<AppState>,
    ) -> io::Result<Server> {
        let stop = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(BoundedQueue::new(state.config().queue_depth));
        let workers: Vec<JoinHandle<()>> = (0..state.config().effective_http_workers())
            .map(|i| {
                let queue = Arc::clone(&queue);
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("certa-serve-worker-{i}"))
                    .spawn(move || worker_loop(&queue, &state))
            })
            .collect::<io::Result<_>>()?;

        let accept_state = Arc::clone(&state);
        let accept_stop = Arc::clone(&stop);
        let main_thread = std::thread::Builder::new()
            .name("certa-serve-accept".to_string())
            .spawn(move || {
                accept_loop(&listener, &queue, &accept_state, &accept_stop);
                queue.close();
                for w in workers {
                    let _ = w.join();
                }
            })?;

        Ok(Server {
            addr,
            state,
            stop,
            main_thread: Some(main_thread),
            wake: None,
        })
    }

    fn start_event(
        listener: TcpListener,
        addr: SocketAddr,
        state: Arc<AppState>,
    ) -> io::Result<Server> {
        let stop = Arc::new(AtomicBool::new(false));
        listener.set_nonblocking(true)?;
        let (wake_tx, wake_rx) = UnixStream::pair()?;
        wake_tx.set_nonblocking(true)?;
        wake_rx.set_nonblocking(true)?;
        let shared = Arc::new(EventShared {
            jobs: BoundedQueue::new(state.config().queue_depth),
            completions: Mutex::new(Vec::new()),
            wake: Mutex::new(wake_tx.try_clone()?),
        });
        let workers: Vec<JoinHandle<()>> = (0..state.config().effective_http_workers())
            .map(|i| {
                let shared = Arc::clone(&shared);
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("certa-serve-worker-{i}"))
                    .spawn(move || event_worker_loop(&shared, &state))
            })
            .collect::<io::Result<_>>()?;

        let loop_state = Arc::clone(&state);
        let loop_stop = Arc::clone(&stop);
        let main_thread = std::thread::Builder::new()
            .name("certa-serve-event".to_string())
            .spawn(move || {
                event_main(listener, loop_state, &loop_stop, wake_rx, &shared, workers)
            })?;

        Ok(Server {
            addr,
            state,
            stop,
            main_thread: Some(main_thread),
            wake: Some(wake_tx),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared state (registry + metrics) — the load harness reads counters
    /// through this.
    pub fn state(&self) -> &Arc<AppState> {
        &self.state
    }

    /// Graceful shutdown: stop accepting, drain queued and in-flight
    /// connections, join every thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        match self.wake.as_mut() {
            // Event mode: one byte on the wake pipe unblocks the poller.
            // A full pipe already guarantees a pending wakeup.
            Some(tx) => {
                let _ = tx.write(&[1u8]);
            }
            // Threaded mode: unblock the accept call with a throwaway
            // connection.
            None => {
                let _ = TcpStream::connect(self.addr);
            }
        }
        if let Some(t) = self.main_thread.take() {
            let _ = t.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Event mode
// ---------------------------------------------------------------------------

/// Token for the listening socket. Connection tokens are
/// `(generation << 32) | slot` with the generation capped well below this.
const LISTENER_TOKEN: u64 = u64::MAX;
/// Token for the worker → event-loop wake pipe.
const WAKE_TOKEN: u64 = u64::MAX - 1;
/// How long the drain phase waits for in-flight connections on shutdown.
const DRAIN_GRACE_MS: u64 = 5_000;

/// CPU work for the pool: one parsed request bound to its connection and
/// its position in that connection's pipeline.
struct Job {
    token: u64,
    seq: u64,
    req: Box<Request>,
}

/// A finished response: pre-encoded wire bytes ready to splice into the
/// connection's pipeline slot `seq`.
struct Completion {
    token: u64,
    seq: u64,
    bytes: Vec<u8>,
    keep: bool,
}

/// What the workers and the event loop share.
struct EventShared {
    jobs: BoundedQueue<Job>,
    completions: Mutex<Vec<Completion>>,
    wake: Mutex<UnixStream>,
}

impl EventShared {
    /// Post a completion and nudge the poller.
    fn complete(&self, c: Completion) {
        self.completions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(c);
        let mut wake = self.wake.lock().unwrap_or_else(|e| e.into_inner());
        // A WouldBlock here means the pipe already holds unread wakeups, so
        // the poller is waking regardless — dropping the byte is correct.
        let _ = wake.write(&[1u8]);
    }
}

/// One response slot in a connection's pipeline, in request order.
enum Pending {
    /// Dispatched to the worker pool; waiting for completion `seq`.
    Waiting(u64),
    /// Encoded bytes ready to write once every earlier slot has flushed.
    Ready { bytes: Vec<u8>, keep: bool },
}

/// Why a connection is being torn down (feeds the `certa_serve_conn_*`
/// counters; `Orderly` is the clean path and counts nothing).
enum Fate {
    Orderly,
    Reset,
    TimedOut,
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    token: u64,
    /// Bytes read but not yet parsed.
    buf: Vec<u8>,
    /// Encoded response bytes not yet written.
    out: Vec<u8>,
    out_pos: usize,
    /// In-order pipeline of dispatched/ready responses.
    pending: VecDeque<Pending>,
    next_seq: u64,
    last_active_ms: u64,
    /// Stop parsing + writing after the current output drains, then close.
    close_after_drain: bool,
    /// Reading paused by the pipeline cap.
    paused: bool,
    /// Pipeline overflow already counted for this connection.
    overflowed: bool,
    /// Peer half-closed (read saw EOF).
    peer_closed: bool,
    /// Interest currently registered with the poller.
    interest: Interest,
}

impl Conn {
    fn new(stream: TcpStream, token: u64, now_ms: u64) -> Conn {
        Conn {
            stream,
            token,
            buf: Vec::new(),
            out: Vec::new(),
            out_pos: 0,
            pending: VecDeque::new(),
            next_seq: 0,
            last_active_ms: now_ms,
            close_after_drain: false,
            paused: false,
            overflowed: false,
            peer_closed: false,
            interest: Interest::READ,
        }
    }

    /// No queued responses and no unwritten bytes.
    fn drained(&self) -> bool {
        self.pending.is_empty() && self.out_pos >= self.out.len()
    }
}

/// The reactor: owns the poller, the listener, and every connection.
struct EventLoop {
    poller: Poller,
    listener: TcpListener,
    state: Arc<AppState>,
    shared: Arc<EventShared>,
    wake_rx: UnixStream,
    buckets: TenantBuckets,
    /// Connection slab; `free` recycles vacated slots.
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    live: usize,
    next_gen: u64,
    epoch: Instant,
}

impl EventLoop {
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    fn run(&mut self, stop: &AtomicBool) {
        let mut events: Vec<Event> = Vec::new();
        let mut draining = false;
        let mut drain_deadline_ms = 0u64;
        loop {
            if self.poller.wait(&mut events, 100).is_err() {
                // The poller itself failed; nothing can make progress.
                return;
            }
            let now_ms = self.now_ms();
            for ev in events.drain(..) {
                match ev.token {
                    LISTENER_TOKEN => {
                        if !draining {
                            self.accept_ready(now_ms);
                        }
                    }
                    WAKE_TOKEN => self.drain_wake(),
                    _ => self.conn_event(ev, now_ms),
                }
            }
            self.deliver_completions(now_ms);
            self.sweep_idle(now_ms);
            if !draining && stop.load(Ordering::SeqCst) {
                draining = true;
                drain_deadline_ms = now_ms.saturating_add(DRAIN_GRACE_MS);
                // Stop accepting; established connections get the grace
                // window to flush their pipelines.
                let _ = self.poller.delete(self.listener.as_raw_fd());
            }
            if draining {
                let force = now_ms >= drain_deadline_ms;
                for slot in 0..self.conns.len() {
                    let done = match self.conns.get(slot).and_then(Option::as_ref) {
                        Some(c) => force || (c.drained() && c.buf.is_empty()),
                        None => false,
                    };
                    if done {
                        if let Some(conn) = self.conns.get_mut(slot).and_then(Option::take) {
                            self.finish(slot, conn, Some(Fate::Orderly));
                        }
                    }
                }
                if self.live == 0 {
                    return;
                }
            }
        }
    }

    fn drain_wake(&mut self) {
        let mut sink = [0u8; 64];
        loop {
            match self.wake_rx.read(&mut sink) {
                Ok(0) => return,
                Ok(_) => continue,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return, // WouldBlock: pipe drained
            }
        }
    }

    fn accept_ready(&mut self, now_ms: u64) {
        loop {
            let stream = match self.listener.accept() {
                Ok((stream, _peer)) => stream,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            };
            self.state.metrics.connection_accepted();
            if self.live >= self.state.config().queue_depth {
                // Shed load at the door with a structured 503. The
                // accepted socket is blocking (accept does not inherit
                // nonblocking), so bound the courtesy write.
                self.state.metrics.overload_rejected();
                let err = HttpError::closing(
                    503,
                    "overloaded",
                    format!(
                        "connection limit reached ({}); retry with backoff",
                        self.state.config().queue_depth
                    ),
                );
                let mut stream = stream;
                let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
                let _ = err.to_response().write_to(&mut stream, false);
                continue;
            }
            if stream.set_nonblocking(true).is_err() {
                self.state.metrics.conn_reset();
                continue;
            }
            let _ = stream.set_nodelay(true);
            let slot = self.free.pop().unwrap_or_else(|| {
                self.conns.push(None);
                self.conns.len().saturating_sub(1)
            });
            // Generation disambiguates a recycled slot from stale
            // completions addressed to its previous occupant; capping it
            // keeps connection tokens clear of the reserved ones.
            self.next_gen = self.next_gen.wrapping_add(1) & 0x7FFF_FFFF;
            let token = (self.next_gen << 32) | (slot as u64 & 0xFFFF_FFFF);
            let conn = Conn::new(stream, token, now_ms);
            if self
                .poller
                .add(conn.stream.as_raw_fd(), token, Interest::READ)
                .is_err()
            {
                self.state.metrics.conn_reset();
                self.free.push(slot);
                continue;
            }
            if let Some(s) = self.conns.get_mut(slot) {
                *s = Some(conn);
                self.live = self.live.saturating_add(1);
            }
        }
    }

    fn conn_event(&mut self, ev: Event, now_ms: u64) {
        let slot = (ev.token & 0xFFFF_FFFF) as usize;
        let mut conn = match self.conns.get_mut(slot).and_then(Option::take) {
            Some(c) if c.token == ev.token => c,
            Some(c) => {
                // Stale event for a recycled slot; put the occupant back.
                if let Some(s) = self.conns.get_mut(slot) {
                    *s = Some(c);
                }
                return;
            }
            None => return,
        };
        let mut fate = None;
        if ev.failed {
            fate = Some(Fate::Reset);
        }
        if fate.is_none() && ev.readable {
            fate = self.fill_read_buf(&mut conn, now_ms);
        }
        if fate.is_none() {
            fate = self.progress(&mut conn, now_ms);
        }
        self.finish(slot, conn, fate);
    }

    /// Slurp readable bytes into the connection's parse buffer.
    fn fill_read_buf(&mut self, conn: &mut Conn, now_ms: u64) -> Option<Fate> {
        if conn.paused || conn.close_after_drain || conn.peer_closed {
            // Interest management keeps EPOLLIN off in these states; this
            // guard covers events already in flight when the state flipped.
            return None;
        }
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.peer_closed = true;
                    return None;
                }
                Ok(n) => {
                    conn.last_active_ms = now_ms;
                    if let Some(read) = chunk.get(..n) {
                        conn.buf.extend_from_slice(read);
                    }
                    if n < chunk.len() {
                        // Likely drained; level-triggered epoll refires if
                        // more arrived meanwhile.
                        return None;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return None,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return Some(Fate::Reset),
            }
        }
    }

    /// Drive the state machine: parse buffered requests, splice ready
    /// responses into the output buffer, write what the socket accepts,
    /// and decide whether the connection is finished.
    fn progress(&mut self, conn: &mut Conn, now_ms: u64) -> Option<Fate> {
        loop {
            self.parse_phase(conn, now_ms);
            self.flush_ready(conn);
            if let Some(fate) = self.write_out(conn) {
                return Some(fate);
            }
            // The pipeline cap paused reading; if flushing made room and
            // bytes are already buffered, resume parsing immediately.
            let resume = conn.paused
                && !conn.close_after_drain
                && conn.pending.len() < self.state.config().max_pipeline
                && !conn.buf.is_empty();
            if resume {
                conn.paused = false;
                continue;
            }
            break;
        }
        if conn.drained() {
            if conn.close_after_drain {
                return Some(Fate::Orderly);
            }
            if conn.peer_closed && conn.buf.is_empty() {
                return Some(Fate::Orderly);
            }
        }
        None
    }

    /// Parse as many complete requests out of `conn.buf` as the pipeline
    /// cap allows, dispatching each to the worker pool.
    fn parse_phase(&mut self, conn: &mut Conn, now_ms: u64) {
        while !conn.close_after_drain && !conn.paused && !conn.buf.is_empty() {
            if conn.pending.len() >= self.state.config().max_pipeline {
                conn.paused = true;
                if !conn.overflowed {
                    conn.overflowed = true;
                    self.state.metrics.conn_pipeline_overflowed();
                }
                return;
            }
            match parse_request(&conn.buf, self.state.config().max_body_bytes) {
                ParseOutcome::NeedMore => break,
                ParseOutcome::Request { request, consumed } => {
                    let consumed = consumed.min(conn.buf.len());
                    conn.buf.drain(..consumed);
                    conn.last_active_ms = now_ms;
                    self.dispatch(conn, request, now_ms);
                }
                ParseOutcome::Error { error, consumed } => {
                    let consumed = consumed.min(conn.buf.len());
                    conn.buf.drain(..consumed);
                    conn.last_active_ms = now_ms;
                    let keep = error.keep_alive;
                    let resp = error.to_response();
                    self.state
                        .metrics
                        .observe(Route::Other, resp.status, Duration::ZERO);
                    conn.pending.push_back(Pending::Ready {
                        bytes: resp.encode(keep, None),
                        keep,
                    });
                    if !keep {
                        conn.buf.clear();
                        return;
                    }
                }
            }
        }
        // Peer half-closed mid-request: the leftover bytes can never
        // complete, so answer the truncation before closing our side.
        if conn.peer_closed && !conn.buf.is_empty() && !conn.close_after_drain && !conn.paused {
            conn.buf.clear();
            let err = HttpError::closing(400, "truncated_request", "connection closed mid-request");
            let resp = err.to_response();
            self.state
                .metrics
                .observe(Route::Other, resp.status, Duration::ZERO);
            conn.pending.push_back(Pending::Ready {
                bytes: resp.encode(false, None),
                keep: false,
            });
        }
    }

    /// Admission-check one parsed request and hand it to the worker pool
    /// (or answer inline when admission fails).
    fn dispatch(&mut self, conn: &mut Conn, req: Box<Request>, now_ms: u64) {
        let keep_wish = req.keep_alive;
        if self.buckets.enabled() && req.path.starts_with("/v1/") {
            let tenant = req.header("x-tenant").unwrap_or("default");
            if !self.buckets.try_admit(tenant, now_ms) {
                self.state.metrics.rate_limited_rejected();
                let err = HttpError {
                    status: 429,
                    code: "rate_limited",
                    message: format!("tenant `{tenant}` over rate limit; retry with backoff"),
                    keep_alive: true,
                };
                let resp = err.to_response();
                self.state
                    .metrics
                    .observe(Route::Other, resp.status, Duration::ZERO);
                conn.pending.push_back(Pending::Ready {
                    bytes: resp.encode(keep_wish, None),
                    keep: keep_wish,
                });
                return;
            }
        }
        let seq = conn.next_seq;
        conn.next_seq = conn.next_seq.wrapping_add(1);
        match self.shared.jobs.push(Job {
            token: conn.token,
            seq,
            req,
        }) {
            Ok(()) => conn.pending.push_back(Pending::Waiting(seq)),
            Err(_job) => {
                // Job queue full: same structured 503 as the door.
                self.state.metrics.overload_rejected();
                let err = HttpError::closing(
                    503,
                    "overloaded",
                    format!(
                        "request queue full ({} deep); retry with backoff",
                        self.state.config().queue_depth
                    ),
                );
                let resp = err.to_response();
                self.state
                    .metrics
                    .observe(Route::Other, resp.status, Duration::ZERO);
                conn.pending.push_back(Pending::Ready {
                    bytes: resp.encode(false, None),
                    keep: false,
                });
            }
        }
    }

    /// Move the leading run of `Ready` responses into the output buffer
    /// (responses must leave in request order, so a `Waiting` head blocks
    /// everything behind it).
    fn flush_ready(&mut self, conn: &mut Conn) {
        while matches!(conn.pending.front(), Some(Pending::Ready { .. })) {
            if let Some(Pending::Ready { bytes, keep }) = conn.pending.pop_front() {
                conn.out.extend_from_slice(&bytes);
                if !keep {
                    conn.close_after_drain = true;
                    conn.pending.clear();
                    conn.buf.clear();
                    return;
                }
            }
        }
    }

    /// Write as much pending output as the socket accepts.
    fn write_out(&mut self, conn: &mut Conn) -> Option<Fate> {
        loop {
            let rest = match conn.out.get(conn.out_pos..) {
                Some(r) if !r.is_empty() => r,
                _ => break,
            };
            match conn.stream.write(rest) {
                Ok(0) => return Some(Fate::Reset),
                Ok(n) => conn.out_pos = conn.out_pos.saturating_add(n),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return Some(Fate::Reset),
            }
        }
        if conn.out_pos >= conn.out.len() {
            conn.out.clear();
            conn.out_pos = 0;
        }
        None
    }

    /// Splice worker completions into their connections and re-drive them.
    fn deliver_completions(&mut self, now_ms: u64) {
        let done: Vec<Completion> = {
            let mut lock = self
                .shared
                .completions
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *lock)
        };
        for c in done {
            let slot = (c.token & 0xFFFF_FFFF) as usize;
            let mut conn = match self.conns.get_mut(slot).and_then(Option::take) {
                Some(x) if x.token == c.token => x,
                Some(x) => {
                    // Completion for a connection that already went away.
                    if let Some(s) = self.conns.get_mut(slot) {
                        *s = Some(x);
                    }
                    continue;
                }
                None => continue,
            };
            let slot_match = conn
                .pending
                .iter_mut()
                .find(|p| matches!(p, Pending::Waiting(s) if *s == c.seq));
            if let Some(p) = slot_match {
                *p = Pending::Ready {
                    bytes: c.bytes,
                    keep: c.keep,
                };
            }
            conn.last_active_ms = now_ms;
            let fate = self.progress(&mut conn, now_ms);
            self.finish(slot, conn, fate);
        }
    }

    /// Reap connections idle past the read timeout (nothing in flight,
    /// nothing to write, no bytes seen recently).
    fn sweep_idle(&mut self, now_ms: u64) {
        let timeout_ms = self.state.config().read_timeout.as_millis() as u64;
        if timeout_ms == 0 {
            return;
        }
        for slot in 0..self.conns.len() {
            let idle = match self.conns.get(slot).and_then(Option::as_ref) {
                Some(c) => c.drained() && now_ms.saturating_sub(c.last_active_ms) > timeout_ms,
                None => false,
            };
            if idle {
                if let Some(conn) = self.conns.get_mut(slot).and_then(Option::take) {
                    self.finish(slot, conn, Some(Fate::TimedOut));
                }
            }
        }
    }

    /// Re-register interest (if it changed) and put the connection back —
    /// or tear it down, counting abnormal fates.
    fn finish(&mut self, slot: usize, mut conn: Conn, fate: Option<Fate>) {
        match fate {
            None => {
                let want = Interest {
                    // A paused/half-closed/draining connection must drop
                    // read interest or level-triggered epoll busy-loops.
                    readable: !conn.paused && !conn.peer_closed && !conn.close_after_drain,
                    writable: conn.out_pos < conn.out.len(),
                };
                if want != conn.interest
                    && self
                        .poller
                        .modify(conn.stream.as_raw_fd(), conn.token, want)
                        .is_ok()
                {
                    conn.interest = want;
                }
                if let Some(s) = self.conns.get_mut(slot) {
                    *s = Some(conn);
                }
            }
            Some(fate) => {
                match fate {
                    Fate::Orderly => {}
                    Fate::Reset => self.state.metrics.conn_reset(),
                    Fate::TimedOut => self.state.metrics.conn_timed_out(),
                }
                // Closing the fd would deregister implicitly; explicit
                // delete keeps teardown order obvious (failure = already
                // gone).
                let _ = self.poller.delete(conn.stream.as_raw_fd());
                self.free.push(slot);
                self.live = self.live.saturating_sub(1);
                // `conn` drops here, closing the socket.
            }
        }
    }
}

/// Event-mode main thread: run the reactor, then drain the worker pool.
fn event_main(
    listener: TcpListener,
    state: Arc<AppState>,
    stop: &AtomicBool,
    wake_rx: UnixStream,
    shared: &Arc<EventShared>,
    workers: Vec<JoinHandle<()>>,
) {
    let teardown = |workers: Vec<JoinHandle<()>>| {
        shared.jobs.close();
        for w in workers {
            let _ = w.join();
        }
    };
    let poller = match Poller::new() {
        Ok(p) => p,
        Err(_) => return teardown(workers),
    };
    if poller
        .add(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ)
        .is_err()
        || poller
            .add(wake_rx.as_raw_fd(), WAKE_TOKEN, Interest::READ)
            .is_err()
    {
        return teardown(workers);
    }
    let (tenant_rps, tenant_burst) = {
        let cfg = state.config();
        (cfg.tenant_rps, cfg.tenant_burst)
    };
    let buckets = TenantBuckets::new(tenant_rps, tenant_burst);
    let mut el = EventLoop {
        poller,
        listener,
        state,
        shared: Arc::clone(shared),
        wake_rx,
        buckets,
        conns: Vec::new(),
        free: Vec::new(),
        live: 0,
        next_gen: 0,
        epoch: Instant::now(),
    };
    el.run(stop);
    // Drop the listener (and poller) before joining workers so the port is
    // free the moment `shutdown()` returns.
    drop(el);
    teardown(workers);
}

/// Event-mode worker: CPU only — route, observe, encode; never touches a
/// socket.
fn event_worker_loop(shared: &EventShared, state: &AppState) {
    while let Some(job) = shared.jobs.pop() {
        let t0 = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| {
            router::handle(&state.registry, &state.metrics, &job.req)
        }));
        let (route, resp) = match result {
            Ok(pair) => pair,
            Err(_) => {
                state.metrics.worker_panicked();
                (
                    Route::Other,
                    HttpError::closing(500, "internal_error", "handler panicked").to_response(),
                )
            }
        };
        state.metrics.observe(route, resp.status, t0.elapsed());
        let keep = job.req.keep_alive && resp.keep_alive;
        let cfg = state.config();
        // Stream large bodies as chunked — HTTP/1.1 clients only (1.0 has
        // no chunked decoding). De-chunking restores identical bytes.
        let chunk = if job.req.http11
            && cfg.stream_chunk_bytes > 0
            && resp.body.len() > cfg.stream_chunk_bytes
        {
            state.metrics.response_streamed();
            Some(cfg.stream_chunk_bytes)
        } else {
            None
        };
        let bytes = resp.encode(keep, chunk);
        shared.complete(Completion {
            token: job.token,
            seq: job.seq,
            bytes,
            keep,
        });
    }
}

// ---------------------------------------------------------------------------
// Threaded mode (benchmark baseline)
// ---------------------------------------------------------------------------

fn accept_loop(
    listener: &TcpListener,
    queue: &BoundedQueue<TcpStream>,
    state: &AppState,
    stop: &AtomicBool,
) {
    loop {
        let accepted = listener.accept();
        if stop.load(Ordering::SeqCst) {
            // The wake-pipe connection (or anything racing it) is dropped
            // unanswered — shutdown wins.
            return;
        }
        let stream = match accepted {
            Ok((stream, _peer)) => stream,
            Err(_) => continue,
        };
        state.metrics.connection_accepted();
        if let Err(stream) = queue.push(stream) {
            // Queue full: shed load at the door with a structured 503.
            state.metrics.overload_rejected();
            let err = HttpError::closing(
                503,
                "overloaded",
                format!(
                    "connection queue full ({} waiting); retry with backoff",
                    state.config().queue_depth
                ),
            );
            let mut stream = stream;
            let _ = err.to_response().write_to(&mut stream, false);
        }
    }
}

fn worker_loop(queue: &BoundedQueue<TcpStream>, state: &AppState) {
    while let Some(stream) = queue.pop() {
        // A panic while serving kills this connection, not the worker —
        // and is visible in `/metrics` rather than silent.
        let result = catch_unwind(AssertUnwindSafe(|| serve_connection(stream, state)));
        if result.is_err() {
            state.metrics.worker_panicked();
        }
    }
}

/// Serve one connection: keep-alive loop of read → route → respond.
fn serve_connection(stream: TcpStream, state: &AppState) {
    let _ = stream.set_read_timeout(Some(state.config().read_timeout));
    let _ = stream.set_write_timeout(Some(state.config().read_timeout));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => {
            state.metrics.conn_reset();
            return;
        }
    };
    let mut reader = BufReader::new(stream);
    loop {
        match read_request(&mut reader, state.config().max_body_bytes) {
            ReadOutcome::Closed => return,
            ReadOutcome::Timeout => {
                // Idle past the read deadline — counted, not swallowed.
                state.metrics.conn_timed_out();
                return;
            }
            ReadOutcome::Error(err) => {
                let keep = err.keep_alive;
                let resp = err.to_response();
                state
                    .metrics
                    .observe(Route::Other, resp.status, Duration::ZERO);
                if resp.write_to(&mut writer, keep).is_err() {
                    state.metrics.conn_reset();
                    return;
                }
                if !keep {
                    return;
                }
            }
            ReadOutcome::Request(req) => {
                let t0 = Instant::now();
                let (route, resp) = router::handle(&state.registry, &state.metrics, &req);
                state.metrics.observe(route, resp.status, t0.elapsed());
                let keep = req.keep_alive && resp.keep_alive;
                if resp.write_to(&mut writer, keep).is_err() {
                    state.metrics.conn_reset();
                    return;
                }
                if !keep {
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::time::Duration;

    fn small_config() -> ServeConfig {
        ServeConfig {
            tau: 8,
            http_workers: 2,
            queue_depth: 8,
            read_timeout: Duration::from_millis(500),
            ..ServeConfig::default()
        }
    }

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET {path} HTTP/1.1\r\nconnection: close\r\n\r\n").unwrap();
        let mut buf = String::new();
        s.read_to_string(&mut buf).unwrap();
        let status: u16 = buf.split_whitespace().nth(1).unwrap().parse().unwrap();
        let body = buf.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
        (status, body)
    }

    #[test]
    fn serves_healthz_and_shuts_down_gracefully() {
        let server = Server::bind(small_config(), "127.0.0.1:0").unwrap();
        let addr = server.addr();
        let (status, body) = get(addr, "/healthz");
        assert_eq!(status, 200);
        assert!(body.contains("\"status\":\"ok\""), "{body}");
        server.shutdown();
        // The port is released: a fresh bind to the same address works.
        assert!(TcpListener::bind(addr).is_ok());
    }

    #[test]
    fn threaded_mode_serves_and_releases_port() {
        let server = Server::bind(
            ServeConfig {
                mode: ServeMode::Threaded,
                ..small_config()
            },
            "127.0.0.1:0",
        )
        .unwrap();
        let addr = server.addr();
        let (status, body) = get(addr, "/healthz");
        assert_eq!(status, 200);
        assert!(body.contains("\"status\":\"ok\""), "{body}");
        server.shutdown();
        assert!(TcpListener::bind(addr).is_ok());
    }

    #[test]
    fn keep_alive_serves_multiple_requests_per_connection() {
        let server = Server::bind(small_config(), "127.0.0.1:0").unwrap();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        for _ in 0..3 {
            write!(s, "GET /healthz HTTP/1.1\r\n\r\n").unwrap();
            let mut head = [0u8; 17];
            s.read_exact(&mut head).unwrap();
            assert_eq!(&head, b"HTTP/1.1 200 OK\r\n");
            // Drain the rest of this response (headers + body) by length.
            let mut rest = Vec::new();
            let mut byte = [0u8; 1];
            let body_len: usize = loop {
                s.read_exact(&mut byte).unwrap();
                rest.push(byte[0]);
                if rest.ends_with(b"\r\n\r\n") {
                    let headers = String::from_utf8_lossy(&rest);
                    let len_line = headers
                        .lines()
                        .find(|l| l.starts_with("content-length:"))
                        .unwrap()
                        .to_string();
                    break len_line["content-length:".len()..].trim().parse().unwrap();
                }
            };
            let mut body = vec![0u8; body_len];
            s.read_exact(&mut body).unwrap();
        }
        drop(s);
        server.shutdown();
    }

    #[test]
    fn pipelined_requests_answered_in_order() {
        let server = Server::bind(small_config(), "127.0.0.1:0").unwrap();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        // Three requests in a single write; the last one closes.
        write!(
            s,
            "GET /healthz HTTP/1.1\r\n\r\nGET /healthz HTTP/1.1\r\n\r\nGET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n"
        )
        .unwrap();
        let mut buf = String::new();
        s.read_to_string(&mut buf).unwrap();
        assert_eq!(buf.matches("HTTP/1.1 200 OK").count(), 3, "{buf}");
        assert_eq!(buf.matches("\"status\":\"ok\"").count(), 3, "{buf}");
        server.shutdown();
    }

    #[test]
    fn overload_gets_structured_503() {
        // Threaded baseline: 1 worker pinned by a half-open connection,
        // 1 queue slot filled, next connection → 503.
        let server = Server::bind(
            ServeConfig {
                mode: ServeMode::Threaded,
                http_workers: 1,
                queue_depth: 1,
                read_timeout: Duration::from_secs(2),
                ..ServeConfig::default()
            },
            "127.0.0.1:0",
        )
        .unwrap();
        let addr = server.addr();
        // Pin the single worker: connect and send nothing (it blocks in read
        // until the timeout).
        let pin = TcpStream::connect(addr).unwrap();
        std::thread::sleep(Duration::from_millis(100));
        // Fill the queue slot the same way.
        let fill = TcpStream::connect(addr).unwrap();
        std::thread::sleep(Duration::from_millis(100));
        // This one must be turned away at the door.
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut buf = String::new();
        s.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.1 503 "), "{buf}");
        assert!(buf.contains("\"code\":\"overloaded\""), "{buf}");
        assert!(server.state().metrics.overload_rejections() >= 1);
        drop(pin);
        drop(fill);
        server.shutdown();
    }

    #[test]
    fn malformed_request_line_gets_400_not_a_dropped_connection() {
        let server = Server::bind(small_config(), "127.0.0.1:0").unwrap();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write!(s, "THIS IS NOT HTTP\r\n\r\n").unwrap();
        let mut buf = String::new();
        s.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.1 400 "), "{buf}");
        assert!(buf.contains("\"error\""), "{buf}");
        server.shutdown();
    }

    #[test]
    fn event_mode_idle_connections_time_out_and_are_counted() {
        let server = Server::bind(
            ServeConfig {
                read_timeout: Duration::from_millis(200),
                ..small_config()
            },
            "127.0.0.1:0",
        )
        .unwrap();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        // Send nothing; the reactor should reap us and close the socket.
        let mut buf = Vec::new();
        let n = s.read_to_end(&mut buf).unwrap();
        assert_eq!(n, 0, "idle connection should be closed with no bytes");
        assert!(server.state().metrics.conn_timeouts() >= 1);
        server.shutdown();
    }

    #[test]
    fn threaded_mode_idle_timeouts_are_counted() {
        let server = Server::bind(
            ServeConfig {
                mode: ServeMode::Threaded,
                read_timeout: Duration::from_millis(200),
                ..small_config()
            },
            "127.0.0.1:0",
        )
        .unwrap();
        let s = TcpStream::connect(server.addr()).unwrap();
        std::thread::sleep(Duration::from_millis(600));
        assert!(server.state().metrics.conn_timeouts() >= 1);
        drop(s);
        server.shutdown();
    }

    #[test]
    fn tenant_rate_limit_answers_429_per_tenant() {
        let server = Server::bind(
            ServeConfig {
                tenant_rps: 1,
                tenant_burst: 1,
                ..small_config()
            },
            "127.0.0.1:0",
        )
        .unwrap();
        let addr = server.addr();
        // Same tenant twice, pipelined: burst of 1 admits the first,
        // rejects the second.
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        write!(
            s,
            "GET /v1/models HTTP/1.1\r\nx-tenant: acme\r\n\r\nGET /v1/models HTTP/1.1\r\nx-tenant: acme\r\nconnection: close\r\n\r\n"
        )
        .unwrap();
        let mut buf = String::new();
        s.read_to_string(&mut buf).unwrap();
        assert!(buf.contains("HTTP/1.1 200 OK"), "{buf}");
        assert!(buf.contains("HTTP/1.1 429 "), "{buf}");
        assert!(buf.contains("\"code\":\"rate_limited\""), "{buf}");
        // A different tenant has its own bucket.
        let mut s2 = TcpStream::connect(addr).unwrap();
        s2.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        write!(
            s2,
            "GET /v1/models HTTP/1.1\r\nx-tenant: globex\r\nconnection: close\r\n\r\n"
        )
        .unwrap();
        let mut buf2 = String::new();
        s2.read_to_string(&mut buf2).unwrap();
        assert!(buf2.starts_with("HTTP/1.1 200 OK"), "{buf2}");
        // Non-/v1/ routes are never rate limited.
        let (status, _) = get(addr, "/healthz");
        assert_eq!(status, 200);
        assert!(server.state().metrics.rate_limited() >= 1);
        server.shutdown();
    }

    #[test]
    fn large_responses_stream_chunked_and_dechunk_identically() {
        let server = Server::bind(
            ServeConfig {
                stream_chunk_bytes: 16, // tiny threshold: everything streams
                ..small_config()
            },
            "127.0.0.1:0",
        )
        .unwrap();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        write!(s, "GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n").unwrap();
        let mut raw = Vec::new();
        s.read_to_end(&mut raw).unwrap();
        let text = String::from_utf8_lossy(&raw);
        assert!(text.contains("transfer-encoding: chunked"), "{text}");
        let head_end = raw
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
            .expect("header terminator")
            + 4;
        // De-chunk the body and check it is the plain JSON payload.
        let mut body = Vec::new();
        let mut rest = &raw[head_end..];
        loop {
            let line_end = rest.windows(2).position(|w| w == b"\r\n").unwrap();
            let size =
                usize::from_str_radix(std::str::from_utf8(&rest[..line_end]).unwrap().trim(), 16)
                    .unwrap();
            rest = &rest[line_end + 2..];
            if size == 0 {
                break;
            }
            body.extend_from_slice(&rest[..size]);
            rest = &rest[size + 2..];
        }
        let body = String::from_utf8(body).unwrap();
        assert!(body.contains("\"status\":\"ok\""), "{body}");
        assert!(server.state().metrics.streamed_responses() >= 1);
        server.shutdown();
    }
}
