//! The server: accept loop → bounded connection queue → worker-thread pool.
//!
//! ## Threading model
//!
//! One **accept thread** owns the `TcpListener`. Accepted connections are
//! pushed onto a bounded queue; when the queue is full the accept thread
//! answers `503 Service Unavailable` inline (a structured JSON body, like
//! every other error) and closes — load is shed at the door instead of
//! building an unbounded backlog. **Worker threads** pop connections and
//! serve them to completion: a keep-alive loop of parse → route → respond,
//! bounded by the per-read socket timeout so an idle client cannot pin a
//! worker. Each connection is additionally wrapped in `catch_unwind`; a
//! panic in a handler kills that connection only (counted in
//! `worker_panics_total`), never the worker.
//!
//! ## Graceful shutdown
//!
//! [`ServerHandle::shutdown`] flips the shutdown flag and **wakes the
//! accept thread over a loopback "wake pipe"** — a throwaway TCP connect to
//! the listener, the `std`-only analogue of the classic self-pipe trick
//! (no `libc`, so no real signalfd). The accept thread stops accepting,
//! closes the queue, and the workers drain in-flight connections before
//! exiting; `shutdown` joins them all, so when it returns no request is
//! half-served.

use crate::http::{read_request, HttpError, ReadOutcome};
use crate::ops::{Route, ServerMetrics};
use crate::router;
use crate::state::{Registry, ServeConfig};
use std::collections::VecDeque;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
// The queue needs a Condvar; the parking_lot shim only provides locks, so
// the queue uses std's pair (std Condvar only works with std Mutex).
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Everything the workers share.
pub struct AppState {
    /// The model registry.
    pub registry: Registry,
    /// Ops counters.
    pub metrics: ServerMetrics,
}

impl AppState {
    /// Fresh state for a configuration.
    pub fn new(config: ServeConfig) -> Arc<AppState> {
        Arc::new(AppState {
            registry: Registry::new(config),
            metrics: ServerMetrics::default(),
        })
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServeConfig {
        self.registry.config()
    }
}

/// Bounded MPMC queue of accepted connections.
///
/// `push` fails fast when full (the 503 path); `pop` blocks until a
/// connection arrives or the queue is closed *and* drained — workers
/// finish the backlog before exiting, which is what makes shutdown
/// graceful rather than abortive.
struct ConnQueue {
    inner: Mutex<QueueInner>,
    ready: Condvar,
    capacity: usize,
}

struct QueueInner {
    items: VecDeque<TcpStream>,
    closed: bool,
}

impl ConnQueue {
    fn new(capacity: usize) -> Self {
        ConnQueue {
            inner: Mutex::new(QueueInner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueue, or hand the stream back if the queue is full/closed.
    fn push(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.closed || inner.items.len() >= self.capacity {
            return Err(stream);
        }
        inner.items.push_back(stream);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeue; `None` means closed and fully drained.
    fn pop(&self) -> Option<TcpStream> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(stream) = inner.items.pop_front() {
                return Some(stream);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn close(&self) {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).closed = true;
        self.ready.notify_all();
    }
}

/// A running server. Dropping the handle without calling
/// [`ServerHandle::shutdown`] detaches the threads (the process exit
/// reaps them); tests and the load harness always shut down explicitly.
pub struct Server {
    addr: SocketAddr,
    state: Arc<AppState>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

/// Owning handle to a running [`Server`].
pub type ServerHandle = Server;

impl Server {
    /// Bind and start serving. `addr` is a `host:port` string; port `0`
    /// picks a free port (the actual address is [`Server::addr`]).
    pub fn bind(config: ServeConfig, addr: &str) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let state = AppState::new(config);
        Server::start(listener, local, state)
    }

    /// Start on an already-bound listener with pre-built state (lets the
    /// load harness pre-resolve registry entries before opening the door).
    pub fn start(
        listener: TcpListener,
        addr: SocketAddr,
        state: Arc<AppState>,
    ) -> io::Result<Server> {
        let stop = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(ConnQueue::new(state.config().queue_depth));
        let workers: Vec<JoinHandle<()>> = (0..state.config().effective_http_workers())
            .map(|i| {
                let queue = Arc::clone(&queue);
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("certa-serve-worker-{i}"))
                    .spawn(move || worker_loop(&queue, &state))
            })
            .collect::<io::Result<_>>()?;

        let accept_state = Arc::clone(&state);
        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("certa-serve-accept".to_string())
            .spawn(move || {
                accept_loop(&listener, &queue, &accept_state, &accept_stop);
                queue.close();
                for w in workers {
                    let _ = w.join();
                }
            })?;

        Ok(Server {
            addr,
            state,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared state (registry + metrics) — the load harness reads counters
    /// through this.
    pub fn state(&self) -> &Arc<AppState> {
        &self.state
    }

    /// Graceful shutdown: stop accepting, drain queued and in-flight
    /// connections, join every thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake pipe: unblock the accept call with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, queue: &ConnQueue, state: &AppState, stop: &AtomicBool) {
    loop {
        let accepted = listener.accept();
        if stop.load(Ordering::SeqCst) {
            // The wake-pipe connection (or anything racing it) is dropped
            // unanswered — shutdown wins.
            return;
        }
        let stream = match accepted {
            Ok((stream, _peer)) => stream,
            Err(_) => continue,
        };
        state.metrics.connection_accepted();
        if let Err(stream) = queue.push(stream) {
            // Queue full: shed load at the door with a structured 503.
            state.metrics.overload_rejected();
            let err = HttpError::closing(
                503,
                "overloaded",
                format!(
                    "connection queue full ({} waiting); retry with backoff",
                    state.config().queue_depth
                ),
            );
            let mut stream = stream;
            let _ = err.to_response().write_to(&mut stream, false);
        }
    }
}

fn worker_loop(queue: &ConnQueue, state: &AppState) {
    while let Some(stream) = queue.pop() {
        // A panic while serving kills this connection, not the worker —
        // and is visible in `/metrics` rather than silent.
        let result = catch_unwind(AssertUnwindSafe(|| serve_connection(stream, state)));
        if result.is_err() {
            state.metrics.worker_panicked();
        }
    }
}

/// Serve one connection: keep-alive loop of read → route → respond.
fn serve_connection(stream: TcpStream, state: &AppState) {
    let _ = stream.set_read_timeout(Some(state.config().read_timeout));
    let _ = stream.set_write_timeout(Some(state.config().read_timeout));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        match read_request(&mut reader, state.config().max_body_bytes) {
            ReadOutcome::Closed => return,
            ReadOutcome::Error(err) => {
                let keep = err.keep_alive;
                let resp = err.to_response();
                state
                    .metrics
                    .observe(Route::Other, resp.status, std::time::Duration::ZERO);
                if resp.write_to(&mut writer, keep).is_err() || !keep {
                    return;
                }
            }
            ReadOutcome::Request(req) => {
                let t0 = Instant::now();
                let (route, resp) = router::handle(&state.registry, &state.metrics, &req);
                state.metrics.observe(route, resp.status, t0.elapsed());
                let keep = req.keep_alive && resp.keep_alive;
                if resp.write_to(&mut writer, keep).is_err() || !keep {
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::time::Duration;

    fn small_config() -> ServeConfig {
        ServeConfig {
            tau: 8,
            http_workers: 2,
            queue_depth: 8,
            read_timeout: Duration::from_millis(500),
            ..ServeConfig::default()
        }
    }

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET {path} HTTP/1.1\r\nconnection: close\r\n\r\n").unwrap();
        let mut buf = String::new();
        s.read_to_string(&mut buf).unwrap();
        let status: u16 = buf.split_whitespace().nth(1).unwrap().parse().unwrap();
        let body = buf.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
        (status, body)
    }

    #[test]
    fn serves_healthz_and_shuts_down_gracefully() {
        let server = Server::bind(small_config(), "127.0.0.1:0").unwrap();
        let addr = server.addr();
        let (status, body) = get(addr, "/healthz");
        assert_eq!(status, 200);
        assert!(body.contains("\"status\":\"ok\""), "{body}");
        server.shutdown();
        // The port is released: a fresh bind to the same address works.
        assert!(TcpListener::bind(addr).is_ok());
    }

    #[test]
    fn keep_alive_serves_multiple_requests_per_connection() {
        let server = Server::bind(small_config(), "127.0.0.1:0").unwrap();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        for _ in 0..3 {
            write!(s, "GET /healthz HTTP/1.1\r\n\r\n").unwrap();
            let mut head = [0u8; 17];
            s.read_exact(&mut head).unwrap();
            assert_eq!(&head, b"HTTP/1.1 200 OK\r\n");
            // Drain the rest of this response (headers + body) by length.
            let mut rest = Vec::new();
            let mut byte = [0u8; 1];
            let body_len: usize = loop {
                s.read_exact(&mut byte).unwrap();
                rest.push(byte[0]);
                if rest.ends_with(b"\r\n\r\n") {
                    let headers = String::from_utf8_lossy(&rest);
                    let len_line = headers
                        .lines()
                        .find(|l| l.starts_with("content-length:"))
                        .unwrap()
                        .to_string();
                    break len_line["content-length:".len()..].trim().parse().unwrap();
                }
            };
            let mut body = vec![0u8; body_len];
            s.read_exact(&mut body).unwrap();
        }
        drop(s);
        server.shutdown();
    }

    #[test]
    fn overload_gets_structured_503() {
        // One worker, zero... capacity floors at 1, so: 1 worker pinned by a
        // half-open connection, 1 queue slot filled, next connection → 503.
        let server = Server::bind(
            ServeConfig {
                http_workers: 1,
                queue_depth: 1,
                read_timeout: Duration::from_secs(2),
                ..ServeConfig::default()
            },
            "127.0.0.1:0",
        )
        .unwrap();
        let addr = server.addr();
        // Pin the single worker: connect and send nothing (it blocks in read
        // until the timeout).
        let pin = TcpStream::connect(addr).unwrap();
        std::thread::sleep(Duration::from_millis(100));
        // Fill the queue slot the same way.
        let fill = TcpStream::connect(addr).unwrap();
        std::thread::sleep(Duration::from_millis(100));
        // This one must be turned away at the door.
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut buf = String::new();
        s.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.1 503 "), "{buf}");
        assert!(buf.contains("\"code\":\"overloaded\""), "{buf}");
        assert!(server.state().metrics.overload_rejections() >= 1);
        drop(pin);
        drop(fill);
        server.shutdown();
    }

    #[test]
    fn malformed_request_line_gets_400_not_a_dropped_connection() {
        let server = Server::bind(small_config(), "127.0.0.1:0").unwrap();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write!(s, "THIS IS NOT HTTP\r\n\r\n").unwrap();
        let mut buf = String::new();
        s.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.1 400 "), "{buf}");
        assert!(buf.contains("\"error\""), "{buf}");
        server.shutdown();
    }
}
