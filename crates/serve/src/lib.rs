//! # certa-serve
//!
//! A multi-threaded HTTP explanation service over the CERTA reproduction —
//! the serving layer that turns the paper's Algorithm 1 (and the PR-2
//! parallel batch engine behind it) into endpoints with measurable
//! throughput and tail latency. Built entirely on `std::net` plus the
//! workspace's vendored crates: no tokio, no hyper, no serde_json — the
//! build environment has no registry access, and nothing here needs more
//! than an accept loop, a bounded queue, and a worker pool.
//!
//! ## Architecture (event mode, the default)
//!
//! ```text
//!             ┌───────────────────────────────┐  bounded  ┌──────────────┐
//!  clients ──▶│ event loop (epoll [`reactor`])│──▶ jobs ──▶│ worker pool  │
//!             │ nonblocking accept/read/write │           │ CPU only:    │
//!             │ per-conn state machines:      │◀─ done ───│ route→encode │
//!             │  pipeline · rate limit · idle │ wake pipe └──────┬───────┘
//!             └───────────────────────────────┘                  │
//!            ┌─────────────────────────────────────────┬─────────┴─┐
//!            │ [`wire`]  JSON value model + DTOs       │           │
//!            │ [`state`] "<dataset>/<model>" registry  ├─ explain ─┤
//!            │           (datagen + models + sharded   │   batch   │
//!            │            `CachingMatcher` + `Certa`)  │  engine   │
//!            │ [`ops`]   atomic counters + log2        │           │
//!            │           latency histogram             │           │
//!            └─────────────────────────────────────────┴───────────┘
//! ```
//!
//! Sockets never hold threads: the event loop multiplexes every
//! connection over one epoll instance, and the worker pool only ever sees
//! parsed requests. `ServeMode::Threaded` keeps the original
//! worker-per-connection design selectable as the benchmark baseline.
//!
//! * [`wire`] — a zero-dependency JSON wire format: a value model with a
//!   deterministic serializer (insertion-ordered objects, shortest-round-trip
//!   floats, `NaN`/`inf` rejected) and a hardened parser (depth-capped,
//!   never panics), plus DTOs for records, predictions, and both
//!   explanation kinds.
//! * [`state`] — the model registry. `"FZ/DeepMatcher"` lazily generates
//!   the synthetic dataset, trains the matcher family, wraps it in the
//!   sharded [`CachingMatcher`](certa_models::CachingMatcher), and pairs it
//!   with a [`Certa`](certa_explain::Certa) explainer configured from the
//!   server's `(seed, τ)`.
//! * [`ops`] — lock-free request/latency accounting behind `GET /healthz`
//!   and `GET /metrics` (Prometheus text exposition, including per-model
//!   cache hit/miss counters).
//! * [`reactor`] — the zero-dependency epoll shim (raw `libc` syscalls,
//!   no crates) plus deterministic per-tenant token buckets.
//! * [`http`] / [`router`] / [`server`] — HTTP/1.1 with keep-alive,
//!   request pipelining, Content-Length and chunked framing; structured
//!   JSON errors for every failure (400 malformed, 413 oversized, 429
//!   rate-limited, 503 overloaded, …); graceful shutdown over a wake
//!   pipe.
//!
//! ## Determinism guarantee
//!
//! A served explanation is **byte-identical** to serializing the in-process
//! [`Certa::explain_batch`](certa_explain::Certa::explain_batch) result for
//! the same `(dataset, model, scale, seed, τ)` through this crate's wire
//! format. The server adds no nondeterminism: the registry builds the same
//! world the experiment grid builds, the batch engine guarantees
//! schedule-independent output, and the wire format guarantees one byte
//! string per value. `certa-bench`'s `bench_serve_load` hammers a live
//! server from many client threads and fails on the first divergent byte.
//!
//! ## Quick start
//!
//! ```bash
//! cargo run --release -p certa-serve -- --port 8642 --preload FZ/DeepMatcher
//! curl -s localhost:8642/healthz
//! curl -s localhost:8642/v1/explain -d \
//!   '{"model":"FZ/DeepMatcher","pair":{"left_id":0,"right_id":0}}'
//! ```

pub mod http;
pub mod ops;
pub mod reactor;
pub mod router;
pub mod server;
pub mod state;
pub mod wire;

pub use http::{HttpError, Request, Response};
pub use ops::{LatencyHistogram, Route, ServerMetrics};
pub use server::{AppState, Server, ServerHandle};
pub use state::{ModelEntry, Registry, ServeConfig, ServeMode, StoreStats, TransferMode};
pub use wire::{Json, WireError};
