//! Request routing: `(method, path)` → handler → [`Response`].
//!
//! | Method | Path                | Handler                                   |
//! |--------|---------------------|-------------------------------------------|
//! | POST   | `/v1/score`         | score one pair                            |
//! | POST   | `/v1/score_batch`   | score many pairs (vectorized + cached)    |
//! | POST   | `/v1/explain`       | CERTA explanation for one pair            |
//! | POST   | `/v1/explain_batch` | [`Certa::explain_batch`] over many pairs  |
//! | POST   | `/v1/block`         | block → score → explain over the tables   |
//! | POST   | `/v1/cluster`       | block → score → cluster into entities     |
//! | GET    | `/v1/entity`        | cluster membership of one record          |
//! | GET    | `/v1/models`        | resolved registry entries                 |
//! | POST   | `/v1/reload`        | hot-swap entries from the store           |
//! | GET    | `/healthz`          | liveness + uptime                         |
//! | GET    | `/metrics`          | Prometheus-style counters                 |
//!
//! Every failure path returns a structured JSON error document
//! (`{"error":{"code":…,"message":…}}`) with the appropriate status —
//! handlers return `Result<Response, HttpError>` and the single
//! [`handle`] entry point renders either side.

use crate::http::{HttpError, Request, Response};
use crate::ops::{Route, ServerMetrics};
use crate::state::{ModelEntry, Registry};
use crate::wire::{dto, Json, PairDto};
use certa_core::{Matcher, Prediction, Record, Side};
use std::sync::Arc;

/// Route a parsed request. Never panics; never returns a non-JSON error
/// (except `/metrics`, whose body is the plain-text exposition format).
pub fn handle(registry: &Registry, metrics: &ServerMetrics, req: &Request) -> (Route, Response) {
    let (route, result) = dispatch(registry, metrics, req);
    let response = match result {
        Ok(resp) => resp,
        Err(err) => err.to_response(),
    };
    (route, response)
}

fn dispatch(
    registry: &Registry,
    metrics: &ServerMetrics,
    req: &Request,
) -> (Route, Result<Response, HttpError>) {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/score") => (Route::Score, score(registry, req, false)),
        ("POST", "/v1/score_batch") => (Route::ScoreBatch, score(registry, req, true)),
        ("POST", "/v1/explain") => (Route::Explain, explain(registry, req, false)),
        ("POST", "/v1/explain_batch") => (Route::ExplainBatch, explain(registry, req, true)),
        ("POST", "/v1/block") => (Route::Block, block(registry, req)),
        ("POST", "/v1/cluster") => (Route::Cluster, cluster(registry, req)),
        ("GET", "/v1/entity") => (Route::Entity, entity(registry, req)),
        ("GET", "/v1/models") => (Route::Models, models(registry)),
        ("POST", "/v1/reload") => (Route::Reload, reload(registry)),
        ("GET", "/healthz") => (Route::Healthz, healthz(registry)),
        ("GET", "/metrics") => (
            Route::Metrics,
            Ok(Response::text(
                200,
                metrics.render_prometheus(&registry.cache_metric_lines()),
            )),
        ),
        (
            _,
            "/v1/score" | "/v1/score_batch" | "/v1/explain" | "/v1/explain_batch" | "/v1/block"
            | "/v1/cluster" | "/v1/reload",
        ) => (
            Route::Other,
            Err(HttpError {
                status: 405,
                code: "method_not_allowed",
                message: format!("{} {} (use POST)", req.method, req.path),
                keep_alive: true,
            }),
        ),
        (_, "/v1/entity" | "/v1/models" | "/healthz" | "/metrics") => (
            Route::Other,
            Err(HttpError {
                status: 405,
                code: "method_not_allowed",
                message: format!("{} {} (use GET)", req.method, req.path),
                keep_alive: true,
            }),
        ),
        _ => (
            Route::Other,
            Err(HttpError {
                status: 404,
                code: "unknown_route",
                message: format!("no route for {} {}", req.method, req.path),
                keep_alive: true,
            }),
        ),
    }
}

fn parse_body(req: &Request) -> Result<Json, HttpError> {
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| HttpError::bad_request("bad_utf8", "request body is not valid UTF-8"))?;
    Json::parse(text).map_err(|e| HttpError::bad_request("bad_json", e.to_string()))
}

/// Resolve every pair DTO against the entry's tables, preserving order.
fn resolve_pairs<'a>(
    entry: &'a ModelEntry,
    pairs: &'a [PairDto],
) -> Result<Vec<(&'a Record, &'a Record)>, HttpError> {
    pairs
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let u = entry.resolve_record(&p.left, Side::Left, &format!("pairs[{i}].left"))?;
            let v = entry.resolve_record(&p.right, Side::Right, &format!("pairs[{i}].right"))?;
            Ok((u, v))
        })
        .collect()
}

fn score(registry: &Registry, req: &Request, batch: bool) -> Result<Response, HttpError> {
    let body = parse_body(req)?;
    let parsed = decode(&body, batch)?;
    let entry = registry.resolve(&parsed.model)?;
    let pairs = resolve_pairs(&entry, &parsed.pairs)?;
    let scores = entry.matcher().score_batch(&pairs);
    let results: Vec<Json> = scores
        .iter()
        .map(|&s| dto::prediction_to_json(&Prediction::from_score(s)))
        .collect();
    let payload = if batch {
        Json::obj([
            ("model", Json::str(&entry.name)),
            ("count", Json::num(results.len() as f64)),
            ("results", Json::Arr(results)),
        ])
    } else {
        let mut fields = vec![("model".to_string(), Json::str(&entry.name))];
        match results.into_iter().next() {
            Some(Json::Obj(inner)) => fields.extend(inner),
            // `decode(.., batch=false)` yields exactly one pair, and
            // `prediction_to_json` always builds an object.
            _ => {
                return Err(internal_invariant(
                    "single-pair score produced no result object",
                ))
            }
        }
        Json::Obj(fields)
    };
    ok_json(&payload)
}

fn explain(registry: &Registry, req: &Request, batch: bool) -> Result<Response, HttpError> {
    let body = parse_body(req)?;
    let parsed = decode(&body, batch)?;
    let entry = registry.resolve(&parsed.model)?;
    let pairs = resolve_pairs(&entry, &parsed.pairs)?;
    let matcher = entry.matcher();
    let explanations = entry.certa.explain_batch(&matcher, &entry.dataset, &pairs);
    let encoded: Vec<Json> = explanations.iter().map(dto::explanation_to_json).collect();
    let payload = if batch {
        Json::obj([
            ("model", Json::str(&entry.name)),
            ("count", Json::num(encoded.len() as f64)),
            ("explanations", Json::Arr(encoded)),
        ])
    } else {
        Json::obj([
            ("model", Json::str(&entry.name)),
            (
                "explanation",
                encoded
                    .into_iter()
                    .next()
                    .ok_or_else(|| internal_invariant("single-pair explain produced no result"))?,
            ),
        ])
    };
    ok_json(&payload)
}

/// Parsed `/v1/block` request parameters (everything but `model` optional).
struct BlockParams {
    blocker: String,
    num_hashes: usize,
    num_bands: usize,
    target_threshold: f64,
    min_overlap: usize,
    min_containment: f64,
    window: usize,
    prefix_len: usize,
    max_df: usize,
    top: usize,
    explain_top: usize,
}

/// `/v1/block` result-size ceilings: blocking runs over the whole table
/// pair, so the response (not the computation) is what needs bounding.
const BLOCK_MAX_TOP: usize = 1000;
const BLOCK_MAX_EXPLAIN: usize = 16;

impl BlockParams {
    fn from_json(body: &Json) -> Result<BlockParams, HttpError> {
        let usize_field = |name: &'static str, default: usize| -> Result<usize, HttpError> {
            match body.get(name) {
                None => Ok(default),
                Some(Json::Num(n)) if n.fract() == 0.0 && *n >= 0.0 && *n < 1e9 => Ok(*n as usize),
                Some(other) => Err(HttpError::bad_request(
                    "bad_request_body",
                    format!("`{name}` must be a non-negative integer, got {other:?}"),
                )),
            }
        };
        let f64_field = |name: &'static str, default: f64| -> Result<f64, HttpError> {
            match body.get(name) {
                None => Ok(default),
                Some(Json::Num(n)) => Ok(*n),
                Some(other) => Err(HttpError::bad_request(
                    "bad_request_body",
                    format!("`{name}` must be a number, got {other:?}"),
                )),
            }
        };
        let blocker = match body.get("blocker") {
            None => "multi".to_string(),
            Some(Json::Str(s)) => s.clone(),
            Some(other) => {
                return Err(HttpError::bad_request(
                    "bad_request_body",
                    format!("`blocker` must be a string, got {other:?}"),
                ))
            }
        };
        let lsh_defaults = certa_block::LshConfig::default();
        let overlap_defaults = certa_block::TokenOverlap::default();
        let params = BlockParams {
            blocker,
            num_hashes: usize_field("num_hashes", lsh_defaults.num_hashes)?,
            num_bands: usize_field("num_bands", lsh_defaults.num_bands)?,
            target_threshold: f64_field("target_threshold", lsh_defaults.target_threshold)?,
            min_overlap: usize_field("min_overlap", overlap_defaults.min_overlap)?,
            min_containment: f64_field("min_containment", overlap_defaults.min_containment)?,
            window: usize_field("window", certa_block::SortedNeighborhood::default().window)?,
            prefix_len: usize_field("prefix_len", certa_block::TokenPrefix::default().prefix_len)?,
            max_df: usize_field("max_df", certa_block::TokenPrefix::default().max_df)?,
            top: usize_field("top", 10)?,
            explain_top: usize_field("explain_top", 0)?,
        };
        if params.top > BLOCK_MAX_TOP {
            return Err(HttpError::bad_request(
                "bad_request_body",
                format!("`top` must be ≤ {BLOCK_MAX_TOP}, got {}", params.top),
            ));
        }
        if params.explain_top > BLOCK_MAX_EXPLAIN {
            return Err(HttpError::bad_request(
                "bad_request_body",
                format!(
                    "`explain_top` must be ≤ {BLOCK_MAX_EXPLAIN}, got {}",
                    params.explain_top
                ),
            ));
        }
        if !(0.0..=1.0).contains(&params.min_containment) {
            return Err(HttpError::bad_request(
                "bad_request_body",
                format!(
                    "`min_containment` must be in [0, 1], got {}",
                    params.min_containment
                ),
            ));
        }
        Ok(params)
    }

    fn build(&self) -> Result<Box<dyn certa_block::Blocker>, HttpError> {
        let bad_config = |e: String| HttpError::bad_request("bad_blocker_config", e);
        match self.blocker.as_str() {
            "multi" => Ok(Box::new(certa_block::MultiPass::standard())),
            "lsh" => Ok(Box::new(
                certa_block::LshBlocker::new(certa_block::LshConfig {
                    num_hashes: self.num_hashes,
                    num_bands: self.num_bands,
                    target_threshold: self.target_threshold,
                    ..certa_block::LshConfig::default()
                })
                .map_err(bad_config)?,
            )),
            "token-overlap" => Ok(Box::new(certa_block::TokenOverlap {
                min_overlap: self.min_overlap,
                min_containment: self.min_containment,
                max_posting: 0,
            })),
            "sorted-neighborhood" => Ok(Box::new(certa_block::SortedNeighborhood {
                window: self.window,
            })),
            "token-prefix" => Ok(Box::new(certa_block::TokenPrefix {
                prefix_len: self.prefix_len,
                max_df: self.max_df,
            })),
            other => Err(HttpError::bad_request(
                "bad_blocker",
                format!(
                    "unknown blocker `{other}` (expected multi, lsh, token-overlap, \
                     sorted-neighborhood, or token-prefix)"
                ),
            )),
        }
    }
}

/// `POST /v1/block`: run candidate generation over the entry's two tables,
/// stream the survivors through the cached matcher, and explain the best
/// few — the full million-record pipeline behind one endpoint.
fn block(registry: &Registry, req: &Request) -> Result<Response, HttpError> {
    let body = parse_body(req)?;
    let model = match body.get("model") {
        Some(Json::Str(s)) => s.clone(),
        _ => {
            return Err(HttpError::bad_request(
                "bad_request_body",
                "`model` (string, \"<dataset>/<model>\") is required",
            ))
        }
    };
    let params = BlockParams::from_json(&body)?;
    let blocker = params.build()?;
    let entry = registry.resolve(&model)?;
    let candidates = blocker.candidates(entry.dataset.left(), entry.dataset.right());
    registry.record_block(candidates.len());
    let certa = (params.explain_top > 0).then_some(&entry.certa);
    let report = certa_block::run_pipeline_cached(
        candidates,
        blocker.name(),
        &entry.dataset,
        &entry.cache,
        certa,
        &certa_block::PipelineConfig {
            top_k: params.top,
            explain_top: params.explain_top,
            ..certa_block::PipelineConfig::default()
        },
    );
    let top: Vec<Json> = report
        .top
        .iter()
        .map(|sp| {
            Json::obj([
                ("left_id", Json::num(sp.pair.left.0 as f64)),
                ("right_id", Json::num(sp.pair.right.0 as f64)),
                ("score", Json::Num(sp.score)),
            ])
        })
        .collect();
    let explanations: Vec<Json> = report
        .explanations
        .iter()
        .map(|(pair, expl)| {
            Json::obj([
                ("left_id", Json::num(pair.left.0 as f64)),
                ("right_id", Json::num(pair.right.0 as f64)),
                ("explanation", dto::explanation_to_json(expl)),
            ])
        })
        .collect();
    let payload = Json::obj([
        ("model", Json::str(&entry.name)),
        ("blocker", Json::str(report.blocker)),
        ("cross_product", Json::num(report.cross_product as f64)),
        ("candidates", Json::num(report.candidates as f64)),
        ("reduction", Json::Num(report.reduction)),
        (
            "predicted_matches",
            Json::num(report.predicted_matches as f64),
        ),
        ("top", Json::Arr(top)),
        ("explanations", Json::Arr(explanations)),
        (
            "cache",
            match report.cache {
                Some(stats) => Json::obj([
                    ("hits", Json::num(stats.hits as f64)),
                    ("misses", Json::num(stats.misses as f64)),
                    ("hit_rate", Json::Num(stats.hit_rate())),
                ]),
                None => Json::Null,
            },
        ),
    ]);
    ok_json(&payload)
}

/// Parsed `/v1/cluster` request parameters. Blocker selection and tuning
/// ride on [`BlockParams`]; the fields here drive the clustering stage.
struct ClusterParams {
    block: BlockParams,
    clusterer: String,
    threshold: f64,
    workers: usize,
    batch: usize,
    top: usize,
}

/// `/v1/cluster` ceilings: `top` bounds the per-cluster member lists in the
/// response; `workers` bounds per-request thread fan-out.
const CLUSTER_MAX_TOP: usize = 100;
const CLUSTER_MAX_WORKERS: usize = 64;

impl ClusterParams {
    fn from_json(body: &Json) -> Result<ClusterParams, HttpError> {
        let defaults = certa_cluster::ClusterConfig::default();
        let block = BlockParams::from_json(body)?;
        let clusterer = match body.get("clusterer") {
            None => "components".to_string(),
            Some(Json::Str(s)) => s.clone(),
            Some(other) => {
                return Err(HttpError::bad_request(
                    "bad_request_body",
                    format!("`clusterer` must be a string, got {other:?}"),
                ))
            }
        };
        let usize_field = |name: &'static str, default: usize| -> Result<usize, HttpError> {
            match body.get(name) {
                None => Ok(default),
                Some(Json::Num(n)) if n.fract() == 0.0 && *n >= 0.0 && *n < 1e9 => Ok(*n as usize),
                Some(other) => Err(HttpError::bad_request(
                    "bad_request_body",
                    format!("`{name}` must be a non-negative integer, got {other:?}"),
                )),
            }
        };
        let threshold = match body.get("threshold") {
            None => defaults.threshold,
            Some(Json::Num(n)) if (0.0..=1.0).contains(n) => *n,
            Some(other) => {
                return Err(HttpError::bad_request(
                    "bad_request_body",
                    format!("`threshold` must be a number in [0, 1], got {other:?}"),
                ))
            }
        };
        let params = ClusterParams {
            block,
            clusterer,
            threshold,
            workers: usize_field("workers", defaults.workers)?,
            batch: usize_field("batch", defaults.batch_size)?,
            top: usize_field("top_clusters", 10)?,
        };
        if params.workers > CLUSTER_MAX_WORKERS {
            return Err(HttpError::bad_request(
                "bad_request_body",
                format!(
                    "`workers` must be ≤ {CLUSTER_MAX_WORKERS}, got {}",
                    params.workers
                ),
            ));
        }
        if params.batch == 0 {
            return Err(HttpError::bad_request(
                "bad_request_body",
                "`batch` must be ≥ 1, got 0",
            ));
        }
        if params.top > CLUSTER_MAX_TOP {
            return Err(HttpError::bad_request(
                "bad_request_body",
                format!(
                    "`top_clusters` must be ≤ {CLUSTER_MAX_TOP}, got {}",
                    params.top
                ),
            ));
        }
        Ok(params)
    }

    fn build_clusterer(&self) -> Result<Box<dyn certa_cluster::Clusterer>, HttpError> {
        match self.clusterer.as_str() {
            "components" | "connected-components" | "cc" => {
                Ok(Box::new(certa_cluster::ConnectedComponents))
            }
            "matchmerge" | "match-merge" | "swoosh" => Ok(Box::new(certa_cluster::MatchMerge)),
            other => Err(HttpError::bad_request(
                "bad_clusterer",
                format!("unknown clusterer `{other}` (expected components or matchmerge)"),
            )),
        }
    }
}

/// A side-qualified cluster member as a wire object.
fn node_to_json(node: certa_cluster::ClusterNode) -> Json {
    Json::obj([
        (
            "side",
            Json::str(match node.side {
                Side::Left => "left",
                Side::Right => "right",
            }),
        ),
        ("id", Json::num(node.id.0 as f64)),
    ])
}

/// `POST /v1/cluster`: run candidate generation over the entry's tables,
/// score the survivors through the cached matcher, threshold them into a
/// match graph, and resolve entities — the partition is held (and, with a
/// store, persisted) for `GET /v1/entity` lookups.
fn cluster(registry: &Registry, req: &Request) -> Result<Response, HttpError> {
    let body = parse_body(req)?;
    let model = match body.get("model") {
        Some(Json::Str(s)) => s.clone(),
        _ => {
            return Err(HttpError::bad_request(
                "bad_request_body",
                "`model` (string, \"<dataset>/<model>\") is required",
            ))
        }
    };
    let params = ClusterParams::from_json(&body)?;
    let blocker = params.block.build()?;
    let clusterer = params.build_clusterer()?;
    let entry = registry.resolve(&model)?;
    let candidates = blocker.candidates(entry.dataset.left(), entry.dataset.right());
    let report = certa_cluster::run_cluster_pipeline_cached(
        &entry.dataset,
        &entry.cache,
        &candidates,
        blocker.name().to_string(),
        clusterer.as_ref(),
        &certa_cluster::ClusterConfig {
            threshold: params.threshold,
            batch_size: params.batch,
            workers: params.workers,
        },
    );
    let partition = Arc::new(report.partition.clone());
    registry.record_cluster(
        &entry,
        Arc::clone(&partition),
        &report.clusterer,
        report.threshold,
    );
    // Largest clusters first; representative breaks size ties so the order
    // is total and byte-stable.
    let mut order: Vec<usize> = (0..partition.len()).collect();
    order.sort_by_key(|&i| {
        (
            std::cmp::Reverse(partition.members(i).len()),
            partition.representative(i),
        )
    });
    let top: Vec<Json> = order
        .iter()
        .take(params.top)
        .map(|&i| {
            let members: Vec<Json> = partition
                .members(i)
                .iter()
                .map(|&n| node_to_json(n))
                .collect();
            Json::obj([
                ("representative", node_to_json(partition.representative(i))),
                ("size", Json::num(members.len() as f64)),
                ("members", Json::Arr(members)),
            ])
        })
        .collect();
    let payload = Json::obj([
        ("model", Json::str(&entry.name)),
        ("blocker", Json::str(&report.blocker)),
        ("clusterer", Json::str(&report.clusterer)),
        ("threshold", Json::Num(report.threshold)),
        ("candidates", Json::num(report.candidates as f64)),
        ("match_edges", Json::num(report.match_edges.len() as f64)),
        ("entities", Json::num(report.clusters() as f64)),
        ("non_singletons", Json::num(report.non_singletons() as f64)),
        ("largest", Json::num(report.largest() as f64)),
        ("top", Json::Arr(top)),
        (
            "cache",
            match report.cache {
                Some(stats) => Json::obj([
                    ("hits", Json::num(stats.hits as f64)),
                    ("misses", Json::num(stats.misses as f64)),
                    ("hit_rate", Json::Num(stats.hit_rate())),
                ]),
                None => Json::Null,
            },
        ),
    ]);
    ok_json(&payload)
}

/// `GET /v1/entity?model=<name>&side=<left|right>&id=<n>`: which entity a
/// record resolved into, per the latest `/v1/cluster` run (or a persisted
/// partition on the warm-start path).
fn entity(registry: &Registry, req: &Request) -> Result<Response, HttpError> {
    let lookup = |name: &str| -> Option<&str> {
        req.query
            .split('&')
            .filter_map(|kv| kv.split_once('='))
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v)
    };
    let model = lookup("model").ok_or_else(|| {
        HttpError::bad_request(
            "bad_query",
            "`model` query parameter is required (e.g. /v1/entity?model=FZ/DeepMatcher&side=left&id=0)",
        )
    })?;
    let side = match lookup("side") {
        Some("left" | "l" | "L") => Side::Left,
        Some("right" | "r" | "R") => Side::Right,
        other => {
            return Err(HttpError::bad_request(
                "bad_query",
                format!("`side` must be `left` or `right`, got {other:?}"),
            ))
        }
    };
    let id: u32 = lookup("id").and_then(|v| v.parse().ok()).ok_or_else(|| {
        HttpError::bad_request("bad_query", "`id` must be a non-negative integer")
    })?;
    let entry = registry.resolve(model)?;
    let held = registry.partition_for(&entry).ok_or_else(|| HttpError {
        status: 404,
        code: "no_partition",
        message: format!(
            "no partition for {} — run POST /v1/cluster first",
            entry.name
        ),
        keep_alive: true,
    })?;
    let node = certa_cluster::ClusterNode {
        side,
        id: certa_core::RecordId(id),
    };
    let index = held.partition.cluster_of(node).ok_or_else(|| HttpError {
        status: 404,
        code: "unknown_record",
        message: format!(
            "no record {node} in the partition of {} ({} node(s))",
            entry.name,
            held.partition.node_count()
        ),
        keep_alive: true,
    })?;
    let members: Vec<Json> = held
        .partition
        .members(index)
        .iter()
        .map(|&n| node_to_json(n))
        .collect();
    let payload = Json::obj([
        ("model", Json::str(&entry.name)),
        ("clusterer", Json::str(&held.clusterer)),
        ("threshold", Json::Num(held.threshold)),
        ("record", node_to_json(node)),
        (
            "representative",
            node_to_json(held.partition.representative(index)),
        ),
        ("size", Json::num(members.len() as f64)),
        ("members", Json::Arr(members)),
    ]);
    ok_json(&payload)
}

fn decode(body: &Json, batch: bool) -> Result<crate::wire::PairsRequest, HttpError> {
    let parsed = if batch {
        dto::batch_request_from_json(body)
    } else {
        dto::single_request_from_json(body)
    };
    parsed.map_err(|e| HttpError::bad_request("bad_request_body", e.to_string()))
}

/// A broken internal invariant surfaces as a structured 500, not a panic —
/// the connection (and the worker thread) outlive the failure.
fn internal_invariant(message: &str) -> HttpError {
    HttpError {
        status: 500,
        code: "internal_invariant",
        message: message.to_string(),
        keep_alive: true,
    }
}

fn models(registry: &Registry) -> Result<Response, HttpError> {
    let entries: Vec<Json> = registry
        .loaded()
        .iter()
        .map(|e| {
            let stats = e.cache.stats();
            Json::obj([
                ("name", Json::str(&e.name)),
                ("dataset", Json::str(e.dataset_id.code())),
                ("model", Json::str(e.kind.paper_name())),
                ("left_records", Json::num(e.dataset.left().len() as f64)),
                ("right_records", Json::num(e.dataset.right().len() as f64)),
                ("cache_entries", Json::num(e.cache.len() as f64)),
                ("cache_hits", Json::num(stats.hits as f64)),
                ("cache_misses", Json::num(stats.misses as f64)),
            ])
        })
        .collect();
    let payload = Json::obj([
        ("count", Json::num(entries.len() as f64)),
        ("models", Json::Arr(entries)),
    ]);
    ok_json(&payload)
}

/// `POST /v1/reload`: atomically hot-swap every materialized entry with a
/// fresh resolution from the store (artifacts written since startup — e.g.
/// by `certa-store` or another process — become servable without a
/// restart). In-flight requests keep their old entries; the swap is one
/// map insert per model under a single lock acquisition.
fn reload(registry: &Registry) -> Result<Response, HttpError> {
    let names = registry.reload();
    let payload = Json::obj([
        ("reloaded", Json::num(names.len() as f64)),
        ("models", Json::Arr(names.iter().map(Json::str).collect())),
    ]);
    ok_json(&payload)
}

fn healthz(registry: &Registry) -> Result<Response, HttpError> {
    let cfg = registry.config();
    let payload = Json::obj([
        ("status", Json::str("ok")),
        ("scale", Json::str(cfg.scale.to_string())),
        ("seed", Json::num(cfg.seed as f64)),
        ("tau", Json::num(cfg.tau as f64)),
        ("models_loaded", Json::num(registry.loaded().len() as f64)),
    ]);
    ok_json(&payload)
}

fn ok_json(payload: &Json) -> Result<Response, HttpError> {
    let body = payload.serialize().map_err(|e| HttpError {
        status: 500,
        code: "serialization_failed",
        message: e.to_string(),
        keep_alive: true,
    })?;
    Ok(Response::json(200, body))
}

/// Convenience used by tests and the load generator: the exact bytes the
/// server returns for `POST /v1/explain` of one resolved pair.
pub fn explain_response_bytes(entry: &Arc<ModelEntry>, u: &Record, v: &Record) -> Vec<u8> {
    let matcher = entry.matcher();
    let explanations = entry
        .certa
        .explain_batch(&matcher, &entry.dataset, &[(u, v)]);
    Json::obj([
        ("model", Json::str(&entry.name)),
        // certa-lint: allow(no-panic-path) — harness-only helper (tests + load generator); the batch is built one line up with exactly one pair
        ("explanation", dto::explanation_to_json(&explanations[0])),
    ])
    .serialize()
    // certa-lint: allow(no-panic-path) — harness-only helper; request traffic goes through ok_json, which maps this failure to a 500
    .expect("explanations contain only finite numbers")
    .into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::ServeConfig;

    fn req(method: &str, path: &str, body: &str) -> Request {
        // Split the target like the HTTP parser does: `Request::path` is
        // always query-stripped by the time it reaches the router.
        let (path, query) = match path.split_once('?') {
            Some((p, q)) => (p, q),
            None => (path, ""),
        };
        Request {
            method: method.to_string(),
            path: path.to_string(),
            query: query.to_string(),
            headers: vec![],
            body: body.as_bytes().to_vec(),
            keep_alive: true,
            http11: true,
        }
    }

    fn parse_response(resp: &Response) -> Json {
        Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap()
    }

    fn registry() -> Registry {
        Registry::new(ServeConfig {
            tau: 12,
            ..ServeConfig::default()
        })
    }

    fn go(registry: &Registry, r: &Request) -> (Route, Response) {
        handle(registry, &ServerMetrics::default(), r)
    }

    #[test]
    fn score_single_and_batch_agree() {
        let registry = registry();
        let (route, resp) = go(
            &registry,
            &req(
                "POST",
                "/v1/score",
                r#"{"model":"FZ/DeepMatcher","pair":{"left_id":0,"right_id":0}}"#,
            ),
        );
        assert_eq!(route, Route::Score);
        assert_eq!(
            resp.status,
            200,
            "{:?}",
            String::from_utf8_lossy(&resp.body)
        );
        let single = parse_response(&resp);
        assert_eq!(
            single.get("model").unwrap().as_str(),
            Some("FZ/DeepMatcher")
        );
        let score = single.get("score").unwrap().as_num().unwrap();
        assert!((0.0..=1.0).contains(&score));

        let (_, resp) = go(
            &registry,
            &req(
                "POST",
                "/v1/score_batch",
                r#"{"model":"FZ/DeepMatcher","pairs":[{"left_id":0,"right_id":0},{"left_id":0,"right_id":1}]}"#,
            ),
        );
        assert_eq!(resp.status, 200);
        let batch = parse_response(&resp);
        assert_eq!(batch.get("count"), Some(&Json::Num(2.0)));
        let results = batch.get("results").unwrap().as_arr().unwrap();
        assert_eq!(results[0].get("score").unwrap().as_num(), Some(score));
    }

    #[test]
    fn explain_matches_in_process_bytes() {
        let registry = registry();
        let (route, resp) = go(
            &registry,
            &req(
                "POST",
                "/v1/explain",
                r#"{"model":"FZ/Ditto","pair":{"left_id":0,"right_id":0}}"#,
            ),
        );
        assert_eq!(route, Route::Explain);
        assert_eq!(resp.status, 200);
        let entry = registry.resolve("FZ/Ditto").unwrap();
        let u = entry.dataset.left().expect(certa_core::RecordId(0)).clone();
        let v = entry
            .dataset
            .right()
            .expect(certa_core::RecordId(0))
            .clone();
        let expected = explain_response_bytes(&entry, &u, &v);
        assert_eq!(
            resp.body, expected,
            "served explanation must be byte-identical to the in-process computation"
        );
        // Determinism: a second identical request returns identical bytes.
        let (_, again) = go(
            &registry,
            &req(
                "POST",
                "/v1/explain",
                r#"{"model":"FZ/Ditto","pair":{"left_id":0,"right_id":0}}"#,
            ),
        );
        assert_eq!(again.body, resp.body);
    }

    #[test]
    fn explain_batch_equals_sequence_of_singles() {
        let registry = registry();
        let (_, batch) = go(
            &registry,
            &req(
                "POST",
                "/v1/explain_batch",
                r#"{"model":"FZ/DeepMatcher","pairs":[{"left_id":0,"right_id":0},{"left_id":1,"right_id":2}]}"#,
            ),
        );
        assert_eq!(batch.status, 200);
        let parsed = parse_response(&batch);
        let explanations = parsed.get("explanations").unwrap().as_arr().unwrap();
        assert_eq!(explanations.len(), 2);
        for (i, (l, r)) in [(0u32, 0u32), (1, 2)].iter().enumerate() {
            let (_, single) = go(
                &registry,
                &req(
                    "POST",
                    "/v1/explain",
                    &format!(
                        r#"{{"model":"FZ/DeepMatcher","pair":{{"left_id":{l},"right_id":{r}}}}}"#
                    ),
                ),
            );
            let single = parse_response(&single);
            assert_eq!(
                single.get("explanation").unwrap(),
                &explanations[i],
                "batch element {i} diverges from the single-pair endpoint"
            );
        }
    }

    #[test]
    fn inline_records_are_scored() {
        let registry = registry();
        let entry = registry.resolve("FZ/DeepMatcher").unwrap();
        let arity = entry.dataset.left().schema().arity();
        let values: Vec<String> = (0..arity).map(|i| format!("\"v{i}\"")).collect();
        let body = format!(
            r#"{{"model":"FZ/DeepMatcher","pair":{{"left":{{"id":0,"values":[{}]}},"right_id":0}}}}"#,
            values.join(",")
        );
        let (_, resp) = go(&registry, &req("POST", "/v1/score", &body));
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
    }

    #[test]
    fn error_paths_are_structured() {
        let registry = registry();
        let cases: &[(&str, &str, &str, u16, &str)] = &[
            ("POST", "/v1/score", "not json", 400, "bad_json"),
            (
                "POST",
                "/v1/score",
                "{\"model\":7,\"pair\":{}}",
                400,
                "bad_request_body",
            ),
            (
                "POST",
                "/v1/score",
                "{\"model\":\"nope\",\"pair\":{\"left_id\":0,\"right_id\":0}}",
                400,
                "bad_model_name",
            ),
            (
                "POST",
                "/v1/score",
                "{\"model\":\"XX/Ditto\",\"pair\":{\"left_id\":0,\"right_id\":0}}",
                404,
                "unknown_dataset",
            ),
            (
                "POST",
                "/v1/score",
                "{\"model\":\"FZ/Ditto\",\"pair\":{\"left_id\":88888,\"right_id\":0}}",
                404,
                "unknown_record",
            ),
            ("GET", "/v1/score", "", 405, "method_not_allowed"),
            ("POST", "/healthz", "", 405, "method_not_allowed"),
            ("GET", "/nope", "", 404, "unknown_route"),
        ];
        for (method, path, body, status, code) in cases {
            let (_, resp) = go(&registry, &req(method, path, body));
            assert_eq!(resp.status, *status, "{method} {path} {body}");
            let parsed = parse_response(&resp);
            assert_eq!(
                parsed.get("error").unwrap().get("code").unwrap().as_str(),
                Some(*code),
                "{method} {path} {body}"
            );
        }
    }

    #[test]
    fn block_endpoint_runs_the_full_pipeline() {
        let registry = registry();
        let body = r#"{"model":"FZ/DeepMatcher","top":5,"explain_top":1}"#;
        let (route, resp) = go(&registry, &req("POST", "/v1/block", body));
        assert_eq!(route, Route::Block);
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let parsed = parse_response(&resp);
        assert_eq!(
            parsed.get("model").unwrap().as_str(),
            Some("FZ/DeepMatcher")
        );
        let candidates = parsed.get("candidates").unwrap().as_num().unwrap();
        assert!(candidates > 0.0, "smoke tables contain seeded duplicates");
        assert!(parsed.get("reduction").unwrap().as_num().unwrap() > 1.0);
        let top = parsed.get("top").unwrap().as_arr().unwrap();
        assert!(!top.is_empty() && top.len() <= 5);
        for entry in top {
            let score = entry.get("score").unwrap().as_num().unwrap();
            assert!((0.0..=1.0).contains(&score));
        }
        let explanations = parsed.get("explanations").unwrap().as_arr().unwrap();
        assert_eq!(explanations.len(), 1);
        assert!(explanations[0].get("explanation").is_some());

        // Determinism: the same request returns the same document — except
        // the per-run cache delta, which flips from all-misses to all-hits.
        let (_, again) = go(&registry, &req("POST", "/v1/block", body));
        let again = parse_response(&again);
        for field in ["blocker", "candidates", "reduction", "top", "explanations"] {
            assert_eq!(again.get(field), parsed.get(field), "{field}");
        }
        let cold = parsed.get("cache").unwrap();
        let warm = again.get("cache").unwrap();
        assert!(
            cold.get("misses").unwrap().as_num().unwrap() > 0.0,
            "cold run scores"
        );
        assert_eq!(warm.get("misses"), Some(&Json::Num(0.0)), "{warm:?}");
        assert_eq!(warm.get("hit_rate"), Some(&Json::Num(1.0)));

        // The registry accounted both runs in the /metrics exposition.
        let (_, metrics) = go(&registry, &req("GET", "/metrics", ""));
        let text = String::from_utf8(metrics.body).unwrap();
        assert!(text.contains("certa_serve_block_runs_total 2"));
        assert!(text.contains(&format!(
            "certa_serve_block_candidates_total {}",
            2 * candidates as u64
        )));
    }

    #[test]
    fn block_endpoint_accepts_every_blocker_kind() {
        let registry = registry();
        for blocker in [
            "multi",
            "lsh",
            "token-overlap",
            "sorted-neighborhood",
            "token-prefix",
        ] {
            let body = format!(r#"{{"model":"FZ/DeepMatcher","blocker":"{blocker}","top":3}}"#);
            let (_, resp) = go(&registry, &req("POST", "/v1/block", &body));
            assert_eq!(
                resp.status,
                200,
                "blocker {blocker}: {}",
                String::from_utf8_lossy(&resp.body)
            );
        }
    }

    #[test]
    fn block_endpoint_validates_parameters() {
        let registry = registry();
        let cases: &[(&str, &str)] = &[
            (
                r#"{"model":"FZ/DeepMatcher","blocker":"nope"}"#,
                "bad_blocker",
            ),
            (
                r#"{"model":"FZ/DeepMatcher","blocker":"lsh","num_bands":7}"#,
                "bad_blocker_config",
            ),
            (
                r#"{"model":"FZ/DeepMatcher","blocker":"lsh","target_threshold":0}"#,
                "bad_blocker_config",
            ),
            (
                r#"{"model":"FZ/DeepMatcher","min_containment":2.5}"#,
                "bad_request_body",
            ),
            (
                r#"{"model":"FZ/DeepMatcher","top":5000}"#,
                "bad_request_body",
            ),
            (
                r#"{"model":"FZ/DeepMatcher","explain_top":99}"#,
                "bad_request_body",
            ),
            (
                r#"{"model":"FZ/DeepMatcher","num_hashes":2.5}"#,
                "bad_request_body",
            ),
            (r#"{"top":3}"#, "bad_request_body"),
        ];
        for (body, code) in cases {
            let (_, resp) = go(&registry, &req("POST", "/v1/block", body));
            assert_eq!(resp.status, 400, "{body}");
            let parsed = parse_response(&resp);
            assert_eq!(
                parsed.get("error").unwrap().get("code").unwrap().as_str(),
                Some(*code),
                "{body}"
            );
        }
        let (_, resp) = go(&registry, &req("GET", "/v1/block", ""));
        assert_eq!(resp.status, 405);
    }

    #[test]
    fn cluster_endpoint_resolves_entities_and_serves_lookups() {
        let registry = registry();
        let body = r#"{"model":"FZ/DeepMatcher","threshold":0.5,"top_clusters":3}"#;
        let (route, resp) = go(&registry, &req("POST", "/v1/cluster", body));
        assert_eq!(route, Route::Cluster);
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let parsed = parse_response(&resp);
        assert_eq!(
            parsed.get("model").unwrap().as_str(),
            Some("FZ/DeepMatcher")
        );
        assert_eq!(
            parsed.get("clusterer").unwrap().as_str(),
            Some("components")
        );
        let entities = parsed.get("entities").unwrap().as_num().unwrap();
        assert!(entities > 0.0);
        let top = parsed.get("top").unwrap().as_arr().unwrap();
        assert!(!top.is_empty() && top.len() <= 3);
        let first = &top[0];
        assert_eq!(
            first.get("size").unwrap().as_num().unwrap() as usize,
            first.get("members").unwrap().as_arr().unwrap().len()
        );
        assert!(parsed.get("cache").unwrap().get("misses").is_some());

        // Determinism: the same request returns the same partition — and
        // the warm run's cache delta shows full score reuse.
        let (_, again) = go(&registry, &req("POST", "/v1/cluster", body));
        let again = parse_response(&again);
        for field in ["clusterer", "threshold", "entities", "largest", "top"] {
            assert_eq!(again.get(field), parsed.get(field), "{field}");
        }
        assert_eq!(
            again.get("cache").unwrap().get("hits"),
            parsed.get("cache").unwrap().get("misses"),
            "warm cluster run rescoring nothing"
        );

        // A member of the largest cluster looks up to that same cluster.
        let member = &first.get("members").unwrap().as_arr().unwrap()[0];
        let side = member.get("side").unwrap().as_str().unwrap().to_string();
        let id = member.get("id").unwrap().as_num().unwrap() as u32;
        let (route, resp) = go(
            &registry,
            &req(
                "GET",
                &format!("/v1/entity?model=FZ/DeepMatcher&side={side}&id={id}"),
                "",
            ),
        );
        assert_eq!(route, Route::Entity);
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let looked_up = parse_response(&resp);
        assert_eq!(
            looked_up.get("size").unwrap().as_num(),
            first.get("size").unwrap().as_num()
        );
        assert_eq!(
            looked_up.get("representative").unwrap(),
            first.get("representative").unwrap()
        );

        // Both cluster runs and the lookup land in the /metrics exposition.
        let (_, metrics) = go(&registry, &req("GET", "/metrics", ""));
        let text = String::from_utf8(metrics.body).unwrap();
        assert!(text.contains("certa_serve_cluster_runs_total 2"), "{text}");
        assert!(
            text.contains("certa_serve_cluster_entity_lookups_total 1"),
            "{text}"
        );
        assert!(
            text.contains("certa_serve_cluster_partition_entities{model=\"FZ/DeepMatcher\"}"),
            "{text}"
        );
    }

    #[test]
    fn entity_endpoint_validates_and_404s_without_a_partition() {
        let registry = registry();
        let cases: &[(&str, u16, &str)] = &[
            ("/v1/entity", 400, "bad_query"),
            ("/v1/entity?side=left&id=0", 400, "bad_query"),
            ("/v1/entity?model=FZ/Ditto&side=up&id=0", 400, "bad_query"),
            ("/v1/entity?model=FZ/Ditto&side=left&id=x", 400, "bad_query"),
            (
                "/v1/entity?model=FZ/Ditto&side=left&id=0",
                404,
                "no_partition",
            ),
        ];
        for (path, status, code) in cases {
            let (_, resp) = go(&registry, &req("GET", path, ""));
            assert_eq!(resp.status, *status, "{path}");
            let parsed = parse_response(&resp);
            assert_eq!(
                parsed.get("error").unwrap().get("code").unwrap().as_str(),
                Some(*code),
                "{path}"
            );
        }
        // After clustering, an out-of-range id is a structured 404 too.
        let (_, resp) = go(
            &registry,
            &req("POST", "/v1/cluster", r#"{"model":"FZ/Ditto"}"#),
        );
        assert_eq!(resp.status, 200);
        let (_, resp) = go(
            &registry,
            &req("GET", "/v1/entity?model=FZ/Ditto&side=left&id=9999999", ""),
        );
        assert_eq!(resp.status, 404);
        let parsed = parse_response(&resp);
        assert_eq!(
            parsed.get("error").unwrap().get("code").unwrap().as_str(),
            Some("unknown_record")
        );
        // POST on the query route is a 405, like the other GET routes.
        let (_, resp) = go(&registry, &req("POST", "/v1/entity?model=FZ/Ditto", ""));
        assert_eq!(resp.status, 405);
    }

    #[test]
    fn cluster_endpoint_validates_parameters() {
        let registry = registry();
        let cases: &[(&str, &str)] = &[
            (
                r#"{"model":"FZ/Ditto","clusterer":"nope"}"#,
                "bad_clusterer",
            ),
            (
                r#"{"model":"FZ/Ditto","threshold":1.5}"#,
                "bad_request_body",
            ),
            (r#"{"model":"FZ/Ditto","workers":1000}"#, "bad_request_body"),
            (r#"{"model":"FZ/Ditto","batch":0}"#, "bad_request_body"),
            (
                r#"{"model":"FZ/Ditto","top_clusters":500}"#,
                "bad_request_body",
            ),
            (r#"{"model":"FZ/Ditto","blocker":"nope"}"#, "bad_blocker"),
            (r#"{"threshold":0.5}"#, "bad_request_body"),
        ];
        for (body, code) in cases {
            let (_, resp) = go(&registry, &req("POST", "/v1/cluster", body));
            assert_eq!(resp.status, 400, "{body}");
            let parsed = parse_response(&resp);
            assert_eq!(
                parsed.get("error").unwrap().get("code").unwrap().as_str(),
                Some(*code),
                "{body}"
            );
        }
        let (_, resp) = go(&registry, &req("GET", "/v1/cluster", ""));
        assert_eq!(resp.status, 405);
    }

    #[test]
    fn cluster_workers_do_not_change_the_bytes() {
        let registry = registry();
        let one = r#"{"model":"FZ/Ditto","workers":1}"#;
        let four = r#"{"model":"FZ/Ditto","workers":4,"batch":3}"#;
        let (_, a) = go(&registry, &req("POST", "/v1/cluster", one));
        let (_, b) = go(&registry, &req("POST", "/v1/cluster", four));
        assert_eq!(a.status, 200);
        // The cache line differs between a cold and a warm run; everything
        // partition-shaped must not. Compare through the parsed documents.
        let (a, b) = (parse_response(&a), parse_response(&b));
        for field in [
            "clusterer",
            "threshold",
            "candidates",
            "match_edges",
            "entities",
            "non_singletons",
            "largest",
            "top",
        ] {
            assert_eq!(a.get(field), b.get(field), "{field}");
        }
    }

    #[test]
    fn reload_hot_swaps_resolved_entries() {
        let registry = registry();
        let (_, resp) = go(&registry, &req("POST", "/v1/reload", ""));
        assert_eq!(resp.status, 200);
        let parsed = parse_response(&resp);
        assert_eq!(
            parsed.get("reloaded"),
            Some(&Json::Num(0.0)),
            "nothing resolved yet"
        );

        let before = registry.resolve("FZ/Ditto").unwrap();
        let (route, resp) = go(&registry, &req("POST", "/v1/reload", ""));
        assert_eq!(route, Route::Reload);
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let parsed = parse_response(&resp);
        assert_eq!(parsed.get("reloaded"), Some(&Json::Num(1.0)));
        assert_eq!(
            parsed.get("models").unwrap().as_arr().unwrap()[0].as_str(),
            Some("FZ/Ditto")
        );
        let after = registry.resolve("FZ/Ditto").unwrap();
        assert!(!Arc::ptr_eq(&before, &after), "fresh entry swapped in");
        // The old Arc stays fully usable for in-flight requests, and the
        // re-resolved entry lives in the same deterministic world.
        let u = before.dataset.left().records()[0].clone();
        let v = before.dataset.right().records()[0].clone();
        assert_eq!(
            before.matcher().score(&u, &v).to_bits(),
            after.matcher().score(&u, &v).to_bits(),
            "same (scale, seed) world, same weights"
        );
        let (_, resp) = go(&registry, &req("GET", "/v1/reload", ""));
        assert_eq!(resp.status, 405);
    }

    #[test]
    fn healthz_and_models_report_state() {
        let registry = registry();
        let (_, resp) = go(&registry, &req("GET", "/healthz", ""));
        let health = parse_response(&resp);
        assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(health.get("models_loaded"), Some(&Json::Num(0.0)));
        registry.resolve("FZ/Ditto").unwrap();
        let (_, resp) = go(&registry, &req("GET", "/v1/models", ""));
        let models = parse_response(&resp);
        assert_eq!(models.get("count"), Some(&Json::Num(1.0)));
        let first = &models.get("models").unwrap().as_arr().unwrap()[0];
        assert_eq!(first.get("name").unwrap().as_str(), Some("FZ/Ditto"));
        // /metrics renders the text exposition including the cache lines.
        let (route, resp) = go(&registry, &req("GET", "/metrics", ""));
        assert_eq!(route, Route::Metrics);
        assert_eq!(resp.status, 200);
        assert_eq!(resp.content_type, "text/plain; charset=utf-8");
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("certa_serve_uptime_seconds"));
        assert!(text.contains("certa_serve_cache_entries{model=\"FZ/Ditto\"}"));
    }
}
