//! Server state: configuration and the model registry.
//!
//! The registry resolves `"<dataset>/<model>"` names (e.g.
//! `"FZ/DeepMatcher"`) by generating the named synthetic dataset through
//! `certa-datagen` and training the named matcher family through
//! `certa-models`, exactly as the in-process experiment grid does. Each
//! resolved entry wraps its matcher in the sharded [`CachingMatcher`] and
//! owns a [`Certa`] explainer configured from the server's `(seed, τ)` — so
//! a served explanation is *the same computation* as an in-process
//! [`Certa::explain_batch`] call with the same configuration, which is what
//! makes the byte-equality guarantee (and `bench_serve_load`'s check of it)
//! possible.
//!
//! Resolution is lazy and memoized: the first request for a name pays the
//! generate+train cost once (concurrent requests for the same name block on
//! one `OnceLock` initializer; different names never block each other), and
//! every later request reuses the entry and its warm score cache.

use crate::http::HttpError;
use certa_core::{BoxedMatcher, Dataset, Record, Side};
use certa_datagen::{generate, DatasetId, Scale};
use certa_explain::{Certa, CertaConfig};
use certa_models::{train_model, CacheStats, CachingMatcher, ErModel, ModelKind, TrainConfig};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Serving configuration (model world + HTTP tunables).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Dataset scale every registry entry is generated at.
    pub scale: Scale,
    /// Master seed: dataset generation, training, and CERTA's candidate
    /// scans all derive from it, so `(scale, seed, tau)` pins every byte of
    /// every response.
    pub seed: u64,
    /// CERTA triangle budget τ.
    pub tau: usize,
    /// Worker threads inside one explanation (1 = sequential per request;
    /// request-level parallelism comes from the HTTP worker pool).
    pub explain_workers: usize,
    /// HTTP worker threads (0 = one per available core).
    pub http_workers: usize,
    /// Bound on queued connections before the accept loop answers `503`.
    pub queue_depth: usize,
    /// Bound on request bodies (`413` beyond it).
    pub max_body_bytes: usize,
    /// Per-read socket timeout; idle keep-alive connections are dropped
    /// after it so they cannot pin workers forever.
    pub read_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            scale: Scale::Smoke,
            seed: 7,
            tau: 100,
            explain_workers: 1,
            http_workers: 0,
            queue_depth: 128,
            max_body_bytes: crate::http::DEFAULT_MAX_BODY_BYTES,
            read_timeout: Duration::from_secs(5),
        }
    }
}

impl ServeConfig {
    /// The CERTA configuration served entries use — the same formula the
    /// evaluation grid's `GridConfig::certa_config()` applies, so server
    /// responses are byte-comparable against in-process runs with the same
    /// `(seed, tau)`.
    pub fn certa_config(&self) -> CertaConfig {
        CertaConfig::default()
            .with_triangles(self.tau)
            .with_seed(self.seed)
            .with_workers(self.explain_workers.max(1))
    }

    /// Effective HTTP worker-pool size.
    pub fn effective_http_workers(&self) -> usize {
        if self.http_workers > 0 {
            self.http_workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// One resolved `"<dataset>/<model>"`: the generated dataset, the trained
/// matcher behind its score cache, and the configured explainer.
pub struct ModelEntry {
    /// Canonical name (`"FZ/DeepMatcher"`).
    pub name: String,
    /// Which benchmark dataset.
    pub dataset_id: DatasetId,
    /// Which model family.
    pub kind: ModelKind,
    /// The generated dataset (perturbation donors, id lookups).
    pub dataset: Dataset,
    /// The trained model itself (featurizer-memo statistics live here).
    pub model: Arc<ErModel>,
    /// The sharded score cache wrapping the trained matcher.
    pub cache: Arc<CachingMatcher>,
    /// The CERTA explainer for this entry.
    pub certa: Certa,
}

impl ModelEntry {
    /// The cached matcher as a [`BoxedMatcher`].
    pub fn matcher(&self) -> BoxedMatcher {
        Arc::clone(&self.cache) as BoxedMatcher
    }

    /// Resolve one request-side record: inline records pass through,
    /// id references look up the named table.
    pub fn resolve_record<'a>(
        &'a self,
        dto: &'a crate::wire::RecordDto,
        side: Side,
        field: &str,
    ) -> Result<&'a Record, HttpError> {
        match dto {
            crate::wire::RecordDto::Inline(r) => {
                let arity = self.dataset.table(side).schema().arity();
                if r.arity() != arity {
                    return Err(HttpError::bad_request(
                        "arity_mismatch",
                        format!(
                            "field `{field}`: record has {} values but the {} table of {} has {arity} attributes",
                            r.arity(),
                            match side {
                                Side::Left => "left",
                                Side::Right => "right",
                            },
                            self.dataset_id,
                        ),
                    ));
                }
                Ok(r)
            }
            crate::wire::RecordDto::ById(id) => {
                self.dataset.table(side).get(*id).map_err(|_| HttpError {
                    status: 404,
                    code: "unknown_record",
                    message: format!(
                        "field `{field}`: no record {id} in the {} table of {}",
                        match side {
                            Side::Left => "left",
                            Side::Right => "right",
                        },
                        self.dataset_id,
                    ),
                    keep_alive: true,
                })
            }
        }
    }
}

type EntrySlot = Arc<OnceLock<Arc<ModelEntry>>>;

/// Lazy, memoized name → [`ModelEntry`] resolution.
pub struct Registry {
    config: ServeConfig,
    // BTreeMap so `/v1/models` and `/metrics` list entries in stable order.
    entries: Mutex<BTreeMap<String, EntrySlot>>,
}

impl Registry {
    /// An empty registry serving the given configuration.
    pub fn new(config: ServeConfig) -> Self {
        Registry {
            config,
            entries: Mutex::new(BTreeMap::new()),
        }
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Parse and canonicalize a `"<dataset>/<model>"` name.
    pub fn canonical_name(name: &str) -> Result<(DatasetId, ModelKind), HttpError> {
        let (ds, model) = name.split_once('/').ok_or_else(|| {
            HttpError::bad_request(
                "bad_model_name",
                format!("`{name}` is not of the form `<dataset>/<model>` (e.g. `FZ/DeepMatcher`)"),
            )
        })?;
        let dataset_id = DatasetId::from_code(ds).map_err(|e| HttpError {
            status: 404,
            code: "unknown_dataset",
            message: e,
            keep_alive: true,
        })?;
        let kind = ModelKind::from_name(model).map_err(|e| HttpError {
            status: 404,
            code: "unknown_model",
            message: e,
            keep_alive: true,
        })?;
        Ok((dataset_id, kind))
    }

    /// Resolve a name, generating + training on first use.
    pub fn resolve(&self, name: &str) -> Result<Arc<ModelEntry>, HttpError> {
        let (dataset_id, kind) = Self::canonical_name(name)?;
        let canonical = format!("{}/{}", dataset_id.code(), kind.paper_name());
        let slot: EntrySlot = {
            let mut map = self.entries.lock();
            Arc::clone(map.entry(canonical.clone()).or_default())
        };
        // Build outside the map lock: a slow first-time train of one name
        // never blocks requests for other (or already-resolved) names.
        let entry = slot.get_or_init(|| {
            let dataset = generate(dataset_id, self.config.scale, self.config.seed);
            let (model, _report) = train_model(kind, &dataset, &TrainConfig::for_kind(kind));
            let model = Arc::new(model);
            let cache = CachingMatcher::new(Arc::clone(&model) as BoxedMatcher);
            Arc::new(ModelEntry {
                name: canonical.clone(),
                dataset_id,
                kind,
                dataset,
                model,
                cache,
                certa: Certa::new(self.config.certa_config()),
            })
        });
        Ok(Arc::clone(entry))
    }

    /// Snapshot of the resolved entries, in name order.
    pub fn loaded(&self) -> Vec<Arc<ModelEntry>> {
        self.entries
            .lock()
            .values()
            .filter_map(|slot| slot.get().cloned())
            .collect()
    }

    /// Per-model cache-effectiveness lines for the `/metrics` exposition.
    pub fn cache_metric_lines(&self) -> String {
        let mut out = String::new();
        let loaded = self.loaded();
        if loaded.is_empty() {
            return out;
        }
        out.push_str("# TYPE certa_serve_cache_hits_total counter\n");
        let stats: Vec<(String, CacheStats, usize)> = loaded
            .iter()
            .map(|e| (e.name.clone(), e.cache.stats(), e.cache.len()))
            .collect();
        for (name, s, _) in &stats {
            out.push_str(&format!(
                "certa_serve_cache_hits_total{{model=\"{name}\"}} {}\n",
                s.hits
            ));
        }
        out.push_str("# TYPE certa_serve_cache_misses_total counter\n");
        for (name, s, _) in &stats {
            out.push_str(&format!(
                "certa_serve_cache_misses_total{{model=\"{name}\"}} {}\n",
                s.misses
            ));
        }
        out.push_str("# TYPE certa_serve_cache_entries gauge\n");
        for (name, _, len) in &stats {
            out.push_str(&format!(
                "certa_serve_cache_entries{{model=\"{name}\"}} {len}\n"
            ));
        }
        // Featurizer-memo effectiveness (per-value featurization artifacts),
        // next to the score-cache counters it composes with.
        let memo: Vec<(String, CacheStats, usize)> = loaded
            .iter()
            .map(|e| (e.name.clone(), e.model.memo_stats(), e.model.memo_len()))
            .collect();
        out.push_str("# TYPE certa_serve_featurizer_memo_hits_total counter\n");
        for (name, s, _) in &memo {
            out.push_str(&format!(
                "certa_serve_featurizer_memo_hits_total{{model=\"{name}\"}} {}\n",
                s.hits
            ));
        }
        out.push_str("# TYPE certa_serve_featurizer_memo_misses_total counter\n");
        for (name, s, _) in &memo {
            out.push_str(&format!(
                "certa_serve_featurizer_memo_misses_total{{model=\"{name}\"}} {}\n",
                s.misses
            ));
        }
        out.push_str("# TYPE certa_serve_featurizer_memo_entries gauge\n");
        for (name, _, len) in &memo {
            out.push_str(&format!(
                "certa_serve_featurizer_memo_entries{{model=\"{name}\"}} {len}\n"
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::RecordDto;
    use certa_core::{Matcher, RecordId};

    #[test]
    fn canonical_names_parse_and_reject() {
        let (ds, kind) = Registry::canonical_name("fz/deepmatcher").unwrap();
        assert_eq!((ds, kind), (DatasetId::FZ, ModelKind::DeepMatcher));
        let (ds, kind) = Registry::canonical_name("DDA/ditto-sim").unwrap();
        assert_eq!((ds, kind), (DatasetId::DDA, ModelKind::Ditto));
        assert_eq!(
            Registry::canonical_name("no-slash").unwrap_err().status,
            400
        );
        assert_eq!(
            Registry::canonical_name("XX/Ditto").unwrap_err().status,
            404
        );
        assert_eq!(Registry::canonical_name("FZ/gpt").unwrap_err().status, 404);
    }

    #[test]
    fn resolve_trains_once_and_canonicalizes_aliases() {
        let registry = Registry::new(ServeConfig::default());
        assert!(registry.loaded().is_empty());
        let a = registry.resolve("FZ/DeepMatcher").unwrap();
        // Case/alias variants land on the same memoized entry.
        let b = registry.resolve("fz/deepmatcher-sim").unwrap();
        assert!(Arc::ptr_eq(&a, &b), "aliases must share one entry");
        assert_eq!(a.name, "FZ/DeepMatcher");
        assert_eq!(registry.loaded().len(), 1);

        // The entry scores and its cache counts traffic.
        let u = a.dataset.left().records()[0].clone();
        let v = a.dataset.right().records()[0].clone();
        let s1 = a.matcher().score(&u, &v);
        let s2 = a.matcher().score(&u, &v);
        assert_eq!(s1, s2);
        let stats = a.cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        let lines = registry.cache_metric_lines();
        assert!(lines.contains("cache_hits_total{model=\"FZ/DeepMatcher\"} 1"));
        // The featurizer memo saw exactly one uncached scoring pass.
        let memo = a.model.memo_stats();
        assert!(memo.misses > 0, "memo populated by the cold score");
        assert!(lines.contains("featurizer_memo_misses_total{model=\"FZ/DeepMatcher\"}"));
        assert!(lines.contains("featurizer_memo_hits_total{model=\"FZ/DeepMatcher\"}"));
        assert!(lines.contains("featurizer_memo_entries{model=\"FZ/DeepMatcher\"}"));
    }

    #[test]
    fn record_resolution_checks_ids_and_arity() {
        let registry = Registry::new(ServeConfig::default());
        let entry = registry.resolve("FZ/Ditto").unwrap();
        let by_id = RecordDto::ById(RecordId(0));
        let r = entry
            .resolve_record(&by_id, Side::Left, "pair.left_id")
            .unwrap();
        assert_eq!(r.id(), RecordId(0));
        let missing = RecordDto::ById(RecordId(9_999_999));
        let err = entry
            .resolve_record(&missing, Side::Right, "pair.right_id")
            .unwrap_err();
        assert_eq!((err.status, err.code), (404, "unknown_record"));
        let bad_arity = RecordDto::Inline(Record::new(RecordId(0), vec!["only-one".into()]));
        let err = entry
            .resolve_record(&bad_arity, Side::Left, "pair.left")
            .unwrap_err();
        assert_eq!((err.status, err.code), (400, "arity_mismatch"));
        let arity = entry.dataset.left().schema().arity();
        let ok = RecordDto::Inline(Record::new(RecordId(5), vec![String::new(); arity]));
        assert!(entry.resolve_record(&ok, Side::Left, "pair.left").is_ok());
    }
}
