//! Server state: configuration and the model registry.
//!
//! The registry resolves `"<dataset>/<model>"` names (e.g.
//! `"FZ/DeepMatcher"`) by generating the named synthetic dataset through
//! `certa-datagen` and training the named matcher family through
//! `certa-models`, exactly as the in-process experiment grid does. Each
//! resolved entry wraps its matcher in the sharded [`CachingMatcher`] and
//! owns a [`Certa`] explainer configured from the server's `(seed, τ)` — so
//! a served explanation is *the same computation* as an in-process
//! [`Certa::explain_batch`] call with the same configuration, which is what
//! makes the byte-equality guarantee (and `bench_serve_load`'s check of it)
//! possible.
//!
//! Resolution is lazy and memoized: the first request for a name pays the
//! generate+train cost once (concurrent requests for the same name block on
//! one `OnceLock` initializer; different names never block each other), and
//! every later request reuses the entry and its warm score cache.
//!
//! With a `--store-dir`, first-touch resolution goes through `certa-store`
//! instead: load-or-train-then-persist. A verified artifact pair for the
//! `(dataset, model, scale, seed)` world skips training entirely (the
//! decoded model scores bit-identically to the trained one, so the
//! byte-equality guarantee is unchanged); a miss trains as before and
//! persists the artifacts so the *next* process warm-starts. `/metrics`
//! reports hits, misses, and cumulative load latency.

use crate::http::HttpError;
use certa_cluster::Partition;
use certa_core::{lockcheck, BoxedMatcher, Dataset, Record, Side};
use certa_datagen::{generate, DatasetId, Scale};
use certa_explain::{Certa, CertaConfig};
use certa_models::{
    fine_tune_model, train_model, CacheStats, CachingMatcher, ErModel, ModelKind, TrainConfig,
};
use certa_store::{
    build_signature, decode_er_model, peek_model_kind, ModelSignature, ModelStore, Repository,
};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Which serving core handles sockets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeMode {
    /// Nonblocking epoll reactor: one event thread owns every socket,
    /// CPU work runs on the worker pool, connections never pin threads.
    /// Supports pipelining, idle timeouts, per-tenant rate limits, and
    /// chunked streaming. The default.
    Event,
    /// The PR-3 worker-per-connection core: each accepted connection holds
    /// a blocking worker thread for its whole keep-alive lifetime. Kept as
    /// the baseline the load harness measures the reactor against.
    Threaded,
}

impl std::str::FromStr for ServeMode {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "event" => Ok(ServeMode::Event),
            "threaded" => Ok(ServeMode::Threaded),
            other => Err(format!("unknown serve mode `{other}` (event|threaded)")),
        }
    }
}

impl std::fmt::Display for ServeMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ServeMode::Event => "event",
            ServeMode::Threaded => "threaded",
        })
    }
}

/// How first-touch resolution treats a store miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferMode {
    /// A store miss trains cold (the pre-repository behaviour). Default.
    Off,
    /// A store miss first searches the repository index for the nearest
    /// stored model (by dataset-signature similarity) above
    /// [`ServeConfig::transfer_floor`] and, when one exists in the same
    /// family, warm-starts by fine-tuning from its persisted weights
    /// instead of a cold init. The result is persisted signed, so the
    /// next process gets a plain store hit.
    Nearest,
}

impl std::str::FromStr for TransferMode {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "off" => Ok(TransferMode::Off),
            "nearest" => Ok(TransferMode::Nearest),
            other => Err(format!("unknown transfer mode `{other}` (off|nearest)")),
        }
    }
}

impl std::fmt::Display for TransferMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TransferMode::Off => "off",
            TransferMode::Nearest => "nearest",
        })
    }
}

/// Serving configuration (model world + HTTP tunables).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Socket core: event-driven reactor (default) or the legacy
    /// worker-per-connection pool.
    pub mode: ServeMode,
    /// Dataset scale every registry entry is generated at.
    pub scale: Scale,
    /// Master seed: dataset generation, training, and CERTA's candidate
    /// scans all derive from it, so `(scale, seed, tau)` pins every byte of
    /// every response.
    pub seed: u64,
    /// CERTA triangle budget τ.
    pub tau: usize,
    /// Worker threads inside one explanation (1 = sequential per request;
    /// request-level parallelism comes from the HTTP worker pool).
    pub explain_workers: usize,
    /// HTTP worker threads (0 = one per available core).
    pub http_workers: usize,
    /// Bound on queued connections before the accept loop answers `503`.
    pub queue_depth: usize,
    /// Bound on request bodies (`413` beyond it).
    pub max_body_bytes: usize,
    /// Per-read socket timeout; idle keep-alive connections are dropped
    /// after it so they cannot pin workers forever.
    pub read_timeout: Duration,
    /// Maximum pipelined requests queued per connection before the reactor
    /// stops reading from that socket (TCP backpressure; the overflow is
    /// visible in `certa_serve_conn_pipeline_overflows_total`).
    pub max_pipeline: usize,
    /// Per-tenant admission rate in requests/second (0 disables limiting).
    /// Tenants are identified by the `x-tenant` header (absent = the
    /// `"default"` tenant); beyond the budget requests get a structured
    /// `429`.
    pub tenant_rps: u64,
    /// Per-tenant burst allowance in requests (token-bucket capacity).
    pub tenant_burst: u64,
    /// Bodies larger than this stream as `Transfer-Encoding: chunked` to
    /// HTTP/1.1 clients (large batch explanations don't need one giant
    /// contiguous write). The bytes after de-chunking are identical to the
    /// Content-Length framing, so the byte-equality gate is unaffected.
    pub stream_chunk_bytes: usize,
    /// Warm-start directory: when set, first-touch resolution tries
    /// `certa-store` artifacts for the `(dataset, model, scale, seed)`
    /// world before generating + training, and persists freshly trained
    /// entries back (load-or-train-then-persist). `None` keeps the PR-3
    /// train-on-first-request behaviour.
    pub store_dir: Option<PathBuf>,
    /// Store-miss strategy: [`TransferMode::Nearest`] warm-starts from the
    /// nearest stored model instead of always training cold. Only
    /// meaningful with a `store_dir`.
    pub transfer: TransferMode,
    /// Minimum dataset-signature similarity for a stored model to qualify
    /// as a warm-start donor. Sibling seeds of one generator family land
    /// around 0.4; unrelated schemas score 0.
    pub transfer_floor: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            mode: ServeMode::Event,
            scale: Scale::Smoke,
            seed: 7,
            tau: 100,
            explain_workers: 1,
            http_workers: 0,
            queue_depth: 512,
            max_body_bytes: crate::http::DEFAULT_MAX_BODY_BYTES,
            read_timeout: Duration::from_secs(5),
            max_pipeline: 64,
            tenant_rps: 0,
            tenant_burst: 32,
            stream_chunk_bytes: 64 * 1024,
            store_dir: None,
            transfer: TransferMode::Off,
            transfer_floor: 0.25,
        }
    }
}

impl ServeConfig {
    /// The CERTA configuration served entries use — the same formula the
    /// evaluation grid's `GridConfig::certa_config()` applies, so server
    /// responses are byte-comparable against in-process runs with the same
    /// `(seed, tau)`.
    pub fn certa_config(&self) -> CertaConfig {
        CertaConfig::default()
            .with_triangles(self.tau)
            .with_seed(self.seed)
            .with_workers(self.explain_workers.max(1))
    }

    /// Effective HTTP worker-pool size.
    pub fn effective_http_workers(&self) -> usize {
        if self.http_workers > 0 {
            self.http_workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// One resolved `"<dataset>/<model>"`: the generated dataset, the trained
/// matcher behind its score cache, and the configured explainer.
pub struct ModelEntry {
    /// Canonical name (`"FZ/DeepMatcher"`).
    pub name: String,
    /// Which benchmark dataset.
    pub dataset_id: DatasetId,
    /// Which model family.
    pub kind: ModelKind,
    /// The generated dataset (perturbation donors, id lookups).
    pub dataset: Dataset,
    /// The trained model itself (featurizer-memo statistics live here).
    pub model: Arc<ErModel>,
    /// The sharded score cache wrapping the trained matcher.
    pub cache: Arc<CachingMatcher>,
    /// The CERTA explainer for this entry.
    pub certa: Certa,
}

impl ModelEntry {
    /// The cached matcher as a [`BoxedMatcher`].
    pub fn matcher(&self) -> BoxedMatcher {
        Arc::clone(&self.cache) as BoxedMatcher
    }

    /// Resolve one request-side record: inline records pass through,
    /// id references look up the named table.
    pub fn resolve_record<'a>(
        &'a self,
        dto: &'a crate::wire::RecordDto,
        side: Side,
        field: &str,
    ) -> Result<&'a Record, HttpError> {
        match dto {
            crate::wire::RecordDto::Inline(r) => {
                let arity = self.dataset.table(side).schema().arity();
                if r.arity() != arity {
                    return Err(HttpError::bad_request(
                        "arity_mismatch",
                        format!(
                            "field `{field}`: record has {} values but the {} table of {} has {arity} attributes",
                            r.arity(),
                            match side {
                                Side::Left => "left",
                                Side::Right => "right",
                            },
                            self.dataset_id,
                        ),
                    ));
                }
                Ok(r)
            }
            crate::wire::RecordDto::ById(id) => {
                self.dataset.table(side).get(*id).map_err(|_| HttpError {
                    status: 404,
                    code: "unknown_record",
                    message: format!(
                        "field `{field}`: no record {id} in the {} table of {}",
                        match side {
                            Side::Left => "left",
                            Side::Right => "right",
                        },
                        self.dataset_id,
                    ),
                    keep_alive: true,
                })
            }
        }
    }
}

type EntrySlot = Arc<OnceLock<Arc<ModelEntry>>>;

/// One clustered partition held for `/v1/entity` lookups: the result of the
/// latest `POST /v1/cluster` run for a model (or a warm-started artifact).
pub struct PartitionEntry {
    /// The resolved entities.
    pub partition: Arc<Partition>,
    /// Which clusterer produced it (`"connected-components"`, …).
    pub clusterer: String,
    /// The match threshold it was clustered at.
    pub threshold: f64,
}

/// Store-effectiveness counters for the warm-start path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Entries materialized by loading persisted artifacts.
    pub hits: u64,
    /// Entries that had to be trained (then persisted, when a store is
    /// configured).
    pub misses: u64,
    /// Cumulative wall time spent loading from the store, in microseconds.
    pub load_micros: u64,
    /// Best-effort persistence failures (model, dataset, or partition
    /// saves). Non-zero on a read-only or broken store directory.
    pub save_errors: u64,
}

/// Quality record of one nearest-model transfer, per canonical model name.
#[derive(Debug, Clone, Copy)]
struct TransferQuality {
    /// Signature similarity between the target dataset and the donor.
    similarity: f64,
    /// Test-split F1 of the fine-tuned (served) model.
    tuned_f1: f64,
    /// `tuned_f1` minus the test-split F1 of the shadow cold-trained
    /// baseline — negative means the transfer cost quality.
    delta: f64,
}

/// Transfer-mode state behind one lock: the lazily scanned repository
/// index plus per-model quality records for `/metrics`.
#[derive(Default)]
struct TransferState {
    /// `None` until the first transfer attempt scans the store (and again
    /// after [`Registry::reload`] invalidates it).
    repo: Option<Repository>,
    quality: BTreeMap<String, TransferQuality>,
}

/// Lazy, memoized name → [`ModelEntry`] resolution.
pub struct Registry {
    config: ServeConfig,
    /// The warm-start store, when `config.store_dir` is set.
    store: Option<ModelStore>,
    // BTreeMap so `/v1/models` and `/metrics` list entries in stable order.
    //
    // Concurrency: this map lock guards only slot lookup/insertion — an
    // O(log n) map operation. Entry *materialization* (store load or
    // generate+train, both potentially seconds) happens outside it, inside
    // the slot's per-entry `OnceLock` initializer, so first-touch requests
    // for different models build in parallel and only same-name racers
    // block on one training. Pinned by
    // `distinct_models_materialize_in_parallel` below.
    entries: Mutex<BTreeMap<String, EntrySlot>>,
    // Latest partition per canonical model name, for `/v1/entity` lookups.
    // Same-rank key 1 keeps lockcheck's (rank, key) order distinct from the
    // entries map (key 0); neither lock is ever held while acquiring the
    // other.
    partitions: Mutex<BTreeMap<String, Arc<PartitionEntry>>>,
    // Repository index + transfer quality records (same-rank key 2; never
    // held while acquiring the entries or partitions locks).
    transfer: Mutex<TransferState>,
    store_hits: AtomicU64,
    store_misses: AtomicU64,
    store_load_micros: AtomicU64,
    store_save_errors: AtomicU64,
    transfer_hits: AtomicU64,
    transfer_misses: AtomicU64,
    block_requests: AtomicU64,
    block_candidates: AtomicU64,
    cluster_requests: AtomicU64,
    cluster_entities: AtomicU64,
    entity_lookups: AtomicU64,
}

impl Registry {
    /// An empty registry serving the given configuration.
    pub fn new(config: ServeConfig) -> Self {
        let store = config.store_dir.as_ref().map(ModelStore::new);
        Registry {
            config,
            store,
            entries: Mutex::new(BTreeMap::new()),
            partitions: Mutex::new(BTreeMap::new()),
            transfer: Mutex::new(TransferState::default()),
            store_hits: AtomicU64::new(0),
            store_misses: AtomicU64::new(0),
            store_load_micros: AtomicU64::new(0),
            store_save_errors: AtomicU64::new(0),
            transfer_hits: AtomicU64::new(0),
            transfer_misses: AtomicU64::new(0),
            block_requests: AtomicU64::new(0),
            block_candidates: AtomicU64::new(0),
            cluster_requests: AtomicU64::new(0),
            cluster_entities: AtomicU64::new(0),
            entity_lookups: AtomicU64::new(0),
        }
    }

    /// Account one `/v1/block` run and the candidates it generated.
    pub fn record_block(&self, candidates: usize) {
        self.block_requests.fetch_add(1, Ordering::Relaxed);
        self.block_candidates
            .fetch_add(candidates as u64, Ordering::Relaxed);
    }

    /// `(runs, total candidates)` accounted by [`Registry::record_block`].
    pub fn block_stats(&self) -> (u64, u64) {
        (
            self.block_requests.load(Ordering::Relaxed),
            self.block_candidates.load(Ordering::Relaxed),
        )
    }

    /// Account one `/v1/cluster` run, hold its partition for `/v1/entity`
    /// lookups, and (with a `--store-dir`) persist it so the *next* process
    /// warm-starts entity lookups without re-clustering. Persistence is
    /// best-effort, like model persistence: a read-only store directory
    /// never fails the request.
    pub fn record_cluster(
        &self,
        entry: &ModelEntry,
        partition: Arc<Partition>,
        clusterer: &str,
        threshold: f64,
    ) {
        self.cluster_requests.fetch_add(1, Ordering::Relaxed);
        self.cluster_entities
            .fetch_add(partition.len() as u64, Ordering::Relaxed);
        if let Some(store) = &self.store {
            let (scale, seed) = (self.config.scale, self.config.seed);
            if let Err(e) = store.save_partition(
                entry.dataset_id,
                entry.kind,
                scale,
                seed,
                &partition,
                clusterer,
                threshold,
            ) {
                self.store_save_errors.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "certa-serve: could not persist partition for {} to {}: {e}",
                    entry.name,
                    store.dir().display()
                );
            }
        }
        let stored = Arc::new(PartitionEntry {
            partition,
            clusterer: clusterer.to_string(),
            threshold,
        });
        let owner = self as *const Registry as usize;
        let _held = lockcheck::acquire(owner, lockcheck::rank::SHARD, 1);
        self.partitions.lock().insert(entry.name.clone(), stored);
    }

    /// The partition serving `/v1/entity` for a model: the latest
    /// `/v1/cluster` result, or — on a fresh process with a `--store-dir` —
    /// a verified persisted partition for this `(dataset, model, scale,
    /// seed)` world. `None` until either exists.
    pub fn partition_for(&self, entry: &ModelEntry) -> Option<Arc<PartitionEntry>> {
        self.entity_lookups.fetch_add(1, Ordering::Relaxed);
        let owner = self as *const Registry as usize;
        {
            let _held = lockcheck::acquire(owner, lockcheck::rank::SHARD, 1);
            if let Some(found) = self.partitions.lock().get(&entry.name) {
                return Some(Arc::clone(found));
            }
        }
        // Warm-start path: decode outside the map lock (it is real work),
        // then publish. A concurrent `/v1/cluster` run wins any race —
        // fresher than the persisted artifact by construction.
        let store = self.store.as_ref()?;
        let (scale, seed) = (self.config.scale, self.config.seed);
        let t0 = Instant::now();
        let loaded = store
            .load_partition(entry.dataset_id, entry.kind, scale, seed)
            .ok()?;
        self.store_load_micros
            .fetch_add(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
        let stored = Arc::new(PartitionEntry {
            partition: Arc::new(loaded.partition),
            clusterer: loaded.clusterer,
            threshold: loaded.threshold,
        });
        let _held = lockcheck::acquire(owner, lockcheck::rank::SHARD, 1);
        Some(Arc::clone(
            self.partitions
                .lock()
                .entry(entry.name.clone())
                .or_insert(stored),
        ))
    }

    /// `(cluster runs, total entities resolved, entity lookups)` accounted
    /// by [`Registry::record_cluster`] / [`Registry::partition_for`].
    pub fn cluster_stats(&self) -> (u64, u64, u64) {
        (
            self.cluster_requests.load(Ordering::Relaxed),
            self.cluster_entities.load(Ordering::Relaxed),
            self.entity_lookups.load(Ordering::Relaxed),
        )
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Warm-start counters (all zero when no store is configured).
    pub fn store_stats(&self) -> StoreStats {
        StoreStats {
            hits: self.store_hits.load(Ordering::Relaxed),
            misses: self.store_misses.load(Ordering::Relaxed),
            load_micros: self.store_load_micros.load(Ordering::Relaxed),
            save_errors: self.store_save_errors.load(Ordering::Relaxed),
        }
    }

    /// `(transfer hits, transfer misses)` accounted by the
    /// `--transfer nearest` path. Both zero with [`TransferMode::Off`].
    pub fn transfer_stats(&self) -> (u64, u64) {
        (
            self.transfer_hits.load(Ordering::Relaxed),
            self.transfer_misses.load(Ordering::Relaxed),
        )
    }

    /// Parse and canonicalize a `"<dataset>/<model>"` name.
    pub fn canonical_name(name: &str) -> Result<(DatasetId, ModelKind), HttpError> {
        let (ds, model) = name.split_once('/').ok_or_else(|| {
            HttpError::bad_request(
                "bad_model_name",
                format!("`{name}` is not of the form `<dataset>/<model>` (e.g. `FZ/DeepMatcher`)"),
            )
        })?;
        let dataset_id = DatasetId::from_code(ds).map_err(|e| HttpError {
            status: 404,
            code: "unknown_dataset",
            message: e,
            keep_alive: true,
        })?;
        let kind = ModelKind::from_name(model).map_err(|e| HttpError {
            status: 404,
            code: "unknown_model",
            message: e,
            keep_alive: true,
        })?;
        Ok((dataset_id, kind))
    }

    /// Resolve a name: warm-start from the store when configured, else
    /// generate + train (persisting the result for the next process).
    pub fn resolve(&self, name: &str) -> Result<Arc<ModelEntry>, HttpError> {
        self.resolve_with(name, |dataset_id, kind, canonical| {
            self.materialize(dataset_id, kind, canonical)
        })
    }

    /// Build one full entry (load-or-train, score cache, explainer) for a
    /// canonical name. Real work — always runs outside every registry lock.
    fn materialize(
        &self,
        dataset_id: DatasetId,
        kind: ModelKind,
        canonical: &str,
    ) -> Arc<ModelEntry> {
        let (dataset, model) = self.load_or_train(dataset_id, kind);
        let model = Arc::new(model);
        let cache = CachingMatcher::new(Arc::clone(&model) as BoxedMatcher);
        Arc::new(ModelEntry {
            name: canonical.to_string(),
            dataset_id,
            kind,
            dataset,
            model,
            cache,
            certa: Certa::new(self.config.certa_config()),
        })
    }

    /// Atomic registry hot-swap behind `POST /v1/reload`: re-resolve every
    /// materialized model from the store and swap the fresh entries in
    /// under one map-lock acquisition. Materialization (store load or
    /// train) happens entirely outside the locks — the same discipline as
    /// first-touch resolution — so in-flight requests keep scoring against
    /// the old entries (their `Arc`s stay alive) and never observe a
    /// half-swapped map. The repository index is invalidated first so a
    /// store directory that changed since startup is rescanned. Returns
    /// the reloaded canonical names, in order.
    pub fn reload(&self) -> Vec<String> {
        let owner = self as *const Registry as usize;
        let names: Vec<String> = {
            let _held = lockcheck::acquire(owner, lockcheck::rank::SHARD, 0);
            self.entries.lock().keys().cloned().collect()
        };
        {
            let _held = lockcheck::acquire(owner, lockcheck::rank::SHARD, 2);
            self.transfer.lock().repo = None;
        }
        let mut swapped: Vec<(String, EntrySlot)> = Vec::with_capacity(names.len());
        for name in &names {
            // Map keys are canonical by construction; skip defensively.
            let Ok((dataset_id, kind)) = Self::canonical_name(name) else {
                continue;
            };
            lockcheck::assert_none_held(owner, "reload materialization");
            let entry = self.materialize(dataset_id, kind, name);
            let slot: EntrySlot = Arc::new(OnceLock::new());
            let _ = slot.set(entry);
            swapped.push((name.clone(), slot));
        }
        {
            let _held = lockcheck::acquire(owner, lockcheck::rank::SHARD, 0);
            let mut map = self.entries.lock();
            for (name, slot) in swapped {
                map.insert(name, slot);
            }
        }
        names
    }

    /// Memoized resolution with an injected builder. The builder runs
    /// outside the registry map lock (inside the per-entry `OnceLock`
    /// initializer), so materializing one name never blocks resolution of
    /// other names — the concurrency test drives this with barrier
    /// builders to prove the property without timing assumptions.
    fn resolve_with(
        &self,
        name: &str,
        build: impl FnOnce(DatasetId, ModelKind, &str) -> Arc<ModelEntry>,
    ) -> Result<Arc<ModelEntry>, HttpError> {
        let (dataset_id, kind) = Self::canonical_name(name)?;
        let canonical = format!("{}/{}", dataset_id.code(), kind.paper_name());
        let owner = self as *const Registry as usize;
        let slot: EntrySlot = {
            let _held = lockcheck::acquire(owner, lockcheck::rank::SHARD, 0);
            let mut map = self.entries.lock();
            Arc::clone(map.entry(canonical.clone()).or_default())
        };
        // Materialization (store load or generate+train, potentially
        // seconds) must never run under the map lock — that would
        // serialize first-touch requests for *different* names.
        lockcheck::assert_none_held(owner, "entry materialization");
        let entry = slot.get_or_init(|| build(dataset_id, kind, &canonical));
        Ok(Arc::clone(entry))
    }

    /// The load-or-train-then-persist step behind first-touch resolution.
    ///
    /// A verified store pair (dataset + model artifacts for this exact
    /// `(scale, seed)` world) short-circuits generation and training; any
    /// failure — absent files, checksum mismatch, stale format version —
    /// falls back to the train path, which then persists both artifacts
    /// best-effort (a read-only store directory degrades to PR-3
    /// behaviour, it never fails the request).
    fn load_or_train(&self, dataset_id: DatasetId, kind: ModelKind) -> (Dataset, ErModel) {
        let (scale, seed) = (self.config.scale, self.config.seed);
        // Fast path: both artifacts load and verify.
        let stored_dataset = self.store.as_ref().and_then(|store| {
            let t0 = Instant::now();
            let dataset = store.load_dataset(dataset_id, scale, seed).ok()?;
            let model = store.load_model(dataset_id, kind, scale, seed);
            // Whatever actually loaded counts toward the load-latency
            // metric — on the dataset-only path the decode work was real
            // even though the entry still has to train.
            self.store_load_micros
                .fetch_add(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
            if let Ok(model) = model {
                self.store_hits.fetch_add(1, Ordering::Relaxed);
                return Some(Ok((dataset, model)));
            }
            // Dataset loaded but no valid model: train on the loaded
            // dataset (decoded datasets featurize bit-identically to
            // generated ones, so the trained weights are identical too).
            Some(Err(dataset))
        });
        let (dataset, dataset_was_stored) = match stored_dataset {
            Some(Ok(pair)) => return pair,
            Some(Err(dataset)) => {
                self.store_misses.fetch_add(1, Ordering::Relaxed);
                (dataset, true)
            }
            None => {
                if self.store.is_some() {
                    self.store_misses.fetch_add(1, Ordering::Relaxed);
                }
                (generate(dataset_id, scale, seed), false)
            }
        };
        // Store miss: with `--transfer nearest`, try warm-starting from the
        // nearest stored model before falling back to a cold train.
        if let Some(model) = self.try_transfer(dataset_id, kind, &dataset, dataset_was_stored) {
            return (dataset, model);
        }
        let (model, _report) = train_model(kind, &dataset, &TrainConfig::for_kind(kind));
        if let Some(store) = &self.store {
            let saved = if dataset_was_stored {
                store.save_model_signed(dataset_id, kind, scale, seed, &model, &dataset)
            } else {
                store
                    .save_dataset(dataset_id, scale, seed, &dataset)
                    .and_then(|_| {
                        store.save_model_signed(dataset_id, kind, scale, seed, &model, &dataset)
                    })
            };
            if let Err(e) = saved {
                self.store_save_errors.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "certa-serve: could not persist {dataset_id}/{} to {}: {e}",
                    kind.paper_name(),
                    store.dir().display()
                );
            } else if self.config.transfer == TransferMode::Nearest {
                // A cold save may postdate the repository scan; drop the
                // index so the next transfer attempt sees this artifact.
                let owner = self as *const Registry as usize;
                let _held = lockcheck::acquire(owner, lockcheck::rank::SHARD, 2);
                self.transfer.lock().repo = None;
            }
        }
        (dataset, model)
    }

    /// The `--transfer nearest` warm-start behind a store miss: rank stored
    /// models by dataset-signature similarity, and fine-tune from the
    /// nearest same-family donor above [`ServeConfig::transfer_floor`]
    /// instead of cold-initializing. The tuned model is persisted signed
    /// (so the next process gets a plain store hit) and its quality —
    /// similarity, tuned test-F1, and the delta against a shadow
    /// cold-trained baseline — lands in `/metrics`. The shadow baseline is
    /// a first-touch-only observability cost; the fine-tune speedup itself
    /// is gated by `bench_repo` on the trainer entry points directly.
    ///
    /// Returns `None` (counting a transfer miss) when the mode is off, no
    /// store is configured, or no qualifying donor fine-tunes successfully.
    fn try_transfer(
        &self,
        dataset_id: DatasetId,
        kind: ModelKind,
        dataset: &Dataset,
        dataset_was_stored: bool,
    ) -> Option<ErModel> {
        if self.config.transfer != TransferMode::Nearest {
            return None;
        }
        let store = self.store.as_ref()?;
        let (scale, seed) = (self.config.scale, self.config.seed);
        let canonical = format!("{}/{}", dataset_id.code(), kind.paper_name());
        let query = build_signature(dataset, 1);
        let owner = self as *const Registry as usize;
        // Scan outside the transfer lock (it reads every model artifact's
        // signature section), then install the index if still absent.
        let held = {
            let _held = lockcheck::acquire(owner, lockcheck::rank::SHARD, 2);
            self.transfer.lock().repo.clone()
        };
        let snapshot = match held {
            Some(repo) => repo,
            None => {
                let scanned = Repository::scan(store).unwrap_or_default();
                let _held = lockcheck::acquire(owner, lockcheck::rank::SHARD, 2);
                self.transfer.lock().repo.get_or_insert(scanned).clone()
            }
        };
        let candidates: Vec<(f64, PathBuf)> = snapshot
            .nearest(&query, snapshot.len())
            .into_iter()
            .filter(|(sim, _)| *sim >= self.config.transfer_floor)
            .map(|(sim, e)| (sim, e.path.clone()))
            .collect();
        for (similarity, path) in candidates {
            let Ok(bytes) = std::fs::read(&path) else {
                continue;
            };
            // Cheap family gate before decoding any weights.
            if peek_model_kind(&bytes) != Ok(kind) {
                continue;
            }
            let Ok(base) = decode_er_model(&bytes) else {
                continue;
            };
            let cfg = TrainConfig::for_kind(kind);
            let Some((tuned, report)) = fine_tune_model(kind, dataset, &base, &cfg) else {
                continue;
            };
            let (_, cold) = train_model(kind, dataset, &cfg);
            let quality = TransferQuality {
                similarity,
                tuned_f1: report.test_f1,
                delta: report.test_f1 - cold.test_f1,
            };
            self.transfer_hits.fetch_add(1, Ordering::Relaxed);
            if !dataset_was_stored {
                if let Err(e) = store.save_dataset(dataset_id, scale, seed, dataset) {
                    self.store_save_errors.fetch_add(1, Ordering::Relaxed);
                    eprintln!(
                        "certa-serve: could not persist {dataset_id} dataset to {}: {e}",
                        store.dir().display()
                    );
                }
            }
            let saved = store.save_model_signed(dataset_id, kind, scale, seed, &tuned, dataset);
            {
                let _held = lockcheck::acquire(owner, lockcheck::rank::SHARD, 2);
                let mut t = self.transfer.lock();
                match &saved {
                    Ok(at) => {
                        if let Some(repo) = &mut t.repo {
                            repo.add(
                                at.clone(),
                                ModelSignature {
                                    dataset: dataset_id.code().to_string(),
                                    scale: scale.to_string(),
                                    seed,
                                    signature: query.clone(),
                                },
                            );
                        }
                    }
                    Err(_) => t.repo = None,
                }
                t.quality.insert(canonical.clone(), quality);
            }
            if let Err(e) = saved {
                self.store_save_errors.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "certa-serve: could not persist transferred {canonical} to {}: {e}",
                    store.dir().display()
                );
            }
            return Some(tuned);
        }
        self.transfer_misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Snapshot of the resolved entries, in name order.
    pub fn loaded(&self) -> Vec<Arc<ModelEntry>> {
        self.entries
            .lock()
            .values()
            .filter_map(|slot| slot.get().cloned())
            .collect()
    }

    /// Per-model cache-effectiveness lines for the `/metrics` exposition.
    pub fn cache_metric_lines(&self) -> String {
        let mut out = String::new();
        let loaded = self.loaded();
        if loaded.is_empty() {
            return out;
        }
        out.push_str("# TYPE certa_serve_cache_hits_total counter\n");
        let stats: Vec<(String, CacheStats, usize)> = loaded
            .iter()
            .map(|e| (e.name.clone(), e.cache.stats(), e.cache.len()))
            .collect();
        for (name, s, _) in &stats {
            out.push_str(&format!(
                "certa_serve_cache_hits_total{{model=\"{name}\"}} {}\n",
                s.hits
            ));
        }
        out.push_str("# TYPE certa_serve_cache_misses_total counter\n");
        for (name, s, _) in &stats {
            out.push_str(&format!(
                "certa_serve_cache_misses_total{{model=\"{name}\"}} {}\n",
                s.misses
            ));
        }
        out.push_str("# TYPE certa_serve_cache_entries gauge\n");
        for (name, _, len) in &stats {
            out.push_str(&format!(
                "certa_serve_cache_entries{{model=\"{name}\"}} {len}\n"
            ));
        }
        // Featurizer-memo effectiveness (per-value featurization artifacts),
        // next to the score-cache counters it composes with.
        let memo: Vec<(String, CacheStats, usize)> = loaded
            .iter()
            .map(|e| (e.name.clone(), e.model.memo_stats(), e.model.memo_len()))
            .collect();
        out.push_str("# TYPE certa_serve_featurizer_memo_hits_total counter\n");
        for (name, s, _) in &memo {
            out.push_str(&format!(
                "certa_serve_featurizer_memo_hits_total{{model=\"{name}\"}} {}\n",
                s.hits
            ));
        }
        out.push_str("# TYPE certa_serve_featurizer_memo_misses_total counter\n");
        for (name, s, _) in &memo {
            out.push_str(&format!(
                "certa_serve_featurizer_memo_misses_total{{model=\"{name}\"}} {}\n",
                s.misses
            ));
        }
        out.push_str("# TYPE certa_serve_featurizer_memo_entries gauge\n");
        for (name, _, len) in &memo {
            out.push_str(&format!(
                "certa_serve_featurizer_memo_entries{{model=\"{name}\"}} {len}\n"
            ));
        }
        out.push_str(&self.store_metric_lines());
        out.push_str(&self.transfer_metric_lines());
        out.push_str(&self.block_metric_lines());
        out.push_str(&self.cluster_metric_lines());
        out
    }

    /// Blocking-layer lines for the `/metrics` exposition: how many
    /// candidate-generation runs the server has performed and how many
    /// candidate pairs they produced in total.
    pub fn block_metric_lines(&self) -> String {
        let (runs, candidates) = self.block_stats();
        let mut out = String::new();
        out.push_str("# TYPE certa_serve_block_runs_total counter\n");
        out.push_str(&format!("certa_serve_block_runs_total {runs}\n"));
        out.push_str("# TYPE certa_serve_block_candidates_total counter\n");
        out.push_str(&format!(
            "certa_serve_block_candidates_total {candidates}\n"
        ));
        out
    }

    /// Clustering-layer lines for the `/metrics` exposition: `/v1/cluster`
    /// runs, entities they resolved, `/v1/entity` lookups, and a per-model
    /// gauge of the partition currently held for lookups.
    pub fn cluster_metric_lines(&self) -> String {
        let (runs, entities, lookups) = self.cluster_stats();
        let mut out = String::new();
        out.push_str("# TYPE certa_serve_cluster_runs_total counter\n");
        out.push_str(&format!("certa_serve_cluster_runs_total {runs}\n"));
        out.push_str("# TYPE certa_serve_cluster_entities_total counter\n");
        out.push_str(&format!("certa_serve_cluster_entities_total {entities}\n"));
        out.push_str("# TYPE certa_serve_cluster_entity_lookups_total counter\n");
        out.push_str(&format!(
            "certa_serve_cluster_entity_lookups_total {lookups}\n"
        ));
        let held: Vec<(String, usize)> = {
            let owner = self as *const Registry as usize;
            let _held = lockcheck::acquire(owner, lockcheck::rank::SHARD, 1);
            self.partitions
                .lock()
                .iter()
                .map(|(name, p)| (name.clone(), p.partition.len()))
                .collect()
        };
        if !held.is_empty() {
            out.push_str("# TYPE certa_serve_cluster_partition_entities gauge\n");
            for (name, len) in &held {
                out.push_str(&format!(
                    "certa_serve_cluster_partition_entities{{model=\"{name}\"}} {len}\n"
                ));
            }
        }
        out
    }

    /// Warm-start effectiveness lines for the `/metrics` exposition:
    /// store hits/misses and cumulative load latency. Emitted whenever any
    /// entry has been materialized (zeros without a `--store-dir`, so
    /// dashboards can tell "no store" from "store never hit").
    pub fn store_metric_lines(&self) -> String {
        let stats = self.store_stats();
        let mut out = String::new();
        out.push_str("# TYPE certa_serve_store_hits_total counter\n");
        out.push_str(&format!("certa_serve_store_hits_total {}\n", stats.hits));
        out.push_str("# TYPE certa_serve_store_misses_total counter\n");
        out.push_str(&format!(
            "certa_serve_store_misses_total {}\n",
            stats.misses
        ));
        out.push_str("# TYPE certa_serve_store_load_seconds_total counter\n");
        // certa-lint: allow(no-float-format) — monitoring counter, not byte-compared wire output; f64 Display is shortest-round-trip
        out.push_str(&format!(
            "certa_serve_store_load_seconds_total {}\n",
            stats.load_micros as f64 / 1e6
        ));
        out.push_str("# TYPE certa_serve_store_save_errors_total counter\n");
        out.push_str(&format!(
            "certa_serve_store_save_errors_total {}\n",
            stats.save_errors
        ));
        out
    }

    /// Transfer-mode lines for the `/metrics` exposition: hit/miss
    /// counters plus, per transferred model, the donor similarity, the
    /// tuned test-F1, and the quality delta against the shadow
    /// cold-trained baseline (negative = the transfer cost quality).
    pub fn transfer_metric_lines(&self) -> String {
        let (hits, misses) = self.transfer_stats();
        let mut out = String::new();
        out.push_str("# TYPE certa_serve_transfer_hits_total counter\n");
        out.push_str(&format!("certa_serve_transfer_hits_total {hits}\n"));
        out.push_str("# TYPE certa_serve_transfer_misses_total counter\n");
        out.push_str(&format!("certa_serve_transfer_misses_total {misses}\n"));
        let quality: Vec<(String, TransferQuality)> = {
            let owner = self as *const Registry as usize;
            let _held = lockcheck::acquire(owner, lockcheck::rank::SHARD, 2);
            self.transfer
                .lock()
                .quality
                .iter()
                .map(|(name, q)| (name.clone(), *q))
                .collect()
        };
        if !quality.is_empty() {
            out.push_str("# TYPE certa_serve_transfer_similarity gauge\n");
            for (name, q) in &quality {
                // certa-lint: allow(no-float-format) — monitoring gauge, not byte-compared wire output; f64 Display is shortest-round-trip
                out.push_str(&format!(
                    "certa_serve_transfer_similarity{{model=\"{name}\"}} {}\n",
                    q.similarity
                ));
            }
            out.push_str("# TYPE certa_serve_transfer_test_f1 gauge\n");
            for (name, q) in &quality {
                // certa-lint: allow(no-float-format) — monitoring gauge, not byte-compared wire output; f64 Display is shortest-round-trip
                out.push_str(&format!(
                    "certa_serve_transfer_test_f1{{model=\"{name}\"}} {}\n",
                    q.tuned_f1
                ));
            }
            out.push_str("# TYPE certa_serve_transfer_f1_delta gauge\n");
            for (name, q) in &quality {
                // certa-lint: allow(no-float-format) — monitoring gauge, not byte-compared wire output; f64 Display is shortest-round-trip
                out.push_str(&format!(
                    "certa_serve_transfer_f1_delta{{model=\"{name}\"}} {}\n",
                    q.delta
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::RecordDto;
    use certa_core::{Matcher, RecordId};

    #[test]
    fn canonical_names_parse_and_reject() {
        let (ds, kind) = Registry::canonical_name("fz/deepmatcher").unwrap();
        assert_eq!((ds, kind), (DatasetId::FZ, ModelKind::DeepMatcher));
        let (ds, kind) = Registry::canonical_name("DDA/ditto-sim").unwrap();
        assert_eq!((ds, kind), (DatasetId::DDA, ModelKind::Ditto));
        assert_eq!(
            Registry::canonical_name("no-slash").unwrap_err().status,
            400
        );
        assert_eq!(
            Registry::canonical_name("XX/Ditto").unwrap_err().status,
            404
        );
        assert_eq!(Registry::canonical_name("FZ/gpt").unwrap_err().status, 404);
    }

    #[test]
    fn resolve_trains_once_and_canonicalizes_aliases() {
        let registry = Registry::new(ServeConfig::default());
        assert!(registry.loaded().is_empty());
        let a = registry.resolve("FZ/DeepMatcher").unwrap();
        // Case/alias variants land on the same memoized entry.
        let b = registry.resolve("fz/deepmatcher-sim").unwrap();
        assert!(Arc::ptr_eq(&a, &b), "aliases must share one entry");
        assert_eq!(a.name, "FZ/DeepMatcher");
        assert_eq!(registry.loaded().len(), 1);

        // The entry scores and its cache counts traffic.
        let u = a.dataset.left().records()[0].clone();
        let v = a.dataset.right().records()[0].clone();
        let s1 = a.matcher().score(&u, &v);
        let s2 = a.matcher().score(&u, &v);
        assert_eq!(s1, s2);
        let stats = a.cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        let lines = registry.cache_metric_lines();
        assert!(lines.contains("cache_hits_total{model=\"FZ/DeepMatcher\"} 1"));
        // The featurizer memo saw exactly one uncached scoring pass.
        let memo = a.model.memo_stats();
        assert!(memo.misses > 0, "memo populated by the cold score");
        assert!(lines.contains("featurizer_memo_misses_total{model=\"FZ/DeepMatcher\"}"));
        assert!(lines.contains("featurizer_memo_hits_total{model=\"FZ/DeepMatcher\"}"));
        assert!(lines.contains("featurizer_memo_entries{model=\"FZ/DeepMatcher\"}"));
    }

    /// Unique-per-test temp dir (std-only; no tempfile crate in-tree).
    fn temp_dir(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::AtomicU32;
        static NEXT: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "certa-serve-test-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn warm_start_loads_instead_of_training() {
        let dir = temp_dir("warmstart");
        let config = ServeConfig {
            store_dir: Some(dir.clone()),
            ..ServeConfig::default()
        };

        // Cold process: trains, persists, counts a miss.
        let cold = Registry::new(config.clone());
        let entry = cold.resolve("FZ/DeepMatcher").unwrap();
        let stats = cold.store_stats();
        assert_eq!((stats.hits, stats.misses), (0, 1));
        assert!(
            ModelStore::new(&dir).list().unwrap().len() >= 2,
            "dataset + model artifacts persisted"
        );
        let u = entry.dataset.left().records()[0].clone();
        let v = entry.dataset.right().records()[0].clone();
        let cold_score = entry.matcher().score(&u, &v);

        // "Restarted" process: same config, fresh registry — must load.
        let warm = Registry::new(config);
        let entry2 = warm.resolve("FZ/DeepMatcher").unwrap();
        let stats = warm.store_stats();
        assert_eq!((stats.hits, stats.misses), (1, 0), "no retraining");
        let warm_score = entry2.matcher().score(&u, &v);
        assert_eq!(warm_score.to_bits(), cold_score.to_bits());
        let lines = warm.cache_metric_lines();
        assert!(lines.contains("certa_serve_store_hits_total 1"), "{lines}");
        assert!(
            lines.contains("certa_serve_store_load_seconds_total"),
            "{lines}"
        );

        // A missing model for a loaded dataset trains without re-saving
        // the dataset, and subsequent restarts hit both artifacts.
        let entry3 = warm.resolve("FZ/Ditto").unwrap();
        assert_eq!(entry3.kind, ModelKind::Ditto);
        assert_eq!(warm.store_stats().misses, 1);
        let third = Registry::new(warm.config().clone());
        third.resolve("FZ/Ditto").unwrap();
        assert_eq!(third.store_stats().hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn partitions_warm_start_from_the_store() {
        use certa_cluster::ClusterNode;
        let dir = temp_dir("partition");
        let config = ServeConfig {
            store_dir: Some(dir.clone()),
            ..ServeConfig::default()
        };
        let cold = Registry::new(config.clone());
        let entry = cold.resolve("FZ/Ditto").unwrap();
        assert!(
            cold.partition_for(&entry).is_none(),
            "nothing clustered yet"
        );
        let partition = Arc::new(Partition::new(vec![
            vec![ClusterNode::left(0), ClusterNode::right(0)],
            vec![ClusterNode::left(1)],
        ]));
        cold.record_cluster(&entry, Arc::clone(&partition), "connected-components", 0.5);
        assert_eq!(cold.cluster_stats(), (1, 2, 1));
        assert!(
            cold.partition_for(&entry).is_some(),
            "held for this process"
        );

        // "Restarted" process: the persisted partition serves lookups
        // without a fresh `/v1/cluster` run.
        let warm = Registry::new(config);
        let entry = warm.resolve("FZ/Ditto").unwrap();
        let held = warm.partition_for(&entry).expect("persisted partition");
        assert_eq!(*held.partition, *partition);
        assert_eq!(held.clusterer, "connected-components");
        assert_eq!(held.threshold, 0.5);
        let lines = warm.cluster_metric_lines();
        assert!(
            lines.contains("certa_serve_cluster_partition_entities{model=\"FZ/Ditto\"} 2"),
            "{lines}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_store_degrades_to_training() {
        // A store path that cannot be created (a *file* occupies it).
        let dir = temp_dir("unwritable");
        std::fs::create_dir_all(dir.parent().unwrap()).unwrap();
        std::fs::write(&dir, b"not a directory").unwrap();
        let registry = Registry::new(ServeConfig {
            store_dir: Some(dir.clone()),
            ..ServeConfig::default()
        });
        let entry = registry.resolve("FZ/DeepMatcher").unwrap();
        let u = entry.dataset.left().records()[0].clone();
        let v = entry.dataset.right().records()[0].clone();
        assert!((0.0..=1.0).contains(&entry.matcher().score(&u, &v)));
        assert_eq!(registry.store_stats().misses, 1);
        // The failed best-effort persist is counted, not just logged: the
        // dataset save fails first and short-circuits the model save.
        assert_eq!(registry.store_stats().save_errors, 1);
        let lines = registry.store_metric_lines();
        assert!(
            lines.contains("certa_serve_store_save_errors_total 1"),
            "{lines}"
        );
        let _ = std::fs::remove_file(&dir);
    }

    #[test]
    fn transfer_warm_starts_from_a_sibling_seed() {
        let dir = temp_dir("transfer");
        // Another process stored a *signed* FZ model for a sibling seed.
        let donor_seed = ServeConfig::default().seed + 1;
        let store = ModelStore::new(&dir);
        let d = generate(DatasetId::FZ, Scale::Smoke, donor_seed);
        let kind = ModelKind::DeepMatcher;
        let (donor, _) = train_model(kind, &d, &TrainConfig::for_kind(kind));
        store
            .save_model_signed(DatasetId::FZ, kind, Scale::Smoke, donor_seed, &donor, &d)
            .unwrap();

        let config = ServeConfig {
            store_dir: Some(dir.clone()),
            transfer: TransferMode::Nearest,
            ..ServeConfig::default()
        };
        let registry = Registry::new(config.clone());
        let entry = registry.resolve("FZ/DeepMatcher").unwrap();
        assert_eq!(
            registry.transfer_stats(),
            (1, 0),
            "sibling donor fine-tuned"
        );
        assert_eq!(registry.store_stats().misses, 1, "still a store miss");
        assert_eq!(registry.store_stats().save_errors, 0);
        let lines = registry.cache_metric_lines();
        assert!(
            lines.contains("certa_serve_transfer_hits_total 1"),
            "{lines}"
        );
        assert!(
            lines.contains("certa_serve_transfer_misses_total 0"),
            "{lines}"
        );
        assert!(
            lines.contains("certa_serve_transfer_similarity{model=\"FZ/DeepMatcher\"}"),
            "{lines}"
        );
        assert!(
            lines.contains("certa_serve_transfer_test_f1{model=\"FZ/DeepMatcher\"}"),
            "{lines}"
        );
        assert!(
            lines.contains("certa_serve_transfer_f1_delta{model=\"FZ/DeepMatcher\"}"),
            "{lines}"
        );
        let u = entry.dataset.left().records()[0].clone();
        let v = entry.dataset.right().records()[0].clone();
        assert!((0.0..=1.0).contains(&entry.matcher().score(&u, &v)));

        // The tuned model was persisted signed, so a restarted process gets
        // a plain store hit and never reaches the transfer path.
        let warm = Registry::new(config.clone());
        warm.resolve("FZ/DeepMatcher").unwrap();
        assert_eq!(warm.store_stats().hits, 1);
        assert_eq!(warm.transfer_stats(), (0, 0));

        // An unrelated schema (AB ∩ FZ attribute names = ∅, similarity 0)
        // finds no donor above the floor: a transfer miss, cold train.
        let ab = Registry::new(config);
        ab.resolve("AB/DeepMatcher").unwrap();
        assert_eq!(ab.transfer_stats(), (0, 1), "no donor above the floor");
        let lines = ab.transfer_metric_lines();
        assert!(
            lines.contains("certa_serve_transfer_misses_total 1"),
            "{lines}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The registry-lock fix, proven without timing assumptions: two
    /// first-touch resolutions of *different* names run their builders
    /// concurrently — each builder blocks until it has seen the other
    /// builder start, which can only converge if neither holds a lock the
    /// other needs. (Before the fix, training inside the registry map lock
    /// would deadlock this test instead of merely slowing it down; the
    /// spin-wait below turns that deadlock into a loud failure.)
    #[test]
    fn distinct_models_materialize_in_parallel() {
        use std::sync::atomic::AtomicUsize;
        use std::time::Duration;

        let registry = Arc::new(Registry::new(ServeConfig::default()));
        let inside = Arc::new(AtomicUsize::new(0));
        let names = ["FZ/DeepMatcher", "AB/Ditto"];
        std::thread::scope(|scope| {
            let handles: Vec<_> = names
                .iter()
                .map(|name| {
                    let registry = Arc::clone(&registry);
                    let inside = Arc::clone(&inside);
                    scope.spawn(move || {
                        registry
                            .resolve_with(name, |dataset_id, kind, canonical| {
                                inside.fetch_add(1, Ordering::SeqCst);
                                // Rendezvous: wait (bounded) for the other
                                // builder to be inside its critical section.
                                let t0 = Instant::now();
                                while inside.load(Ordering::SeqCst) < 2 {
                                    assert!(
                                        t0.elapsed() < Duration::from_secs(10),
                                        "builders serialized: second first-touch \
                                         never started while the first was building"
                                    );
                                    std::thread::yield_now();
                                }
                                // Both builders are concurrently inside —
                                // the property holds; build a real entry.
                                let dataset =
                                    generate(dataset_id, Scale::Smoke, registry.config().seed);
                                let (model, _) =
                                    train_model(kind, &dataset, &TrainConfig::for_kind(kind));
                                let model = Arc::new(model);
                                let cache = CachingMatcher::new(Arc::clone(&model) as BoxedMatcher);
                                Arc::new(ModelEntry {
                                    name: canonical.to_string(),
                                    dataset_id,
                                    kind,
                                    dataset,
                                    model,
                                    cache,
                                    certa: Certa::new(registry.config().certa_config()),
                                })
                            })
                            .unwrap()
                    })
                })
                .collect();
            for h in handles {
                let entry = h.join().expect("resolution thread panicked");
                assert!(names.contains(&entry.name.as_str()));
            }
        });
        assert_eq!(inside.load(Ordering::SeqCst), 2);
        assert_eq!(registry.loaded().len(), 2);
    }

    #[test]
    fn record_resolution_checks_ids_and_arity() {
        let registry = Registry::new(ServeConfig::default());
        let entry = registry.resolve("FZ/Ditto").unwrap();
        let by_id = RecordDto::ById(RecordId(0));
        let r = entry
            .resolve_record(&by_id, Side::Left, "pair.left_id")
            .unwrap();
        assert_eq!(r.id(), RecordId(0));
        let missing = RecordDto::ById(RecordId(9_999_999));
        let err = entry
            .resolve_record(&missing, Side::Right, "pair.right_id")
            .unwrap_err();
        assert_eq!((err.status, err.code), (404, "unknown_record"));
        let bad_arity = RecordDto::Inline(Record::new(RecordId(0), vec!["only-one".into()]));
        let err = entry
            .resolve_record(&bad_arity, Side::Left, "pair.left")
            .unwrap_err();
        assert_eq!((err.status, err.code), (400, "arity_mismatch"));
        let arity = entry.dataset.left().schema().arity();
        let ok = RecordDto::Inline(Record::new(RecordId(5), vec![String::new(); arity]));
        assert!(entry.resolve_record(&ok, Side::Left, "pair.left").is_ok());
    }
}
