//! A minimal epoll reactor shim: readiness polling over raw Linux
//! syscalls, plus the tick-driven token buckets the event loop uses for
//! per-tenant admission control.
//!
//! This is the vendored-shim pattern the workspace already uses for
//! `proptest`: the subset of `mio`/`epoll` the serving core actually
//! needs, written against `libc` symbols that `std` already links — no new
//! dependencies. The surface is three types:
//!
//! - [`Poller`] — an `epoll` instance. Register file descriptors with a
//!   `u64` token and an [`Interest`]; [`Poller::wait`] blocks (bounded by
//!   a timeout) until any registered descriptor is ready and reports
//!   [`Event`]s. Level-triggered on purpose: a readiness the loop does not
//!   fully consume is simply reported again, which makes the event loop's
//!   state machine robust against partial reads/writes.
//! - [`Interest`] — which readiness directions a registration cares about.
//! - [`TenantBuckets`] — deterministic token buckets keyed by tenant name.
//!   **Clock-free by design**: refills are computed from a caller-supplied
//!   millisecond tick, never from a wall clock, so this module stays inside
//!   certa-lint's `no-nondeterminism` deny scope (the event loop reads time
//!   once per iteration and passes it down).
//!
//! Everything here is panic-free (`no-panic-path` deny scope): syscall
//! failures surface as `io::Result`, never as a crash in the thread that
//! owns every connection.

use std::collections::BTreeMap;
use std::io;
use std::os::unix::io::RawFd;

// The epoll constants the reactor uses (from the Linux UAPI; values are
// ABI-stable).
const EPOLL_CLOEXEC: i32 = 0o2000000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLLIN: u32 = 0x1;
const EPOLLOUT: u32 = 0x4;
const EPOLLERR: u32 = 0x8;
const EPOLLHUP: u32 = 0x10;
const EPOLLRDHUP: u32 = 0x2000;

/// `struct epoll_event`. x86-64 is the one ABI where the kernel expects the
/// packed (unaligned) layout; everywhere else it is naturally aligned.
#[cfg(target_arch = "x86_64")]
#[repr(C, packed)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

#[cfg(not(target_arch = "x86_64"))]
#[repr(C)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

// `std` links libc on every supported platform, so these resolve without
// adding a dependency.
extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn close(fd: i32) -> i32;
}

/// Which readiness directions a registration watches. Error/hangup
/// conditions are always reported regardless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the descriptor is readable (or the peer half-closed).
    pub readable: bool,
    /// Wake when the descriptor is writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Read + write interest.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };

    fn mask(self) -> u32 {
        let mut m = EPOLLRDHUP;
        if self.readable {
            m |= EPOLLIN;
        }
        if self.writable {
            m |= EPOLLOUT;
        }
        m
    }
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the descriptor was registered with.
    pub token: u64,
    /// Readable (includes peer half-close, so a read observes the EOF).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error or hangup condition; the owner should tear the connection
    /// down after draining.
    pub failed: bool,
}

/// An owned `epoll` instance.
#[derive(Debug)]
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    /// Create a new epoll instance (close-on-exec).
    pub fn new() -> io::Result<Poller> {
        // SAFETY: epoll_create1 has no pointer arguments.
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: i32, fd: RawFd, mask: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: mask,
            data: token,
        };
        // SAFETY: `ev` outlives the call; the kernel copies it before
        // returning. For EPOLL_CTL_DEL the kernel ignores the pointer (a
        // non-null one also satisfies pre-2.6.9 kernels).
        let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Register a descriptor under `token`.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest.mask(), token)
    }

    /// Change the interest set of a registered descriptor.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest.mask(), token)
    }

    /// Deregister a descriptor. (Closing the fd deregisters implicitly;
    /// explicit removal keeps teardown order obvious.)
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Wait for readiness, up to `timeout_ms` milliseconds (`-1` = forever,
    /// `0` = poll). Clears and refills `events`; returns how many fired.
    pub fn wait(&self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
        const MAX_EVENTS: usize = 256;
        let mut raw = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
        // SAFETY: `raw` is a valid writable buffer of MAX_EVENTS entries
        // for the duration of the call.
        let n = unsafe { epoll_wait(self.epfd, raw.as_mut_ptr(), MAX_EVENTS as i32, timeout_ms) };
        if n < 0 {
            let e = io::Error::last_os_error();
            // A signal interrupting the wait is a normal empty wakeup, not
            // a reactor failure.
            if e.kind() == io::ErrorKind::Interrupted {
                events.clear();
                return Ok(0);
            }
            return Err(e);
        }
        events.clear();
        for ev in raw.iter().take(n.max(0) as usize) {
            let (mask, token) = (ev.events, ev.data);
            events.push(Event {
                token,
                readable: mask & (EPOLLIN | EPOLLRDHUP) != 0,
                writable: mask & EPOLLOUT != 0,
                failed: mask & (EPOLLERR | EPOLLHUP) != 0,
            });
        }
        Ok(events.len())
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: we own epfd and drop it exactly once.
        unsafe {
            close(self.epfd);
        }
    }
}

/// One tenant's bucket: tokens in **milli-token** units so sub-1000-rps
/// refill rates accrue without rounding to zero.
#[derive(Debug, Clone, Copy)]
struct Bucket {
    tokens_milli: u64,
    last_refill_ms: u64,
}

/// Deterministic per-tenant token buckets, refilled from a caller-supplied
/// millisecond tick.
///
/// Each admitted request costs 1000 milli-tokens; a tenant's bucket holds
/// at most `burst * 1000` and refills at `rps` milli-tokens per
/// millisecond. With `rps == 0` limiting is disabled and every request is
/// admitted. Keyed by tenant name in a `BTreeMap` — iteration order (and
/// therefore any future exposition of per-tenant state) is deterministic.
#[derive(Debug)]
pub struct TenantBuckets {
    /// requests/second == milli-tokens per millisecond.
    rate_milli_per_ms: u64,
    burst_milli: u64,
    buckets: BTreeMap<String, Bucket>,
}

impl TenantBuckets {
    /// A limiter admitting `rps` requests/second with bursts of `burst`
    /// per tenant; `rps == 0` disables limiting entirely.
    pub fn new(rps: u64, burst: u64) -> TenantBuckets {
        TenantBuckets {
            rate_milli_per_ms: rps,
            // A zero burst would starve tenants even under the rate; floor
            // at one request.
            burst_milli: burst.max(1).saturating_mul(1000),
            buckets: BTreeMap::new(),
        }
    }

    /// Whether limiting is active.
    pub fn enabled(&self) -> bool {
        self.rate_milli_per_ms > 0
    }

    /// Try to admit one request for `tenant` at tick `now_ms`. Buckets
    /// start full, so burst-sized spikes pass before refill matters.
    pub fn try_admit(&mut self, tenant: &str, now_ms: u64) -> bool {
        if !self.enabled() {
            return true;
        }
        let bucket = self
            .buckets
            .entry(tenant.to_string())
            .or_insert_with(|| Bucket {
                tokens_milli: self.burst_milli,
                last_refill_ms: now_ms,
            });
        let elapsed = now_ms.saturating_sub(bucket.last_refill_ms);
        bucket.tokens_milli = bucket
            .tokens_milli
            .saturating_add(elapsed.saturating_mul(self.rate_milli_per_ms))
            .min(self.burst_milli);
        bucket.last_refill_ms = now_ms;
        if bucket.tokens_milli >= 1000 {
            bucket.tokens_milli -= 1000;
            true
        } else {
            false
        }
    }

    /// Number of tenants with bucket state.
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// Whether no tenant has been seen yet.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn poller_reports_readability_level_triggered() {
        let poller = Poller::new().unwrap();
        let (mut tx, mut rx) = UnixStream::pair().unwrap();
        poller.add(rx.as_raw_fd(), 7, Interest::READ).unwrap();
        let mut events = Vec::new();

        // Nothing ready yet: a zero-timeout poll returns no events.
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0);

        tx.write_all(b"x").unwrap();
        assert_eq!(poller.wait(&mut events, 1000).unwrap(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);

        // Level-triggered: unconsumed readiness reports again.
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 1);
        let mut byte = [0u8; 1];
        rx.read_exact(&mut byte).unwrap();
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn poller_reports_writability_and_modify() {
        let poller = Poller::new().unwrap();
        let (tx, _rx) = UnixStream::pair().unwrap();
        poller.add(tx.as_raw_fd(), 3, Interest::READ).unwrap();
        let mut events = Vec::new();
        assert_eq!(
            poller.wait(&mut events, 0).unwrap(),
            0,
            "no read interest fires on an idle socket"
        );
        poller
            .modify(tx.as_raw_fd(), 3, Interest::READ_WRITE)
            .unwrap();
        assert_eq!(poller.wait(&mut events, 1000).unwrap(), 1);
        assert!(events[0].writable);
        poller.delete(tx.as_raw_fd()).unwrap();
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn poller_reports_peer_close_as_readable() {
        let poller = Poller::new().unwrap();
        let (tx, rx) = UnixStream::pair().unwrap();
        poller.add(rx.as_raw_fd(), 9, Interest::READ).unwrap();
        drop(tx);
        let mut events = Vec::new();
        assert_eq!(poller.wait(&mut events, 1000).unwrap(), 1);
        assert!(
            events[0].readable,
            "half-close must surface as readability so the loop reads the EOF"
        );
    }

    #[test]
    fn buckets_admit_burst_then_refill_by_ticks() {
        let mut b = TenantBuckets::new(10, 3); // 10 rps, burst 3
        assert!(b.enabled());
        // The full burst passes at one instant …
        assert!(b.try_admit("acme", 0));
        assert!(b.try_admit("acme", 0));
        assert!(b.try_admit("acme", 0));
        // … then the bucket is dry.
        assert!(!b.try_admit("acme", 0));
        // 10 rps == one token per 100ms: 99ms is too soon, 100ms refills
        // exactly one.
        assert!(!b.try_admit("acme", 99));
        assert!(b.try_admit("acme", 100));
        assert!(!b.try_admit("acme", 100));
        // Refill caps at the burst, even after a long idle gap.
        assert!(b.try_admit("acme", 1_000_000));
        assert!(b.try_admit("acme", 1_000_000));
        assert!(b.try_admit("acme", 1_000_000));
        assert!(!b.try_admit("acme", 1_000_000));
    }

    #[test]
    fn buckets_isolate_tenants_and_disable_at_zero_rps() {
        let mut b = TenantBuckets::new(5, 1);
        assert!(b.try_admit("a", 0));
        assert!(!b.try_admit("a", 0), "a's burst is spent");
        assert!(b.try_admit("b", 0), "b has its own bucket");
        assert_eq!(b.len(), 2);

        let mut open = TenantBuckets::new(0, 1);
        assert!(!open.enabled());
        for _ in 0..1000 {
            assert!(open.try_admit("anyone", 0));
        }
        assert!(open.is_empty(), "disabled limiter keeps no state");
    }

    #[test]
    fn bucket_ticks_tolerate_time_going_backwards() {
        // Monotonic-clock hiccups must not underflow or mint tokens.
        let mut b = TenantBuckets::new(1, 1);
        assert!(b.try_admit("t", 5000));
        assert!(!b.try_admit("t", 4000), "backwards tick mints nothing");
        assert!(b.try_admit("t", 6001), "forward progress refills normally");
    }
}
