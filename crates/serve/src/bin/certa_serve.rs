//! The `certa-serve` binary: bind, optionally preload models, serve until
//! killed.
//!
//! ```text
//! certa-serve [--host H] [--port P] [--mode event|threaded]
//!             [--scale smoke|default|paper]
//!             [--seed N] [--tau N] [--http-workers N] [--explain-workers N]
//!             [--queue-depth N] [--max-body-bytes N] [--read-timeout-ms N]
//!             [--max-pipeline N] [--tenant-rps N] [--tenant-burst N]
//!             [--stream-chunk-bytes N]
//!             [--store-dir PATH] [--transfer off|nearest]
//!             [--transfer-floor F] [--preload <dataset>/<model>]...
//! ```
//!
//! `--mode` selects the event-driven reactor core (default) or the
//! worker-per-connection baseline; `--tenant-rps 0` (default) disables
//! per-tenant rate limiting, `--stream-chunk-bytes 0` disables chunked
//! streaming of large responses.
//!
//! `--preload` resolves (generates + trains) the named entries before the
//! listener opens, so the first real request doesn't pay the training
//! latency — CI's smoke job preloads the model the load generator targets.
//!
//! `--store-dir` points at a `certa-store` directory: preloads and
//! first-touch requests load persisted artifacts when present (and persist
//! freshly trained ones), so a restarted server warm-starts in
//! milliseconds instead of retraining — see the README's "Persistent model
//! store" section.
//!
//! `--transfer nearest` changes what a store *miss* does: instead of
//! always training cold, the server searches the store's repository index
//! for the nearest stored model (by dataset-signature similarity, floor
//! set by `--transfer-floor`) and fine-tunes from its weights — see the
//! README's "Model repository" section.

use certa_serve::{AppState, ServeConfig, Server};
use std::net::TcpListener;
use std::time::Duration;

struct Args {
    host: String,
    port: u16,
    config: ServeConfig,
    preload: Vec<String>,
}

const USAGE: &str = "usage: certa-serve [--host H] [--port P] [--mode event|threaded] \
[--scale smoke|default|paper] [--seed N] [--tau N] [--http-workers N] [--explain-workers N] \
[--queue-depth N] [--max-body-bytes N] [--read-timeout-ms N] [--max-pipeline N] \
[--tenant-rps N] [--tenant-burst N] [--stream-chunk-bytes N] [--store-dir PATH] \
[--transfer off|nearest] [--transfer-floor F] [--preload <dataset>/<model>]...";

fn parse_args(argv: impl IntoIterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        host: "127.0.0.1".to_string(),
        port: 8642,
        config: ServeConfig::default(),
        preload: Vec::new(),
    };
    let mut it = argv.into_iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--host" => args.host = value("--host")?,
            "--port" => args.port = value("--port")?.parse().map_err(|e| format!("{e}"))?,
            "--mode" => args.config.mode = value("--mode")?.parse()?,
            "--scale" => args.config.scale = value("--scale")?.parse()?,
            "--seed" => args.config.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--tau" => args.config.tau = value("--tau")?.parse().map_err(|e| format!("{e}"))?,
            "--http-workers" => {
                args.config.http_workers = value("--http-workers")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--explain-workers" => {
                args.config.explain_workers = value("--explain-workers")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--queue-depth" => {
                args.config.queue_depth = value("--queue-depth")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--max-body-bytes" => {
                args.config.max_body_bytes = value("--max-body-bytes")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--read-timeout-ms" => {
                args.config.read_timeout = Duration::from_millis(
                    value("--read-timeout-ms")?
                        .parse()
                        .map_err(|e| format!("{e}"))?,
                )
            }
            "--max-pipeline" => {
                args.config.max_pipeline = value("--max-pipeline")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--tenant-rps" => {
                args.config.tenant_rps =
                    value("--tenant-rps")?.parse().map_err(|e| format!("{e}"))?
            }
            "--tenant-burst" => {
                args.config.tenant_burst = value("--tenant-burst")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--stream-chunk-bytes" => {
                args.config.stream_chunk_bytes = value("--stream-chunk-bytes")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--store-dir" => {
                args.config.store_dir = Some(std::path::PathBuf::from(value("--store-dir")?))
            }
            "--transfer" => args.config.transfer = value("--transfer")?.parse()?,
            "--transfer-floor" => {
                args.config.transfer_floor = value("--transfer-floor")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--preload" => args.preload.push(value("--preload")?),
            other if other.ends_with("help") || other == "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let cfg = &args.config;
    eprintln!(
        "certa-serve: mode={} scale={} seed={} tau={} http_workers={} queue_depth={}",
        cfg.mode,
        cfg.scale,
        cfg.seed,
        cfg.tau,
        cfg.effective_http_workers(),
        cfg.queue_depth,
    );
    // Preload *before* the listener opens: a health probe must not succeed
    // (and no request can arrive) until every preloaded model is trained —
    // CI's wait-for-/healthz gate relies on this ordering.
    let state = AppState::new(args.config.clone());
    for name in &args.preload {
        let t0 = std::time::Instant::now();
        match state.registry.resolve(name) {
            Ok(entry) => eprintln!(
                "certa-serve: preloaded {} in {:.2?}",
                entry.name,
                t0.elapsed()
            ),
            Err(e) => {
                eprintln!("certa-serve: preload `{name}` failed: {}", e.message);
                std::process::exit(2);
            }
        }
    }
    let bind_to = format!("{}:{}", args.host, args.port);
    let server = TcpListener::bind(&bind_to)
        .and_then(|listener| {
            let addr = listener.local_addr()?;
            Server::start(listener, addr, state)
        })
        .unwrap_or_else(|e| {
            eprintln!("certa-serve: bind {bind_to} failed: {e}");
            std::process::exit(1);
        });
    eprintln!("certa-serve: listening on http://{}", server.addr());
    // Serve until the process is killed (CI backgrounds the binary and
    // `kill`s it after the smoke run; there is no libc in-tree, so POSIX
    // signal hooks are out of reach — the graceful path is exercised
    // programmatically by the tests and the load harness).
    loop {
        std::thread::park();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Args, String> {
        parse_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_and_overrides() {
        let a = parse(&[]).unwrap();
        assert_eq!((a.host.as_str(), a.port), ("127.0.0.1", 8642));
        assert!(a.preload.is_empty());
        let a = parse(&[
            "--port",
            "9000",
            "--mode",
            "threaded",
            "--scale",
            "smoke",
            "--seed",
            "11",
            "--tau",
            "40",
            "--http-workers",
            "3",
            "--explain-workers",
            "2",
            "--queue-depth",
            "16",
            "--max-body-bytes",
            "1024",
            "--read-timeout-ms",
            "250",
            "--max-pipeline",
            "4",
            "--tenant-rps",
            "10",
            "--tenant-burst",
            "5",
            "--stream-chunk-bytes",
            "4096",
            "--store-dir",
            "/tmp/certa-models",
            "--transfer",
            "nearest",
            "--transfer-floor",
            "0.5",
            "--preload",
            "FZ/DeepMatcher",
            "--preload",
            "AB/Ditto",
        ])
        .unwrap();
        assert_eq!(a.port, 9000);
        assert_eq!(a.config.mode, certa_serve::ServeMode::Threaded);
        assert_eq!(a.config.seed, 11);
        assert_eq!(a.config.tau, 40);
        assert_eq!(a.config.http_workers, 3);
        assert_eq!(a.config.explain_workers, 2);
        assert_eq!(a.config.queue_depth, 16);
        assert_eq!(a.config.max_body_bytes, 1024);
        assert_eq!(a.config.read_timeout, Duration::from_millis(250));
        assert_eq!(a.config.max_pipeline, 4);
        assert_eq!(a.config.tenant_rps, 10);
        assert_eq!(a.config.tenant_burst, 5);
        assert_eq!(a.config.stream_chunk_bytes, 4096);
        assert_eq!(
            a.config.store_dir.as_deref(),
            Some(std::path::Path::new("/tmp/certa-models"))
        );
        assert_eq!(a.config.transfer, certa_serve::TransferMode::Nearest);
        assert_eq!(a.config.transfer_floor, 0.5);
        assert_eq!(a.preload, vec!["FZ/DeepMatcher", "AB/Ditto"]);
        let d = parse(&[]).unwrap();
        assert!(d.config.store_dir.is_none());
        assert_eq!(d.config.mode, certa_serve::ServeMode::Event);
        assert_eq!(d.config.transfer, certa_serve::TransferMode::Off);
        assert_eq!(d.config.transfer_floor, 0.25);
    }

    #[test]
    fn rejects_bad_flags() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--port"]).is_err());
        assert!(parse(&["--port", "zap"]).is_err());
        assert!(parse(&["--mode", "fibers"]).is_err());
        assert!(parse(&["--transfer", "furthest"]).is_err());
        assert!(parse(&["--transfer-floor", "tall"]).is_err());
        assert!(parse(&["--help"]).is_err());
    }
}
