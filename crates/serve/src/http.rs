//! Minimal HTTP/1.1 framing: request parsing with hard limits, response
//! encoding, keep-alive negotiation, and structured JSON errors.
//!
//! Two request readers share one head grammar ([`parse_head`]): the
//! blocking [`read_request`] (used by the threaded serving core) and the
//! incremental [`parse_request`] over a connection's receive buffer (used
//! by the epoll reactor, which never blocks on a socket). Both produce
//! identical [`Request`]s and identical structured errors for identical
//! bytes.
//!
//! The grammar subset is deliberate: request line + headers + an optional
//! `Content-Length` body. `Transfer-Encoding: chunked` *requests* are
//! rejected with `501` (no endpoint needs streaming bodies), oversized
//! bodies with `413` *before* reading them, and malformed syntax with `400`
//! — always as a structured JSON error document, never by dropping the
//! connection from a panicking worker. *Responses* may stream as chunked
//! (see [`Response::encode`]); de-chunking yields byte-identical payloads,
//! so the served-bytes ≡ in-process equality gate is framing-independent.

use crate::wire::Json;
use std::io::{self, BufRead, Write};

/// Hard cap on the request line + headers section.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Default cap on request bodies (configurable via `ServeConfig`).
pub const DEFAULT_MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercased method token (`GET`, `POST`, …).
    pub method: String,
    /// Path with any query string stripped.
    pub path: String,
    /// Raw query string (without the `?`), empty when the target had none.
    pub query: String,
    /// Lowercased header names with their raw values.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the connection should be kept open after the response.
    pub keep_alive: bool,
    /// Whether the request spoke HTTP/1.1 (gates chunked responses; 1.0
    /// clients always get `Content-Length` framing).
    pub http11: bool,
}

impl Request {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// An error response to send: status, machine-readable code, message.
///
/// `keep_alive = false` forces connection close (e.g. after a `413` the
/// unread body would poison the stream framing).
#[derive(Debug, Clone, PartialEq)]
pub struct HttpError {
    /// HTTP status code.
    pub status: u16,
    /// Stable machine-readable error code (`"bad_json"`, `"payload_too_large"`, …).
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
    /// Whether the connection may be reused after this error.
    pub keep_alive: bool,
}

impl HttpError {
    /// A `400 Bad Request` that keeps the connection usable.
    pub fn bad_request(code: &'static str, message: impl Into<String>) -> Self {
        HttpError {
            status: 400,
            code,
            message: message.into(),
            keep_alive: true,
        }
    }

    /// An error that also closes the connection.
    pub fn closing(status: u16, code: &'static str, message: impl Into<String>) -> Self {
        HttpError {
            status,
            code,
            message: message.into(),
            keep_alive: false,
        }
    }

    /// Render as a structured JSON error response.
    pub fn to_response(&self) -> Response {
        let body = Json::obj([(
            "error",
            Json::obj([
                ("code", Json::str(self.code)),
                ("message", Json::str(&self.message)),
            ]),
        )])
        .serialize()
        // Error bodies contain no numbers, so serialization cannot hit the
        // non-finite rejection; if that invariant ever breaks, degrade to a
        // fixed body rather than panicking on the error path itself.
        .unwrap_or_else(|_| {
            r#"{"error":{"code":"internal_error","message":"error body serialization failed"}}"#
                .to_string()
        });
        let mut resp = Response::json(self.status, body);
        resp.keep_alive = self.keep_alive;
        resp
    }
}

/// What happened while reading a request off the stream.
pub enum ReadOutcome {
    /// A complete, well-formed request.
    Request(Box<Request>),
    /// The peer closed between requests — normal keep-alive termination,
    /// nothing to send.
    Closed,
    /// No byte arrived within the socket read timeout — the idle-connection
    /// reaper case, counted separately from peer-initiated closes.
    Timeout,
    /// A protocol violation; send this error and honour its `keep_alive`.
    Error(HttpError),
}

/// A parsed request head: everything before the body bytes.
struct Head {
    method: String,
    path: String,
    query: String,
    headers: Vec<(String, String)>,
    http11: bool,
    keep_alive: bool,
    content_length: usize,
}

impl Head {
    fn into_request(self, body: Vec<u8>) -> Request {
        Request {
            method: self.method,
            path: self.path,
            query: self.query,
            headers: self.headers,
            body,
            keep_alive: self.keep_alive,
            http11: self.http11,
        }
    }
}

fn head_too_large() -> HttpError {
    HttpError::closing(
        431,
        "headers_too_large",
        format!("request head exceeds {MAX_HEAD_BYTES} bytes"),
    )
}

fn truncated_head(detail: &str) -> HttpError {
    HttpError::closing(400, "truncated_request", detail.to_string())
}

/// Parse a request head from its lines (request line first, then header
/// lines, no blank terminator). One grammar for both request readers.
fn parse_head(lines: &[String], max_body: usize) -> Result<Head, HttpError> {
    // --- request line ---
    let line = lines.first().map(String::as_str).unwrap_or("");
    let mut parts = line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m.to_ascii_uppercase(), t.to_string(), v),
        _ => {
            return Err(HttpError::closing(
                400,
                "bad_request_line",
                format!("malformed request line `{line}`"),
            ));
        }
    };
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        other => {
            return Err(HttpError::closing(
                505,
                "http_version_not_supported",
                format!("unsupported version `{other}`"),
            ));
        }
    };

    // --- headers ---
    let mut headers = Vec::new();
    for line in lines.iter().skip(1) {
        match line.split_once(':') {
            Some((name, value)) => {
                headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
            }
            None => {
                return Err(HttpError::closing(
                    400,
                    "bad_header",
                    format!("malformed header line `{line}`"),
                ));
            }
        }
    }

    let find = |name: &str| {
        headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    };

    // --- keep-alive negotiation ---
    let connection = find("connection").map(str::to_ascii_lowercase);
    let keep_alive = match connection.as_deref() {
        Some("close") => false,
        Some("keep-alive") => true,
        _ => http11, // HTTP/1.1 defaults to persistent, 1.0 to close
    };

    // --- body framing ---
    if find("transfer-encoding").is_some() {
        return Err(HttpError::closing(
            501,
            "transfer_encoding_unsupported",
            "use Content-Length framing",
        ));
    }
    let content_length = match find("content-length") {
        None => 0usize,
        Some(raw) => match raw.parse::<usize>() {
            Ok(n) => n,
            Err(_) => {
                return Err(HttpError::closing(
                    400,
                    "bad_content_length",
                    format!("unparseable Content-Length `{raw}`"),
                ));
            }
        },
    };
    if content_length == 0 && (method == "POST" || method == "PUT") {
        // 411 Length Required; there is no unread body, so the connection
        // stays usable.
        return Err(HttpError {
            status: 411,
            code: "length_required",
            message: format!("{method} requests need a Content-Length body"),
            keep_alive: true,
        });
    }
    if content_length > max_body {
        // Refuse *before* reading: the unread body poisons stream framing,
        // so the connection must close afterwards.
        return Err(HttpError::closing(
            413,
            "payload_too_large",
            format!("body of {content_length} bytes exceeds the {max_body}-byte limit"),
        ));
    }

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target, String::new()),
    };
    Ok(Head {
        method,
        path,
        query,
        headers,
        http11,
        keep_alive,
        content_length,
    })
}

/// Read one request from a buffered stream (the blocking reader the
/// threaded serving core uses; the reactor uses [`parse_request`]).
///
/// `max_body` bounds `Content-Length`; the head section is bounded by
/// [`MAX_HEAD_BYTES`]. A timeout before the first byte surfaces as
/// [`ReadOutcome::Timeout`], other first-byte IO errors as
/// [`ReadOutcome::Closed`], and truncation mid-request as a `400`.
pub fn read_request(stream: &mut impl BufRead, max_body: usize) -> ReadOutcome {
    let line = match read_line_limited(stream, MAX_HEAD_BYTES) {
        Ok(Some(line)) => line,
        Ok(None) => return ReadOutcome::Closed,
        Err(LineError::TooLong) => return ReadOutcome::Error(head_too_large()),
        Err(LineError::Io(e))
            if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ) =>
        {
            return ReadOutcome::Timeout;
        }
        Err(LineError::Io(_)) => return ReadOutcome::Closed,
    };
    let mut head_budget = MAX_HEAD_BYTES.saturating_sub(line.len());
    let mut lines = vec![line];
    loop {
        let line = match read_line_limited(stream, head_budget) {
            Ok(Some(line)) => line,
            Ok(None) => {
                return ReadOutcome::Error(truncated_head(
                    "connection closed inside the header section",
                ));
            }
            Err(LineError::TooLong) => return ReadOutcome::Error(head_too_large()),
            Err(LineError::Io(_)) => {
                return ReadOutcome::Error(truncated_head(
                    "stream error inside the header section",
                ));
            }
        };
        if line.is_empty() {
            break;
        }
        head_budget = head_budget.saturating_sub(line.len());
        lines.push(line);
    }
    let head = match parse_head(&lines, max_body) {
        Ok(head) => head,
        Err(e) => return ReadOutcome::Error(e),
    };
    let mut body = vec![0u8; head.content_length];
    if stream.read_exact(&mut body).is_err() {
        return ReadOutcome::Error(HttpError::closing(
            400,
            "truncated_body",
            format!(
                "connection closed before {} body bytes arrived",
                head.content_length
            ),
        ));
    }
    ReadOutcome::Request(Box::new(head.into_request(body)))
}

/// Outcome of one [`parse_request`] pass over a receive buffer.
pub enum ParseOutcome {
    /// No complete request yet — keep the buffer and read more bytes.
    /// The buffer is bounded: heads beyond [`MAX_HEAD_BYTES`] and bodies
    /// beyond `max_body` error out instead of accumulating.
    NeedMore,
    /// One complete request occupying the first `consumed` buffer bytes.
    Request {
        /// The parsed request.
        request: Box<Request>,
        /// Bytes to drain from the front of the buffer.
        consumed: usize,
    },
    /// A protocol violation. Drain `consumed` bytes; when
    /// `error.keep_alive` is true (e.g. `411`) the bytes after them may
    /// still parse as further pipelined requests.
    Error {
        /// The structured error to send.
        error: HttpError,
        /// Bytes to drain from the front of the buffer.
        consumed: usize,
    },
}

/// Incrementally parse one request from the front of `buf` — the reactor's
/// nonblocking counterpart of [`read_request`], same grammar, same errors.
///
/// Call after every socket read; on [`ParseOutcome::Request`] /
/// [`ParseOutcome::Error`] drain `consumed` bytes and call again (request
/// pipelining: a buffer holding several requests yields them one per call).
pub fn parse_request(buf: &[u8], max_body: usize) -> ParseOutcome {
    // --- split the head: lines up to the first blank line ---
    let mut lines: Vec<String> = Vec::new();
    let mut pos = 0usize;
    let head_end = loop {
        let rest = buf.get(pos..).unwrap_or(&[]);
        let Some(i) = rest.iter().position(|&b| b == b'\n') else {
            if buf.len() > MAX_HEAD_BYTES {
                return ParseOutcome::Error {
                    error: head_too_large(),
                    consumed: buf.len(),
                };
            }
            return ParseOutcome::NeedMore;
        };
        let line = rest.get(..i).unwrap_or(&[]);
        let line = match line.split_last() {
            Some((&b'\r', init)) => init,
            _ => line,
        };
        pos += i + 1;
        if pos > MAX_HEAD_BYTES {
            return ParseOutcome::Error {
                error: head_too_large(),
                consumed: buf.len(),
            };
        }
        // A blank line terminates the head — except as the very first line,
        // where it *is* the (malformed) request line, matching the stream
        // reader's behaviour.
        if line.is_empty() && !lines.is_empty() {
            break pos;
        }
        lines.push(String::from_utf8_lossy(line).into_owned());
    };

    let head = match parse_head(&lines, max_body) {
        Ok(head) => head,
        Err(error) => {
            return ParseOutcome::Error {
                error,
                consumed: head_end,
            };
        }
    };
    let total = head_end.saturating_add(head.content_length);
    match buf.get(head_end..total) {
        Some(body) => ParseOutcome::Request {
            request: Box::new(head.into_request(body.to_vec())),
            consumed: total,
        },
        // Body bytes still in flight (content_length ≤ max_body here, so
        // the wait is bounded).
        None => ParseOutcome::NeedMore,
    }
}

enum LineError {
    TooLong,
    Io(io::Error),
}

/// Read one CRLF- (or bare-LF-) terminated line as UTF-8-lossy text,
/// bounded by `limit` bytes. `Ok(None)` = clean EOF before any byte.
fn read_line_limited(stream: &mut impl BufRead, limit: usize) -> Result<Option<String>, LineError> {
    let mut buf = Vec::new();
    loop {
        if buf.len() > limit {
            return Err(LineError::TooLong);
        }
        let mut byte = [0u8; 1];
        match stream.read(&mut byte) {
            Ok(0) => {
                if buf.is_empty() {
                    return Ok(None);
                }
                return Err(LineError::Io(io::Error::from(io::ErrorKind::UnexpectedEof)));
            }
            Ok(_) => {
                let [b] = byte;
                if b == b'\n' {
                    if buf.last() == Some(&b'\r') {
                        buf.pop();
                    }
                    return Ok(Some(String::from_utf8_lossy(&buf).into_owned()));
                }
                buf.push(b);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(LineError::Io(e)),
        }
    }
}

/// A response ready to write.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// Whether to keep the connection open (ANDed with the request's wish).
    pub keep_alive: bool,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into(),
            keep_alive: true,
        }
    }

    /// A plain-text response (the `/metrics` exposition format).
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
            keep_alive: true,
        }
    }

    /// Serialize head + body to wire bytes.
    ///
    /// `chunk: None` emits classic `Content-Length` framing. `chunk:
    /// Some(n)` streams the body as `Transfer-Encoding: chunked` in
    /// `n`-byte chunks — large batch explanations go out as a sequence of
    /// bounded writes instead of one giant contiguous buffer flush. The
    /// concatenated chunk payloads are exactly `self.body`, so de-chunking
    /// clients observe byte-identical documents (callers only pass
    /// `Some` for HTTP/1.1 peers; empty bodies keep `Content-Length: 0`
    /// framing).
    pub fn encode(&self, keep_alive: bool, chunk: Option<usize>) -> Vec<u8> {
        let connection = if keep_alive { "keep-alive" } else { "close" };
        match chunk {
            Some(n) if n > 0 && !self.body.is_empty() => {
                let mut out = format!(
                    "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ntransfer-encoding: chunked\r\nconnection: {connection}\r\n\r\n",
                    self.status,
                    reason(self.status),
                    self.content_type,
                )
                .into_bytes();
                for piece in self.body.chunks(n) {
                    out.extend_from_slice(format!("{:x}\r\n", piece.len()).as_bytes());
                    out.extend_from_slice(piece);
                    out.extend_from_slice(b"\r\n");
                }
                out.extend_from_slice(b"0\r\n\r\n");
                out
            }
            _ => {
                let mut out = format!(
                    "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {connection}\r\n\r\n",
                    self.status,
                    reason(self.status),
                    self.content_type,
                    self.body.len(),
                )
                .into_bytes();
                out.extend_from_slice(&self.body);
                out
            }
        }
    }

    /// Serialize head + body onto a blocking stream (`Content-Length`
    /// framing).
    pub fn write_to(&self, stream: &mut impl Write, keep_alive: bool) -> io::Result<()> {
        stream.write_all(&self.encode(keep_alive, None))?;
        stream.flush()
    }
}

/// Canonical reason phrases for the statuses the service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        411 => "Length Required",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn read(raw: &[u8]) -> ReadOutcome {
        read_request(&mut BufReader::new(raw), 1024)
    }

    fn request(raw: &[u8]) -> Request {
        match read(raw) {
            ReadOutcome::Request(r) => *r,
            ReadOutcome::Closed => panic!("closed"),
            ReadOutcome::Timeout => panic!("timeout"),
            ReadOutcome::Error(e) => panic!("error: {e:?}"),
        }
    }

    fn error(raw: &[u8]) -> HttpError {
        match read(raw) {
            ReadOutcome::Error(e) => e,
            _ => panic!("expected an error for {:?}", String::from_utf8_lossy(raw)),
        }
    }

    #[test]
    fn parses_get_with_headers_and_query() {
        let r = request(b"GET /healthz?verbose=1 HTTP/1.1\r\nHost: x\r\nX-Trace: abc\r\n\r\n");
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/healthz");
        assert_eq!(r.query, "verbose=1");
        assert_eq!(r.header("x-trace"), Some("abc"));
        assert!(r.keep_alive, "HTTP/1.1 defaults to keep-alive");
        assert!(r.body.is_empty());
    }

    #[test]
    fn parses_post_with_body() {
        let r = request(b"POST /v1/score HTTP/1.1\r\nContent-Length: 4\r\n\r\n{\"a\"");
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, b"{\"a\"");
    }

    #[test]
    fn keep_alive_negotiation() {
        let r = request(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(!r.keep_alive);
        let r = request(b"GET / HTTP/1.0\r\n\r\n");
        assert!(!r.keep_alive, "HTTP/1.0 defaults to close");
        let r = request(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        assert!(r.keep_alive);
    }

    #[test]
    fn clean_eof_is_closed_not_error() {
        assert!(matches!(read(b""), ReadOutcome::Closed));
    }

    #[test]
    fn protocol_violations_are_structured_errors() {
        assert_eq!(error(b"GARBAGE\r\n\r\n").status, 400);
        assert_eq!(error(b"GET / HTTP/2.0\r\n\r\n").status, 505);
        assert_eq!(error(b"GET / HTTP/1.1\r\nbadheader\r\n\r\n").status, 400);
        assert_eq!(
            error(b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n").status,
            400
        );
        assert_eq!(
            error(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").status,
            501
        );
        let e = error(b"POST /x HTTP/1.1\r\n\r\n");
        assert_eq!((e.status, e.code), (411, "length_required"));
        assert!(e.keep_alive, "no unread body, connection stays usable");
    }

    #[test]
    fn oversized_body_is_413_and_closes() {
        let e = error(b"POST /x HTTP/1.1\r\nContent-Length: 99999\r\n\r\n");
        assert_eq!(e.status, 413);
        assert_eq!(e.code, "payload_too_large");
        assert!(!e.keep_alive, "unread body must close the connection");
    }

    #[test]
    fn truncated_body_is_400() {
        let e = error(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc");
        assert_eq!((e.status, e.code), (400, "truncated_body"));
    }

    #[test]
    fn oversized_head_is_431() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend(format!("x-pad: {}\r\n\r\n", "y".repeat(MAX_HEAD_BYTES)).into_bytes());
        assert_eq!(error(&raw).status, 431);
    }

    #[test]
    fn error_response_is_structured_json() {
        let e = HttpError::bad_request("bad_json", "oops: \"quoted\"");
        let resp = e.to_response();
        assert_eq!(resp.status, 400);
        let parsed = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let err = parsed.get("error").unwrap();
        assert_eq!(err.get("code").unwrap().as_str(), Some("bad_json"));
        assert_eq!(
            err.get("message").unwrap().as_str(),
            Some("oops: \"quoted\"")
        );
    }

    /// Drive `parse_request` the way the reactor does: feed the bytes one
    /// at a time and collect every completed request/error.
    fn parse_all(raw: &[u8], max_body: usize) -> (Vec<Request>, Vec<HttpError>, usize) {
        let mut buf: Vec<u8> = Vec::new();
        let (mut requests, mut errors) = (Vec::new(), Vec::new());
        for &b in raw {
            buf.push(b);
            loop {
                match parse_request(&buf, max_body) {
                    ParseOutcome::NeedMore => break,
                    ParseOutcome::Request { request, consumed } => {
                        requests.push(*request);
                        buf.drain(..consumed);
                    }
                    ParseOutcome::Error { error, consumed } => {
                        let recoverable = error.keep_alive;
                        errors.push(error);
                        buf.drain(..consumed.min(buf.len()));
                        if !recoverable {
                            return (requests, errors, buf.len());
                        }
                    }
                }
            }
        }
        (requests, errors, buf.len())
    }

    #[test]
    fn incremental_parser_matches_stream_reader() {
        let raw: &[u8] =
            b"POST /v1/score?x=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\n{\"a\"";
        let (reqs, errs, leftover) = parse_all(raw, 1024);
        assert!(errs.is_empty());
        assert_eq!(leftover, 0);
        let [r] = &reqs[..] else {
            panic!("expected exactly one request")
        };
        let s = request(raw);
        assert_eq!((r.method.as_str(), s.method.as_str()), ("POST", "POST"));
        assert_eq!(r.path, s.path);
        assert_eq!(r.query, s.query);
        assert_eq!(r.headers, s.headers);
        assert_eq!(r.body, s.body);
        assert_eq!(r.keep_alive, s.keep_alive);
        assert!(r.http11 && s.http11);
    }

    #[test]
    fn incremental_parser_yields_pipelined_requests_in_order() {
        let raw: &[u8] =
            b"GET /healthz HTTP/1.1\r\n\r\nPOST /v1/score HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}GET /metrics HTTP/1.1\r\n\r\n";
        let (reqs, errs, leftover) = parse_all(raw, 1024);
        assert!(errs.is_empty());
        assert_eq!(leftover, 0);
        let paths: Vec<&str> = reqs.iter().map(|r| r.path.as_str()).collect();
        assert_eq!(paths, ["/healthz", "/v1/score", "/metrics"]);
        assert_eq!(reqs[1].body, b"{}");
    }

    #[test]
    fn incremental_parser_recovers_after_keepalive_errors() {
        // 411 keeps the connection usable; the next pipelined request must
        // still parse from the remaining bytes.
        let raw: &[u8] = b"POST /v1/score HTTP/1.1\r\n\r\nGET /healthz HTTP/1.1\r\n\r\n";
        let (reqs, errs, leftover) = parse_all(raw, 1024);
        assert_eq!(leftover, 0);
        assert_eq!(errs.len(), 1);
        assert_eq!((errs[0].status, errs[0].code), (411, "length_required"));
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].path, "/healthz");
    }

    #[test]
    fn incremental_parser_errors_match_stream_reader_errors() {
        for raw in [
            b"GARBAGE\r\n\r\n".as_slice(),
            b"GET / HTTP/2.0\r\n\r\n",
            b"GET / HTTP/1.1\r\nbadheader\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: 99999\r\n\r\n",
        ] {
            let stream_err = error(raw);
            let (_, errs, _) = parse_all(raw, 1024);
            assert_eq!(errs.len(), 1, "{:?}", String::from_utf8_lossy(raw));
            assert_eq!(errs[0], stream_err);
        }
    }

    #[test]
    fn incremental_parser_caps_headless_garbage() {
        // No newline at all: the buffer must not grow unboundedly.
        let raw = vec![b'x'; MAX_HEAD_BYTES + 2];
        let ParseOutcome::Error { error, consumed } = parse_request(&raw, 1024) else {
            panic!("oversized headless buffer must error");
        };
        assert_eq!(error.status, 431);
        assert_eq!(consumed, raw.len());
    }

    #[test]
    fn chunked_encoding_dechunks_to_identical_bytes() {
        let body: Vec<u8> = (0..1000u32).flat_map(|i| i.to_le_bytes()).collect();
        let resp = Response::json(200, body.clone());
        let wire = resp.encode(true, Some(64));
        let text = String::from_utf8_lossy(&wire);
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("transfer-encoding: chunked\r\n"));
        assert!(!text.contains("content-length"));
        // De-chunk and compare byte-for-byte.
        let head_end = wire.windows(4).position(|w| w == b"\r\n\r\n").unwrap() + 4;
        let mut rest = &wire[head_end..];
        let mut payload = Vec::new();
        loop {
            let line_end = rest.windows(2).position(|w| w == b"\r\n").unwrap();
            let size =
                usize::from_str_radix(std::str::from_utf8(&rest[..line_end]).unwrap(), 16).unwrap();
            rest = &rest[line_end + 2..];
            if size == 0 {
                assert_eq!(rest, b"\r\n");
                break;
            }
            payload.extend_from_slice(&rest[..size]);
            assert_eq!(&rest[size..size + 2], b"\r\n");
            rest = &rest[size + 2..];
        }
        assert_eq!(payload, body);
        // Content-Length framing is unchanged by the encode() refactor.
        let mut via_write_to = Vec::new();
        resp.write_to(&mut via_write_to, true).unwrap();
        assert_eq!(via_write_to, resp.encode(true, None));
        // Empty bodies never chunk.
        let empty = Response::json(204, Vec::new());
        assert_eq!(empty.encode(true, Some(64)), empty.encode(true, None));
    }

    #[test]
    fn response_head_wire_shape() {
        let mut out = Vec::new();
        Response::json(200, "{}").write_to(&mut out, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
        let mut out = Vec::new();
        Response::text(503, "overload")
            .write_to(&mut out, false)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("connection: close\r\n"));
    }
}
