//! Minimal HTTP/1.1 on `std::io` streams: request parsing with hard limits,
//! response writing, keep-alive negotiation, and structured JSON errors.
//!
//! The grammar subset is deliberate: request line + headers + an optional
//! `Content-Length` body. `Transfer-Encoding: chunked` is rejected with
//! `501` (no endpoint needs streaming bodies), oversized bodies with `413`
//! *before* reading them, and malformed syntax with `400` — always as a
//! structured JSON error document, never by dropping the connection from a
//! panicking worker.

use crate::wire::Json;
use std::io::{self, BufRead, Write};

/// Hard cap on the request line + headers section.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Default cap on request bodies (configurable via `ServeConfig`).
pub const DEFAULT_MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercased method token (`GET`, `POST`, …).
    pub method: String,
    /// Path with any query string stripped.
    pub path: String,
    /// Raw query string (without the `?`), empty when the target had none.
    pub query: String,
    /// Lowercased header names with their raw values.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the connection should be kept open after the response.
    pub keep_alive: bool,
}

impl Request {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// An error response to send: status, machine-readable code, message.
///
/// `keep_alive = false` forces connection close (e.g. after a `413` the
/// unread body would poison the stream framing).
#[derive(Debug, Clone, PartialEq)]
pub struct HttpError {
    /// HTTP status code.
    pub status: u16,
    /// Stable machine-readable error code (`"bad_json"`, `"payload_too_large"`, …).
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
    /// Whether the connection may be reused after this error.
    pub keep_alive: bool,
}

impl HttpError {
    /// A `400 Bad Request` that keeps the connection usable.
    pub fn bad_request(code: &'static str, message: impl Into<String>) -> Self {
        HttpError {
            status: 400,
            code,
            message: message.into(),
            keep_alive: true,
        }
    }

    /// An error that also closes the connection.
    pub fn closing(status: u16, code: &'static str, message: impl Into<String>) -> Self {
        HttpError {
            status,
            code,
            message: message.into(),
            keep_alive: false,
        }
    }

    /// Render as a structured JSON error response.
    pub fn to_response(&self) -> Response {
        let body = Json::obj([(
            "error",
            Json::obj([
                ("code", Json::str(self.code)),
                ("message", Json::str(&self.message)),
            ]),
        )])
        .serialize()
        // Error bodies contain no numbers, so serialization cannot hit the
        // non-finite rejection; if that invariant ever breaks, degrade to a
        // fixed body rather than panicking on the error path itself.
        .unwrap_or_else(|_| {
            r#"{"error":{"code":"internal_error","message":"error body serialization failed"}}"#
                .to_string()
        });
        let mut resp = Response::json(self.status, body);
        resp.keep_alive = self.keep_alive;
        resp
    }
}

/// What happened while reading a request off the stream.
pub enum ReadOutcome {
    /// A complete, well-formed request.
    Request(Box<Request>),
    /// The peer closed (or idled past the read timeout) between requests —
    /// normal keep-alive termination, nothing to send.
    Closed,
    /// A protocol violation; send this error and honour its `keep_alive`.
    Error(HttpError),
}

/// Read one request from a buffered stream.
///
/// `max_body` bounds `Content-Length`; the head section is bounded by
/// [`MAX_HEAD_BYTES`]. IO errors surface as [`ReadOutcome::Closed`] (for
/// clean EOF / timeouts on the *first* byte) or as a `400` (for truncation
/// mid-request).
pub fn read_request(stream: &mut impl BufRead, max_body: usize) -> ReadOutcome {
    // --- request line ---
    let line = match read_line_limited(stream, MAX_HEAD_BYTES) {
        Ok(Some(line)) => line,
        Ok(None) => return ReadOutcome::Closed,
        Err(LineError::TooLong) => {
            return ReadOutcome::Error(HttpError::closing(
                431,
                "headers_too_large",
                format!("request head exceeds {MAX_HEAD_BYTES} bytes"),
            ));
        }
        Err(LineError::Io(_)) => return ReadOutcome::Closed,
    };
    let mut parts = line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m.to_ascii_uppercase(), t.to_string(), v),
        _ => {
            return ReadOutcome::Error(HttpError::closing(
                400,
                "bad_request_line",
                format!("malformed request line `{line}`"),
            ));
        }
    };
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        other => {
            return ReadOutcome::Error(HttpError::closing(
                505,
                "http_version_not_supported",
                format!("unsupported version `{other}`"),
            ));
        }
    };

    // --- headers ---
    let mut headers = Vec::new();
    let mut head_budget = MAX_HEAD_BYTES.saturating_sub(line.len());
    loop {
        let line = match read_line_limited(stream, head_budget) {
            Ok(Some(line)) => line,
            Ok(None) => {
                return ReadOutcome::Error(HttpError::closing(
                    400,
                    "truncated_request",
                    "connection closed inside the header section",
                ));
            }
            Err(LineError::TooLong) => {
                return ReadOutcome::Error(HttpError::closing(
                    431,
                    "headers_too_large",
                    format!("request head exceeds {MAX_HEAD_BYTES} bytes"),
                ));
            }
            Err(LineError::Io(_)) => {
                return ReadOutcome::Error(HttpError::closing(
                    400,
                    "truncated_request",
                    "stream error inside the header section",
                ));
            }
        };
        if line.is_empty() {
            break;
        }
        head_budget = head_budget.saturating_sub(line.len());
        match line.split_once(':') {
            Some((name, value)) => {
                headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
            }
            None => {
                return ReadOutcome::Error(HttpError::closing(
                    400,
                    "bad_header",
                    format!("malformed header line `{line}`"),
                ));
            }
        }
    }

    let find = |name: &str| {
        headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    };

    // --- keep-alive negotiation ---
    let connection = find("connection").map(str::to_ascii_lowercase);
    let keep_alive = match connection.as_deref() {
        Some("close") => false,
        Some("keep-alive") => true,
        _ => http11, // HTTP/1.1 defaults to persistent, 1.0 to close
    };

    // --- body framing ---
    if find("transfer-encoding").is_some() {
        return ReadOutcome::Error(HttpError::closing(
            501,
            "transfer_encoding_unsupported",
            "use Content-Length framing",
        ));
    }
    let content_length = match find("content-length") {
        None => 0usize,
        Some(raw) => match raw.parse::<usize>() {
            Ok(n) => n,
            Err(_) => {
                return ReadOutcome::Error(HttpError::closing(
                    400,
                    "bad_content_length",
                    format!("unparseable Content-Length `{raw}`"),
                ));
            }
        },
    };
    if content_length == 0 && (method == "POST" || method == "PUT") {
        // 411 Length Required; there is no unread body, so the connection
        // stays usable.
        return ReadOutcome::Error(HttpError {
            status: 411,
            code: "length_required",
            message: format!("{method} requests need a Content-Length body"),
            keep_alive: true,
        });
    }
    if content_length > max_body {
        // Refuse *before* reading: the unread body poisons stream framing,
        // so the connection must close afterwards.
        return ReadOutcome::Error(HttpError::closing(
            413,
            "payload_too_large",
            format!("body of {content_length} bytes exceeds the {max_body}-byte limit"),
        ));
    }
    let mut body = vec![0u8; content_length];
    if stream.read_exact(&mut body).is_err() {
        return ReadOutcome::Error(HttpError::closing(
            400,
            "truncated_body",
            format!("connection closed before {content_length} body bytes arrived"),
        ));
    }

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target, String::new()),
    };
    ReadOutcome::Request(Box::new(Request {
        method,
        path,
        query,
        headers,
        body,
        keep_alive,
    }))
}

enum LineError {
    TooLong,
    Io(#[allow(dead_code)] io::Error),
}

/// Read one CRLF- (or bare-LF-) terminated line as UTF-8-lossy text,
/// bounded by `limit` bytes. `Ok(None)` = clean EOF before any byte.
fn read_line_limited(stream: &mut impl BufRead, limit: usize) -> Result<Option<String>, LineError> {
    let mut buf = Vec::new();
    loop {
        if buf.len() > limit {
            return Err(LineError::TooLong);
        }
        let mut byte = [0u8; 1];
        match stream.read(&mut byte) {
            Ok(0) => {
                if buf.is_empty() {
                    return Ok(None);
                }
                return Err(LineError::Io(io::Error::from(io::ErrorKind::UnexpectedEof)));
            }
            Ok(_) => {
                let [b] = byte;
                if b == b'\n' {
                    if buf.last() == Some(&b'\r') {
                        buf.pop();
                    }
                    return Ok(Some(String::from_utf8_lossy(&buf).into_owned()));
                }
                buf.push(b);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(LineError::Io(e)),
        }
    }
}

/// A response ready to write.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// Whether to keep the connection open (ANDed with the request's wish).
    pub keep_alive: bool,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into(),
            keep_alive: true,
        }
    }

    /// A plain-text response (the `/metrics` exposition format).
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
            keep_alive: true,
        }
    }

    /// Serialize head + body onto the stream.
    pub fn write_to(&self, stream: &mut impl Write, keep_alive: bool) -> io::Result<()> {
        let head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// Canonical reason phrases for the statuses the service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        411 => "Length Required",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn read(raw: &[u8]) -> ReadOutcome {
        read_request(&mut BufReader::new(raw), 1024)
    }

    fn request(raw: &[u8]) -> Request {
        match read(raw) {
            ReadOutcome::Request(r) => *r,
            ReadOutcome::Closed => panic!("closed"),
            ReadOutcome::Error(e) => panic!("error: {e:?}"),
        }
    }

    fn error(raw: &[u8]) -> HttpError {
        match read(raw) {
            ReadOutcome::Error(e) => e,
            _ => panic!("expected an error for {:?}", String::from_utf8_lossy(raw)),
        }
    }

    #[test]
    fn parses_get_with_headers_and_query() {
        let r = request(b"GET /healthz?verbose=1 HTTP/1.1\r\nHost: x\r\nX-Trace: abc\r\n\r\n");
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/healthz");
        assert_eq!(r.query, "verbose=1");
        assert_eq!(r.header("x-trace"), Some("abc"));
        assert!(r.keep_alive, "HTTP/1.1 defaults to keep-alive");
        assert!(r.body.is_empty());
    }

    #[test]
    fn parses_post_with_body() {
        let r = request(b"POST /v1/score HTTP/1.1\r\nContent-Length: 4\r\n\r\n{\"a\"");
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, b"{\"a\"");
    }

    #[test]
    fn keep_alive_negotiation() {
        let r = request(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(!r.keep_alive);
        let r = request(b"GET / HTTP/1.0\r\n\r\n");
        assert!(!r.keep_alive, "HTTP/1.0 defaults to close");
        let r = request(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        assert!(r.keep_alive);
    }

    #[test]
    fn clean_eof_is_closed_not_error() {
        assert!(matches!(read(b""), ReadOutcome::Closed));
    }

    #[test]
    fn protocol_violations_are_structured_errors() {
        assert_eq!(error(b"GARBAGE\r\n\r\n").status, 400);
        assert_eq!(error(b"GET / HTTP/2.0\r\n\r\n").status, 505);
        assert_eq!(error(b"GET / HTTP/1.1\r\nbadheader\r\n\r\n").status, 400);
        assert_eq!(
            error(b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n").status,
            400
        );
        assert_eq!(
            error(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").status,
            501
        );
        let e = error(b"POST /x HTTP/1.1\r\n\r\n");
        assert_eq!((e.status, e.code), (411, "length_required"));
        assert!(e.keep_alive, "no unread body, connection stays usable");
    }

    #[test]
    fn oversized_body_is_413_and_closes() {
        let e = error(b"POST /x HTTP/1.1\r\nContent-Length: 99999\r\n\r\n");
        assert_eq!(e.status, 413);
        assert_eq!(e.code, "payload_too_large");
        assert!(!e.keep_alive, "unread body must close the connection");
    }

    #[test]
    fn truncated_body_is_400() {
        let e = error(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc");
        assert_eq!((e.status, e.code), (400, "truncated_body"));
    }

    #[test]
    fn oversized_head_is_431() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend(format!("x-pad: {}\r\n\r\n", "y".repeat(MAX_HEAD_BYTES)).into_bytes());
        assert_eq!(error(&raw).status, 431);
    }

    #[test]
    fn error_response_is_structured_json() {
        let e = HttpError::bad_request("bad_json", "oops: \"quoted\"");
        let resp = e.to_response();
        assert_eq!(resp.status, 400);
        let parsed = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let err = parsed.get("error").unwrap();
        assert_eq!(err.get("code").unwrap().as_str(), Some("bad_json"));
        assert_eq!(
            err.get("message").unwrap().as_str(),
            Some("oops: \"quoted\"")
        );
    }

    #[test]
    fn response_head_wire_shape() {
        let mut out = Vec::new();
        Response::json(200, "{}").write_to(&mut out, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
        let mut out = Vec::new();
        Response::text(503, "overload")
            .write_to(&mut out, false)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("connection: close\r\n"));
    }
}
