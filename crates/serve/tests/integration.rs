//! End-to-end tests: a real `certa-serve` on a loopback port, driven over
//! raw TCP — request framing, keep-alive, the determinism guarantee
//! (served bytes ≡ in-process bytes), structured error responses for
//! malformed/oversized bodies, and ops endpoints.

use certa_serve::router::explain_response_bytes;
use certa_serve::wire::Json;
use certa_serve::{ServeConfig, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::OnceLock;
use std::time::Duration;

/// One server shared by every test in this file (training even a smoke
/// model costs seconds; the tests exercise orthogonal paths of one live
/// instance, each on its own connection).
fn server() -> &'static Server {
    static SERVER: OnceLock<Server> = OnceLock::new();
    SERVER.get_or_init(|| {
        let server = Server::bind(
            ServeConfig {
                tau: 12,
                max_body_bytes: 64 * 1024,
                read_timeout: Duration::from_secs(2),
                ..ServeConfig::default()
            },
            "127.0.0.1:0",
        )
        .expect("bind loopback");
        // Preload so individual tests don't race the first training run.
        server
            .state()
            .registry
            .resolve("FZ/DeepMatcher")
            .expect("preload");
        server
    })
}

struct Reply {
    status: u16,
    headers: String,
    body: Vec<u8>,
}

impl Reply {
    fn json(&self) -> Json {
        Json::parse(std::str::from_utf8(&self.body).expect("utf8 body")).expect("json body")
    }

    fn error_code(&self) -> String {
        self.json()
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(|c| c.as_str())
            .unwrap_or_default()
            .to_string()
    }
}

/// Read one HTTP response off the stream — Content-Length framed or
/// `transfer-encoding: chunked` (large bodies stream; de-chunking must
/// yield the same bytes either way).
fn read_reply(s: &mut TcpStream) -> Reply {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        s.read_exact(&mut byte).expect("response head");
        head.push(byte[0]);
    }
    let head = String::from_utf8_lossy(&head).into_owned();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let chunked = head
        .lines()
        .any(|l| l.trim() == "transfer-encoding: chunked");
    let body = if chunked {
        let mut body = Vec::new();
        loop {
            // Chunk-size line in hex, then that many bytes, then CRLF.
            let mut line = Vec::new();
            while !line.ends_with(b"\r\n") {
                s.read_exact(&mut byte).expect("chunk size");
                line.push(byte[0]);
            }
            let size =
                usize::from_str_radix(std::str::from_utf8(&line).expect("utf8 size").trim(), 16)
                    .expect("hex chunk size");
            let mut chunk = vec![0u8; size + 2];
            s.read_exact(&mut chunk).expect("chunk body");
            if size == 0 {
                break;
            }
            chunk.truncate(size);
            body.extend_from_slice(&chunk);
        }
        body
    } else {
        let len: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("content-length:"))
            .expect("content-length header")
            .trim()
            .parse()
            .expect("numeric length");
        let mut body = vec![0u8; len];
        s.read_exact(&mut body).expect("response body");
        body
    };
    Reply {
        status,
        headers: head,
        body,
    }
}

fn connect() -> TcpStream {
    let s = TcpStream::connect(server().addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    s
}

fn post(s: &mut TcpStream, path: &str, body: &str) -> Reply {
    write!(
        s,
        "POST {path} HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("write request");
    read_reply(s)
}

fn get(s: &mut TcpStream, path: &str) -> Reply {
    write!(s, "GET {path} HTTP/1.1\r\n\r\n").expect("write request");
    read_reply(s)
}

#[test]
fn served_explanation_is_byte_identical_to_in_process() {
    let mut s = connect();
    let reply = post(
        &mut s,
        "/v1/explain",
        r#"{"model":"FZ/DeepMatcher","pair":{"left_id":0,"right_id":0}}"#,
    );
    assert_eq!(
        reply.status,
        200,
        "{}",
        String::from_utf8_lossy(&reply.body)
    );
    let entry = server().state().registry.resolve("FZ/DeepMatcher").unwrap();
    let u = entry.dataset.left().expect(certa_core::RecordId(0)).clone();
    let v = entry
        .dataset
        .right()
        .expect(certa_core::RecordId(0))
        .clone();
    let expected = explain_response_bytes(&entry, &u, &v);
    assert_eq!(
        reply.body, expected,
        "server wire bytes must equal the in-process computation"
    );
}

#[test]
fn keep_alive_pipelines_score_explain_and_batch_on_one_connection() {
    let mut s = connect();
    let score = post(
        &mut s,
        "/v1/score",
        r#"{"model":"FZ/DeepMatcher","pair":{"left_id":0,"right_id":0}}"#,
    );
    assert_eq!(score.status, 200);
    let single_score = score.json().get("score").unwrap().as_num().unwrap();

    let batch = post(
        &mut s,
        "/v1/score_batch",
        r#"{"model":"FZ/DeepMatcher","pairs":[{"left_id":0,"right_id":0},{"left_id":1,"right_id":1}]}"#,
    );
    assert_eq!(batch.status, 200);
    let results = batch.json();
    let results = results.get("results").unwrap().as_arr().unwrap().to_vec();
    assert_eq!(results.len(), 2);
    assert_eq!(
        results[0].get("score").unwrap().as_num(),
        Some(single_score)
    );

    let explain_batch = post(
        &mut s,
        "/v1/explain_batch",
        r#"{"model":"FZ/DeepMatcher","pairs":[{"left_id":0,"right_id":0}]}"#,
    );
    assert_eq!(explain_batch.status, 200);
    let parsed = explain_batch.json();
    let explanations = parsed.get("explanations").unwrap().as_arr().unwrap();
    assert_eq!(explanations.len(), 1);
    let pred_score = explanations[0]
        .get("prediction")
        .unwrap()
        .get("score")
        .unwrap()
        .as_num();
    assert_eq!(pred_score, Some(single_score));
}

#[test]
fn malformed_bodies_get_structured_400_and_connection_survives() {
    let mut s = connect();
    let bad = post(&mut s, "/v1/explain", "{this is not json");
    assert_eq!(bad.status, 400);
    assert_eq!(bad.error_code(), "bad_json");
    // Same connection still serves (the 400 path keeps it alive).
    let bad_shape = post(&mut s, "/v1/explain", r#"{"model":"FZ/DeepMatcher"}"#);
    assert_eq!(bad_shape.status, 400);
    assert_eq!(bad_shape.error_code(), "bad_request_body");
    let ok = get(&mut s, "/healthz");
    assert_eq!(ok.status, 200);
}

#[test]
fn oversized_body_gets_413_and_closes() {
    let mut s = connect();
    // Don't send the huge body — announce it and expect refusal up front.
    write!(
        s,
        "POST /v1/explain HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
        1024 * 1024
    )
    .unwrap();
    let reply = read_reply(&mut s);
    assert_eq!(reply.status, 413);
    assert_eq!(reply.error_code(), "payload_too_large");
    assert!(reply.headers.contains("connection: close"));
    // The server closes its end; our next read sees EOF.
    let mut rest = Vec::new();
    assert_eq!(s.read_to_end(&mut rest).unwrap_or(0), 0);
}

#[test]
fn unknown_names_get_404_with_codes() {
    let mut s = connect();
    let reply = post(
        &mut s,
        "/v1/explain",
        r#"{"model":"ZZ/DeepMatcher","pair":{"left_id":0,"right_id":0}}"#,
    );
    assert_eq!(
        (reply.status, reply.error_code().as_str()),
        (404, "unknown_dataset")
    );
    let reply = post(
        &mut s,
        "/v1/score",
        r#"{"model":"FZ/DeepMatcher","pair":{"left_id":123456,"right_id":0}}"#,
    );
    assert_eq!(
        (reply.status, reply.error_code().as_str()),
        (404, "unknown_record")
    );
}

#[test]
fn ops_endpoints_report_traffic_and_caches() {
    let mut s = connect();
    // Generate at least one API hit first.
    let _ = post(
        &mut s,
        "/v1/score",
        r#"{"model":"FZ/DeepMatcher","pair":{"left_id":0,"right_id":0}}"#,
    );
    let health = get(&mut s, "/healthz");
    assert_eq!(health.status, 200);
    let health = health.json();
    assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));
    assert!(health.get("models_loaded").unwrap().as_num().unwrap() >= 1.0);

    let metrics = get(&mut s, "/metrics");
    assert_eq!(metrics.status, 200);
    let text = String::from_utf8(metrics.body).unwrap();
    assert!(text.contains("certa_serve_requests_total{route=\"score\"}"));
    assert!(text.contains("certa_serve_request_latency_micros_count"));
    assert!(
        text.contains("certa_serve_cache_hits_total{model=\"FZ/DeepMatcher\"}"),
        "per-model cache stats missing:\n{text}"
    );
    assert!(text.contains("certa_serve_worker_panics_total 0"));
}
