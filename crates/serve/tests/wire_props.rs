//! Property tests for the wire format: `value → serialize → parse → value`
//! round-trips across escape sequences, unicode, nesting, and float edge
//! cases; non-finite numbers are rejected, never silently emitted.

use certa_serve::wire::Json;
use proptest::prelude::*;

/// A tiny splitmix64 so arbitrary *recursive* values can be grown from one
/// `u64` seed (the proptest shim's strategies are flat: ranges, strings,
/// vecs — tree-shaped values need a hand-rolled sampler).
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn string(&mut self) -> String {
        // Bias toward characters that exercise the escape paths: quotes,
        // backslashes, control characters, multi-byte unicode.
        const ALPHABET: &[char] = &[
            'a',
            'Z',
            '0',
            ' ',
            '"',
            '\\',
            '/',
            '\n',
            '\r',
            '\t',
            '\u{0}',
            '\u{7}',
            '\u{1b}',
            'é',
            'λ',
            '中',
            '🦀',
            '\u{10FFFF}',
            '\u{FFFD}',
        ];
        let len = self.below(8) as usize;
        (0..len)
            .map(|_| ALPHABET[self.below(ALPHABET.len() as u64) as usize])
            .collect()
    }

    fn number(&mut self) -> f64 {
        // Mix plain magnitudes with edge-case exacts: zeros, denormal-ish,
        // integer-valued, high-precision fractions.
        match self.below(8) {
            0 => 0.0,
            1 => -0.0,
            2 => self.below(1_000_000) as f64,
            3 => -(self.below(1_000_000) as f64),
            4 => self.below(1 << 53) as f64 / (1u64 << 20) as f64,
            5 => f64::MIN_POSITIVE,
            6 => f64::MAX,
            _ => (self.next() as f64 / u64::MAX as f64) * 2e9 - 1e9,
        }
    }

    fn value(&mut self, depth: usize) -> Json {
        let choices = if depth == 0 { 4 } else { 6 };
        match self.below(choices) {
            0 => Json::Null,
            1 => Json::Bool(self.next() & 1 == 1),
            2 => Json::Num(self.number()),
            3 => Json::Str(self.string()),
            4 => {
                let n = self.below(4) as usize;
                Json::Arr((0..n).map(|_| self.value(depth - 1)).collect())
            }
            _ => {
                let n = self.below(4) as usize;
                Json::Obj(
                    (0..n)
                        .map(|i| (format!("{}{i}", self.string()), self.value(depth - 1)))
                        .collect(),
                )
            }
        }
    }
}

proptest! {
    #[test]
    fn arbitrary_values_roundtrip(seed in 0u64..1_000_000_000) {
        let value = Mix(seed).value(4);
        let wire = value.serialize().expect("finite values always serialize");
        let back = Json::parse(&wire).expect("serializer output always parses");
        prop_assert_eq!(&back, &value);
        // And the byte form is a fixed point: serialize ∘ parse = id.
        prop_assert_eq!(back.serialize().unwrap(), wire);
    }

    #[test]
    fn arbitrary_strings_roundtrip(s in "[ -~]{0,40}", seed in 0u64..1_000_000) {
        // Printable-ASCII strategy string plus adversarial sampler string.
        for s in [s, Mix(seed).string()] {
            let value = Json::Str(s);
            let back = Json::parse(&value.serialize().unwrap()).unwrap();
            prop_assert_eq!(back, value);
        }
    }

    #[test]
    fn arbitrary_floats_roundtrip_exactly(bits in proptest::arbitrary::any::<u64>()) {
        let x = f64::from_bits(bits);
        let value = Json::Num(x);
        if x.is_finite() {
            let wire = value.serialize().unwrap();
            let back = Json::parse(&wire).unwrap();
            // Bit-exact round-trip (−0.0 keeps its sign through `Display`).
            match back {
                Json::Num(y) => prop_assert_eq!(
                    y.to_bits(), x.to_bits(),
                    "{} reparsed as {}", x, y
                ),
                other => prop_assert!(false, "number reparsed as {:?}", other),
            }
        } else {
            // NaN / ±inf must be rejected, not silently emitted.
            prop_assert!(value.serialize().is_err());
        }
    }

    #[test]
    fn parser_never_panics_on_arbitrary_bytes(s in "[ -~]{0,60}", seed in 0u64..1_000_000) {
        // Whatever the input, parse returns Ok or Err — it must not panic.
        let _ = Json::parse(&s);
        // Mutated valid documents stress the error paths harder.
        let mut mix = Mix(seed);
        let valid = mix.value(3).serialize().unwrap();
        let mut bytes = valid.into_bytes();
        if !bytes.is_empty() {
            let i = mix.below(bytes.len() as u64) as usize;
            bytes[i] = (mix.next() & 0x7F) as u8;
        }
        if let Ok(text) = String::from_utf8(bytes) {
            let _ = Json::parse(&text);
        }
    }
}

#[test]
fn nested_structures_with_unicode_keys_roundtrip() {
    let value = Json::Obj(vec![
        (
            "κλειδί \"quoted\"\n".to_string(),
            Json::Arr(vec![
                Json::Num(-0.0),
                Json::Num(1.0 / 3.0),
                Json::Arr(vec![Json::Obj(vec![("🦀".to_string(), Json::Null)])]),
            ]),
        ),
        ("plain".to_string(), Json::Bool(false)),
    ]);
    let wire = value.serialize().unwrap();
    assert_eq!(Json::parse(&wire).unwrap(), value);
}
