//! End-to-end warm start: a registry restarted from a `certa-store`
//! directory must serve **byte-identical** explanations to the registry
//! that trained the models — the serving half of the persistence
//! determinism contract (the codec half lives in
//! `crates/models/tests/store_props.rs`).

use certa_serve::router::handle;
use certa_serve::{Registry, Request, ServeConfig, ServerMetrics};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("certa-warmstart-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn post(path: &str, body: &str) -> Request {
    Request {
        method: "POST".to_string(),
        path: path.to_string(),
        query: String::new(),
        headers: vec![],
        body: body.as_bytes().to_vec(),
        keep_alive: true,
        http11: true,
    }
}

#[test]
fn restarted_registry_serves_byte_identical_explanations() {
    let dir = temp_dir("e2e");
    let config = ServeConfig {
        tau: 16,
        store_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };
    let metrics = ServerMetrics::default();
    let requests = [
        post(
            "/v1/explain",
            r#"{"model":"FZ/DeepMatcher","pair":{"left_id":0,"right_id":0}}"#,
        ),
        post(
            "/v1/explain_batch",
            r#"{"model":"FZ/DeepMatcher","pairs":[{"left_id":1,"right_id":2},{"left_id":3,"right_id":1}]}"#,
        ),
        post(
            "/v1/score",
            r#"{"model":"FZ/DeepMatcher","pair":{"left_id":2,"right_id":2}}"#,
        ),
    ];

    // Cold process: trains and persists.
    let cold = Registry::new(config.clone());
    let cold_bodies: Vec<Vec<u8>> = requests
        .iter()
        .map(|req| {
            let (_, resp) = handle(&cold, &metrics, req);
            assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
            resp.body
        })
        .collect();
    assert_eq!(cold.store_stats().misses, 1, "cold start trained once");

    // Restarted process: fresh registry over the same store directory.
    let warm = Registry::new(config);
    let warm_bodies: Vec<Vec<u8>> = requests
        .iter()
        .map(|req| {
            let (_, resp) = handle(&warm, &metrics, req);
            assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
            resp.body
        })
        .collect();
    let stats = warm.store_stats();
    assert_eq!(
        (stats.hits, stats.misses),
        (1, 0),
        "warm start must load, not retrain"
    );
    assert!(stats.load_micros > 0, "load latency was measured");

    for (i, (cold_body, warm_body)) in cold_bodies.iter().zip(&warm_bodies).enumerate() {
        assert_eq!(
            cold_body, warm_body,
            "request {i}: warm-started explanation bytes diverged"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
