//! The perturbing record function ψ (§3).
//!
//! `ψ(u, w, A)` produces a copy of the free record `u` where every attribute
//! in `A` has been replaced by the support record `w`'s value — "replacing
//! sequences of tokens of all the attributes in A in the free record with
//! their corresponding sequences of tokens from the support record".

use crate::lattice::AttrMask;
use certa_core::Record;

/// Apply ψ: copy the attributes selected by `mask` from `support` into a
/// fresh copy of `free`.
///
/// Since the copy-on-write refactor this is a **masked view**: one O(arity)
/// pass that picks each attribute's interned handle from `free` or `support`
/// directly off the mask bits — no `Vec<AttrId>` materialization and zero
/// string allocation (ψ never creates new values, it only re-combines
/// existing handles, so the score cache and featurizer memo see stable
/// content hashes / `ValueId`s).
pub fn perturb(free: &Record, support: &Record, mask: AttrMask) -> Record {
    debug_assert_eq!(
        free.arity(),
        support.arity(),
        "ψ requires same-schema records"
    );
    free.with_values_merged(support, |i| {
        i < AttrMask::BITS as usize && mask & (1 << i) != 0
    })
}

/// All perturbed copies `U_{w,a}` of Example 1: every subset containing
/// attribute `a_index` (excluding the empty set), paired with its mask.
///
/// Exposed mainly for testing and for exhaustive-mode experiments; the CERTA
/// algorithm itself enumerates lazily through the lattice.
pub fn copies_containing(
    free: &Record,
    support: &Record,
    a_index: usize,
) -> Vec<(AttrMask, Record)> {
    let arity = free.arity();
    assert!(a_index < arity);
    let full: AttrMask = ((1u64 << arity) - 1) as AttrMask;
    let bit = 1 << a_index;
    (1..=full)
        .filter(|m| m & bit != 0)
        .map(|m| (m, perturb(free, support, m)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use certa_core::RecordId;

    fn free() -> Record {
        Record::new(
            RecordId(1),
            vec![
                "sony bravia theater".into(),
                "black micro system".into(),
                String::new(),
            ],
        )
    }

    fn support() -> Record {
        Record::new(
            RecordId(2),
            vec![
                "altec lansing inmotion".into(),
                "portable audio system".into(),
                "49.99".into(),
            ],
        )
    }

    #[test]
    fn perturb_replaces_exactly_masked_attrs() {
        let p = perturb(&free(), &support(), 0b001);
        assert_eq!(p.values()[0], "altec lansing inmotion");
        assert_eq!(p.values()[1], "black micro system");
        assert_eq!(p.values()[2], "");

        let p = perturb(&free(), &support(), 0b101);
        assert_eq!(p.values()[0], "altec lansing inmotion");
        assert_eq!(p.values()[1], "black micro system");
        assert_eq!(p.values()[2], "49.99");
    }

    #[test]
    fn empty_mask_is_identity_copy() {
        let p = perturb(&free(), &support(), 0);
        assert_eq!(p.values(), free().values());
        assert_eq!(
            p.id(),
            free().id(),
            "perturbed copy keeps the free record's id"
        );
    }

    #[test]
    fn full_mask_becomes_support_values() {
        let p = perturb(&free(), &support(), 0b111);
        assert_eq!(p.values(), support().values());
    }

    #[test]
    fn example1_has_four_copies_containing_name() {
        // Example 1: U'_{u2, Name_Abt} holds 4 perturbed copies (subsets of
        // a 3-attribute schema containing Name).
        let copies = copies_containing(&free(), &support(), 0);
        assert_eq!(copies.len(), 4);
        for (mask, copy) in &copies {
            assert!(mask & 1 != 0);
            assert_eq!(copy.values()[0], "altec lansing inmotion");
        }
        // The specific copy ψ(u, w, {Name, Description}) from the example.
        let nd = copies.iter().find(|(m, _)| *m == 0b011).unwrap();
        assert_eq!(nd.1.values()[1], "portable audio system");
        assert_eq!(nd.1.values()[2], "");
    }

    #[test]
    fn originals_never_mutated() {
        let f = free();
        let s = support();
        let _ = perturb(&f, &s, 0b111);
        assert_eq!(f.values()[0], "sony bravia theater");
        assert_eq!(s.values()[2], "49.99");
    }
}
