//! Explanation types shared by CERTA and every baseline explainer.

use certa_core::{AttrId, Dataset, Matcher, Record, Side};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An attribute in the union schema `A_U ∪ A_V`: side plus position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AttrRef {
    /// Which source the attribute belongs to.
    pub side: Side,
    /// Attribute position within that side's schema.
    pub attr: AttrId,
}

impl AttrRef {
    /// Shorthand constructor.
    pub fn new(side: Side, attr: u16) -> Self {
        AttrRef {
            side,
            attr: AttrId(attr),
        }
    }

    /// Paper-style qualified name, e.g. `name_Abt`.
    pub fn qualified(&self, dataset: &Dataset) -> String {
        dataset.table(self.side).schema().qualified(self.attr)
    }
}

impl fmt::Display for AttrRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.side, self.attr)
    }
}

/// A saliency explanation: one importance score per attribute of `A_U ∪ A_V`
/// (§3.1). Scores are non-negative; for CERTA they are probabilities of
/// necessity in `[0, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SaliencyExplanation {
    left: Vec<f64>,
    right: Vec<f64>,
}

impl SaliencyExplanation {
    /// Build from per-side score vectors (indexed by attribute position).
    pub fn new(left: Vec<f64>, right: Vec<f64>) -> Self {
        SaliencyExplanation { left, right }
    }

    /// All-zero explanation with the given arities.
    pub fn zeros(left_arity: usize, right_arity: usize) -> Self {
        SaliencyExplanation {
            left: vec![0.0; left_arity],
            right: vec![0.0; right_arity],
        }
    }

    /// Score of one attribute.
    pub fn score(&self, attr: AttrRef) -> f64 {
        match attr.side {
            Side::Left => self.left[attr.attr.index()],
            Side::Right => self.right[attr.attr.index()],
        }
    }

    /// Set one attribute's score.
    pub fn set(&mut self, attr: AttrRef, value: f64) {
        match attr.side {
            Side::Left => self.left[attr.attr.index()] = value,
            Side::Right => self.right[attr.attr.index()] = value,
        }
    }

    /// Left-side scores in attribute order (the wire format serializes the
    /// two sides as separate arrays).
    pub fn left_scores(&self) -> &[f64] {
        &self.left
    }

    /// Right-side scores in attribute order.
    pub fn right_scores(&self) -> &[f64] {
        &self.right
    }

    /// Number of attributes covered (both sides).
    pub fn len(&self) -> usize {
        self.left.len() + self.right.len()
    }

    /// True when the explanation covers no attributes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All `(attribute, score)` pairs, left side first.
    pub fn iter(&self) -> impl Iterator<Item = (AttrRef, f64)> + '_ {
        let l = self
            .left
            .iter()
            .enumerate()
            .map(|(i, &s)| (AttrRef::new(Side::Left, i as u16), s));
        let r = self
            .right
            .iter()
            .enumerate()
            .map(|(i, &s)| (AttrRef::new(Side::Right, i as u16), s));
        l.chain(r)
    }

    /// Attributes ranked by descending score (ties broken by attribute order
    /// for determinism).
    pub fn ranked(&self) -> Vec<(AttrRef, f64)> {
        let mut v: Vec<(AttrRef, f64)> = self.iter().collect();
        v.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("finite saliency")
                .then(a.0.cmp(&b.0))
        });
        v
    }

    /// The `k` most salient attributes.
    pub fn top_k(&self, k: usize) -> Vec<AttrRef> {
        self.ranked().into_iter().take(k).map(|(a, _)| a).collect()
    }

    /// Largest absolute score (used for normalization by some baselines).
    pub fn max_abs(&self) -> f64 {
        self.iter().map(|(_, s)| s.abs()).fold(0.0, f64::max)
    }
}

/// One counterfactual example: a full record pair that flips the prediction,
/// plus which attributes were changed and the score the model gave it.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterfactualExample {
    /// The (possibly perturbed) left record.
    pub left: Record,
    /// The (possibly perturbed) right record.
    pub right: Record,
    /// The attributes whose values differ from the original input.
    pub changed: Vec<AttrRef>,
    /// Matching score of the counterfactual pair.
    pub score: f64,
}

/// A counterfactual explanation (§3.2): examples realizing the golden
/// attribute set `A★`, with its probability of sufficiency.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CounterfactualExplanation {
    /// The flip-realizing examples (empty when no flip was found).
    pub examples: Vec<CounterfactualExample>,
    /// The golden set `A★` of Equation 3.
    pub golden_set: Vec<AttrRef>,
    /// `χ_{A★}`: estimated probability that changing `A★` flips the
    /// prediction.
    pub sufficiency: f64,
}

impl CounterfactualExplanation {
    /// True when the method produced at least one counterfactual.
    pub fn found(&self) -> bool {
        !self.examples.is_empty()
    }
}

/// A saliency explanation method — CERTA or a baseline. Implementations may
/// use the dataset tables (to sample perturbation content) but the model only
/// through [`Matcher::score`].
pub trait SaliencyExplainer {
    /// Method name as used in the paper's tables (e.g. `"certa"`).
    fn name(&self) -> &str;

    /// Explain the prediction `M(⟨u, v⟩)`.
    fn explain_saliency(
        &self,
        matcher: &dyn Matcher,
        dataset: &Dataset,
        u: &Record,
        v: &Record,
    ) -> SaliencyExplanation;

    /// Explain a batch of predictions, returning one explanation per pair in
    /// input order. The default is a sequential loop; methods with a
    /// parallel engine (CERTA) override it. Overrides **must** return
    /// exactly what the sequential loop would — the evaluation grid treats
    /// the two as interchangeable.
    fn explain_saliency_batch(
        &self,
        matcher: &dyn Matcher,
        dataset: &Dataset,
        pairs: &[(&Record, &Record)],
    ) -> Vec<SaliencyExplanation> {
        pairs
            .iter()
            .map(|(u, v)| self.explain_saliency(matcher, dataset, u, v))
            .collect()
    }
}

/// A counterfactual explanation method.
pub trait CounterfactualExplainer {
    /// Method name as used in the paper's tables (e.g. `"dice"`).
    fn name(&self) -> &str;

    /// Produce counterfactual examples for the prediction `M(⟨u, v⟩)`.
    fn explain_counterfactual(
        &self,
        matcher: &dyn Matcher,
        dataset: &Dataset,
        u: &Record,
        v: &Record,
    ) -> CounterfactualExplanation;

    /// Explain a batch of predictions, one explanation per pair in input
    /// order. Same contract as
    /// [`SaliencyExplainer::explain_saliency_batch`]: overrides must be
    /// output-identical to the sequential loop.
    fn explain_counterfactual_batch(
        &self,
        matcher: &dyn Matcher,
        dataset: &Dataset,
        pairs: &[(&Record, &Record)],
    ) -> Vec<CounterfactualExplanation> {
        pairs
            .iter()
            .map(|(u, v)| self.explain_counterfactual(matcher, dataset, u, v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scores_roundtrip_by_side() {
        let mut s = SaliencyExplanation::zeros(2, 3);
        s.set(AttrRef::new(Side::Left, 1), 0.7);
        s.set(AttrRef::new(Side::Right, 2), 0.9);
        assert_eq!(s.score(AttrRef::new(Side::Left, 1)), 0.7);
        assert_eq!(s.score(AttrRef::new(Side::Right, 2)), 0.9);
        assert_eq!(s.score(AttrRef::new(Side::Left, 0)), 0.0);
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
        assert_eq!(s.left_scores(), &[0.0, 0.7]);
        assert_eq!(s.right_scores(), &[0.0, 0.0, 0.9]);
    }

    #[test]
    fn ranking_is_descending_and_deterministic() {
        let s = SaliencyExplanation::new(vec![0.5, 0.9], vec![0.9, 0.1]);
        let ranked = s.ranked();
        // Two 0.9 scores: Left(1) precedes Right(0) by attribute order.
        assert_eq!(ranked[0].0, AttrRef::new(Side::Left, 1));
        assert_eq!(ranked[1].0, AttrRef::new(Side::Right, 0));
        assert_eq!(ranked[2].0, AttrRef::new(Side::Left, 0));
        assert_eq!(ranked[3].0, AttrRef::new(Side::Right, 1));
        assert_eq!(s.top_k(2).len(), 2);
        assert_eq!(s.max_abs(), 0.9);
    }

    #[test]
    fn empty_counterfactual_reports_not_found() {
        let cf = CounterfactualExplanation::default();
        assert!(!cf.found());
        assert_eq!(cf.sufficiency, 0.0);
    }

    #[test]
    fn attr_ref_display() {
        assert_eq!(AttrRef::new(Side::Left, 2).to_string(), "L:a2");
        assert_eq!(AttrRef::new(Side::Right, 0).to_string(), "R:a0");
    }
}
