//! Probability-of-necessity bookkeeping (Equation 1).
//!
//! Frequentist estimate (§4): `φ_a = N[a] / f`, where `f` counts all flipped
//! lattice nodes across all triangles (tested **or** inferred — the worked
//! example of §4 is explicit about counting both) and `N[a]` counts the
//! flipped nodes whose changed attribute set contains `a`.

use crate::explanation::SaliencyExplanation;
use crate::lattice::{mask_attrs, AttrMask};
use certa_core::Side;

/// Accumulates flip counts across triangles and converts them into saliency
/// scores.
#[derive(Debug, Clone)]
pub struct NecessityCounter {
    left: Vec<u64>,
    right: Vec<u64>,
    flips: u64,
}

impl NecessityCounter {
    /// Counter for the two sides' arities.
    pub fn new(left_arity: usize, right_arity: usize) -> Self {
        NecessityCounter {
            left: vec![0; left_arity],
            right: vec![0; right_arity],
            flips: 0,
        }
    }

    /// Record one flipped lattice node on `side` with changed set `mask`.
    pub fn record_flip(&mut self, side: Side, mask: AttrMask) {
        self.flips += 1;
        let counts = match side {
            Side::Left => &mut self.left,
            Side::Right => &mut self.right,
        };
        for i in mask_attrs(mask) {
            if i < counts.len() {
                counts[i] += 1;
            }
        }
    }

    /// Total flipped nodes observed (the paper's `f`).
    pub fn total_flips(&self) -> u64 {
        self.flips
    }

    /// Finalize into Φ = N[a] / f (all-zero when no flips were seen).
    pub fn into_explanation(self) -> SaliencyExplanation {
        if self.flips == 0 {
            return SaliencyExplanation::zeros(self.left.len(), self.right.len());
        }
        let f = self.flips as f64;
        SaliencyExplanation::new(
            self.left.into_iter().map(|n| n as f64 / f).collect(),
            self.right.into_iter().map(|n| n as f64 / f).collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explanation::AttrRef;

    /// Reproduce the §4 worked example: lattices of Figure 9 over {N, D, P}.
    #[test]
    fn worked_example_probabilities() {
        let mut c = NecessityCounter::new(3, 3);
        // Flipped masks per triangle (N = bit0, D = bit1, P = bit2):
        let w1 = [0b001, 0b010, 0b011, 0b101, 0b110, 0b111];
        let w2 = [0b001, 0b011, 0b101, 0b110, 0b111];
        let w3 = [0b001, 0b011, 0b101, 0b111];
        let w4 = [0b011, 0b101, 0b110, 0b111];
        for masks in [&w1[..], &w2[..], &w3[..], &w4[..]] {
            for &m in masks {
                c.record_flip(Side::Left, m);
            }
        }
        assert_eq!(c.total_flips(), 19);
        let phi = c.into_explanation();
        let n = phi.score(AttrRef::new(Side::Left, 0));
        let d = phi.score(AttrRef::new(Side::Left, 1));
        let p = phi.score(AttrRef::new(Side::Left, 2));
        assert!((n - 15.0 / 19.0).abs() < 1e-12, "φ_N = {n}");
        assert!((p - 11.0 / 19.0).abs() < 1e-12, "φ_P = {p}");
        // Note: the paper states φ_D = 13/19 but its own definition yields
        // 12/19 on these lattices (D ∈ {D, ND, DP, NDP} in w1 = 4; w2: 3;
        // w3: 2; w4: 3). We implement the definition; the discrepancy is
        // recorded in EXPERIMENTS.md.
        assert!((d - 12.0 / 19.0).abs() < 1e-12, "φ_D = {d}");
        // Untouched right side stays zero.
        assert_eq!(phi.score(AttrRef::new(Side::Right, 0)), 0.0);
    }

    #[test]
    fn no_flips_yields_zero_explanation() {
        let c = NecessityCounter::new(2, 2);
        let phi = c.into_explanation();
        assert!(phi.iter().all(|(_, s)| s == 0.0));
    }

    #[test]
    fn saliency_bounded_by_one() {
        let mut c = NecessityCounter::new(1, 1);
        for _ in 0..5 {
            c.record_flip(Side::Left, 0b1);
        }
        let phi = c.into_explanation();
        assert_eq!(phi.score(AttrRef::new(Side::Left, 0)), 1.0);
        assert_eq!(phi.score(AttrRef::new(Side::Right, 0)), 0.0);
    }

    #[test]
    fn both_sides_share_the_flip_denominator() {
        let mut c = NecessityCounter::new(1, 1);
        c.record_flip(Side::Left, 0b1);
        c.record_flip(Side::Right, 0b1);
        let phi = c.into_explanation();
        // 2 flips total; each attribute appears in 1.
        assert_eq!(phi.score(AttrRef::new(Side::Left, 0)), 0.5);
        assert_eq!(phi.score(AttrRef::new(Side::Right, 0)), 0.5);
    }
}
