//! Algorithm 1: the CERTA explainer end-to-end.

use crate::config::CertaConfig;
use crate::counterfactual::SufficiencyCounter;
use crate::explanation::{
    AttrRef, CounterfactualExample, CounterfactualExplainer, CounterfactualExplanation,
    SaliencyExplainer, SaliencyExplanation,
};
use crate::lattice::{explore, mask_attrs, ExploreMode, LatticeStats};
use crate::perturb::perturb;
use crate::saliency::NecessityCounter;
use crate::triangles::{find_triangles, OpenTriangle, TriangleStats};
use certa_core::{AttrId, Dataset, MatchLabel, Matcher, Prediction, Record, Side};

/// The CERTA explainer (§3–4, Algorithm 1).
#[derive(Debug, Clone, Default)]
pub struct Certa {
    config: CertaConfig,
}

/// Everything CERTA produces for one prediction.
///
/// `PartialEq` compares every field exactly (scores included) — the batch
/// engine's determinism tests rely on batch and sequential runs producing
/// *identical* values, not merely close ones.
#[derive(Debug, Clone, PartialEq)]
pub struct CertaExplanation {
    /// The original prediction being explained.
    pub prediction: Prediction,
    /// Saliency scores Φ (probabilities of necessity).
    pub saliency: SaliencyExplanation,
    /// Counterfactual explanation (golden set `A★`, χ★, examples `E`).
    pub counterfactual: CounterfactualExplanation,
    /// Triangle-supply statistics (natural vs augmented).
    pub triangle_stats: TriangleStats,
    /// One lattice accounting record per explored triangle (Table 7 inputs).
    pub lattice_stats: Vec<LatticeStats>,
    /// Mean probability of sufficiency across observed subsets (Fig. 11a).
    pub mean_sufficiency: f64,
    /// Mean probability of necessity across attributes (Fig. 11b).
    pub mean_necessity: f64,
}

impl Certa {
    /// CERTA with explicit configuration.
    pub fn new(config: CertaConfig) -> Self {
        Certa { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &CertaConfig {
        &self.config
    }

    /// Explain the prediction `M(⟨u, v⟩)` — Algorithm 1.
    ///
    /// When the machine has more than one core (and `config.workers` permits
    /// it), the per-triangle lattice explorations run on a scoped worker
    /// pool; triangles are independent, and the flip counters are merged in
    /// triangle order afterwards, so the result is identical to a sequential
    /// run.
    pub fn explain(
        &self,
        matcher: &dyn Matcher,
        dataset: &Dataset,
        u: &Record,
        v: &Record,
    ) -> CertaExplanation {
        self.explain_impl(matcher, dataset, u, v, self.config.effective_workers())
    }

    /// Algorithm 1 with an explicit triangle-exploration worker count
    /// (`explain_batch` workers pass 1 — the batch layer already saturates
    /// the cores with whole pairs).
    pub(crate) fn explain_impl(
        &self,
        matcher: &dyn Matcher,
        dataset: &Dataset,
        u: &Record,
        v: &Record,
        triangle_workers: usize,
    ) -> CertaExplanation {
        let prediction = matcher.prediction(u, v);
        let y = prediction.label;
        let left_arity = dataset.left().schema().arity();
        let right_arity = dataset.right().schema().arity();

        // Line 8: open triangles, τ/2 per side (with §3.3 augmentation).
        let (triangles, triangle_stats) = find_triangles(matcher, dataset, u, v, y, &self.config);

        // Lines 9–17: explore one lattice per triangle (independent, so
        // parallelizable), then merge flip counts in triangle order — the
        // merge order, not the completion order, defines the output.
        let explorations = self.explore_all(matcher, u, v, &triangles, y, triangle_workers);
        let mut necessity = NecessityCounter::new(left_arity, right_arity);
        let mut sufficiency = SufficiencyCounter::new();
        let mut lattice_stats = Vec::with_capacity(triangles.len());
        for (t, exploration) in triangles.iter().zip(&explorations) {
            sufficiency.record_triangle(t.side);
            lattice_stats.push(exploration.stats());
            for mask in exploration.flipped_masks() {
                necessity.record_flip(t.side, mask);
                sufficiency.record_flip(t.side, mask);
            }
        }

        // Lines 18–20: Φ = N[a] / f.
        let mean_sufficiency = sufficiency.mean_chi();
        let saliency = necessity.into_explanation();
        let mean_necessity = mean_necessity_of(&saliency);

        // Lines 21–33: golden set A★ and the counterfactual examples E.
        let counterfactual = match sufficiency.golden_set(left_arity, right_arity) {
            None => CounterfactualExplanation::default(),
            Some((side, mask, chi)) => {
                self.materialize_examples(matcher, u, v, &triangles, y, side, mask, chi)
            }
        };

        CertaExplanation {
            prediction,
            saliency,
            counterfactual,
            triangle_stats,
            lattice_stats,
            mean_sufficiency,
            mean_necessity,
        }
    }

    /// Explore every triangle's lattice, in triangle order. With more than
    /// one worker and more than one triangle, exploration is fanned out over
    /// the engine's work-stealing pool ([`crate::batch::run_indexed`]); each
    /// exploration is deterministic in isolation, so only wall-clock time
    /// depends on the schedule.
    fn explore_all(
        &self,
        matcher: &dyn Matcher,
        u: &Record,
        v: &Record,
        triangles: &[OpenTriangle],
        y: MatchLabel,
        workers: usize,
    ) -> Vec<crate::lattice::Exploration> {
        crate::batch::run_indexed(triangles.len(), workers, |i| {
            self.explore_triangle(matcher, u, v, &triangles[i], y)
        })
    }

    /// Explore one triangle's lattice, scoring perturbed copies through the
    /// black-box matcher.
    fn explore_triangle(
        &self,
        matcher: &dyn Matcher,
        u: &Record,
        v: &Record,
        t: &OpenTriangle,
        y: MatchLabel,
    ) -> crate::lattice::Exploration {
        let free = match t.side {
            Side::Left => u,
            Side::Right => v,
        };
        let arity = free.arity();
        let mode = if self.config.monotone {
            ExploreMode::Monotone
        } else {
            ExploreMode::Exhaustive
        };
        // Degenerate single-attribute schemas have only the full set — test
        // it regardless of footnote 2 or nothing would ever be explored.
        let test_full = self.config.test_full_set || arity == 1;
        explore(arity, mode, test_full, |mask| {
            let perturbed = perturb(free, &t.support, mask);
            let score = match t.side {
                Side::Left => matcher.score(&perturbed, v),
                Side::Right => matcher.score(u, &perturbed),
            };
            MatchLabel::from_score(score) != y
        })
    }

    /// Build the example set `E`: ψ(free, w, A★) for every triangle on the
    /// golden side, keeping only pairs that actually flip (lines 30–33; the
    /// §4 example materializes A★ across all of W).
    #[allow(clippy::too_many_arguments)]
    fn materialize_examples(
        &self,
        matcher: &dyn Matcher,
        u: &Record,
        v: &Record,
        triangles: &[OpenTriangle],
        y: MatchLabel,
        side: Side,
        mask: crate::lattice::AttrMask,
        chi: f64,
    ) -> CounterfactualExplanation {
        let golden_set: Vec<AttrRef> = mask_attrs(mask)
            .map(|i| AttrRef {
                side,
                attr: AttrId(i as u16),
            })
            .collect();
        let mut examples = Vec::new();
        for t in triangles.iter().filter(|t| t.side == side) {
            let (left, right, score) = match side {
                Side::Left => {
                    let perturbed = perturb(u, &t.support, mask);
                    let s = matcher.score(&perturbed, v);
                    (perturbed, v.clone(), s)
                }
                Side::Right => {
                    let perturbed = perturb(v, &t.support, mask);
                    let s = matcher.score(u, &perturbed);
                    (u.clone(), perturbed, s)
                }
            };
            if MatchLabel::from_score(score) != y {
                examples.push(CounterfactualExample {
                    left,
                    right,
                    changed: golden_set.clone(),
                    score,
                });
            }
        }
        // Keep the closest examples (token-overlap proximity to the original
        // pair), mirroring the reference implementation's ranked, capped
        // counterfactual list.
        if examples.len() > self.config.max_examples {
            let mut ranked: Vec<(f64, CounterfactualExample)> = examples
                .into_iter()
                .map(|ex| {
                    let p = pair_token_overlap(u, &ex.left) + pair_token_overlap(v, &ex.right);
                    (p, ex)
                })
                .collect();
            ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite proximity"));
            ranked.truncate(self.config.max_examples);
            examples = ranked.into_iter().map(|(_, ex)| ex).collect();
        }
        CounterfactualExplanation {
            examples,
            golden_set,
            sufficiency: chi,
        }
    }
}

/// Mean probability of necessity — the Figure 11(b) statistic.
///
/// The paper's mean is taken over the attributes that **participate in at
/// least one flip** (the attributes Φ actually scores); attributes the
/// lattice walk never implicated carry no necessity evidence and are *not*
/// part of the denominator. Averaging over the whole union schema instead
/// (an earlier bug here) deflated the curve on wide schemas — e.g. a
/// one-key world where Φ = 1/2 on each side's key reports ½, not ⅙.
pub fn mean_necessity_of(saliency: &SaliencyExplanation) -> f64 {
    let mut sum = 0.0;
    let mut flipped_attrs = 0usize;
    for (_, s) in saliency.iter() {
        if s > 0.0 {
            sum += s;
            flipped_attrs += 1;
        }
    }
    if flipped_attrs == 0 {
        0.0
    } else {
        sum / flipped_attrs as f64
    }
}

/// Mean per-attribute token-set overlap between two same-schema records —
/// a dependency-free proximity used only for ranking the example list.
fn pair_token_overlap(original: &Record, modified: &Record) -> f64 {
    let arity = original.arity().min(modified.arity());
    if arity == 0 {
        return 1.0;
    }
    let mut total = 0.0;
    for i in 0..arity {
        let a: certa_core::hash::FxHashSet<&str> =
            original.values()[i].split_whitespace().collect();
        let b: certa_core::hash::FxHashSet<&str> =
            modified.values()[i].split_whitespace().collect();
        total += if a.is_empty() && b.is_empty() {
            1.0
        } else {
            let inter = a.intersection(&b).count() as f64;
            let union = (a.len() + b.len()) as f64 - inter;
            if union == 0.0 {
                1.0
            } else {
                inter / union
            }
        };
    }
    total / arity as f64
}

impl SaliencyExplainer for Certa {
    fn name(&self) -> &str {
        "certa"
    }

    fn explain_saliency(
        &self,
        matcher: &dyn Matcher,
        dataset: &Dataset,
        u: &Record,
        v: &Record,
    ) -> SaliencyExplanation {
        self.explain(matcher, dataset, u, v).saliency
    }

    fn explain_saliency_batch(
        &self,
        matcher: &dyn Matcher,
        dataset: &Dataset,
        pairs: &[(&Record, &Record)],
    ) -> Vec<SaliencyExplanation> {
        self.explain_batch(matcher, dataset, pairs)
            .into_iter()
            .map(|e| e.saliency)
            .collect()
    }
}

impl CounterfactualExplainer for Certa {
    fn name(&self) -> &str {
        "certa"
    }

    fn explain_counterfactual(
        &self,
        matcher: &dyn Matcher,
        dataset: &Dataset,
        u: &Record,
        v: &Record,
    ) -> CounterfactualExplanation {
        self.explain(matcher, dataset, u, v).counterfactual
    }

    fn explain_counterfactual_batch(
        &self,
        matcher: &dyn Matcher,
        dataset: &Dataset,
        pairs: &[(&Record, &Record)],
    ) -> Vec<CounterfactualExplanation> {
        self.explain_batch(matcher, dataset, pairs)
            .into_iter()
            .map(|e| e.counterfactual)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certa_core::{FnMatcher, LabeledPair, RecordId, Schema, Table};

    /// Toy world: records have attributes [key, noise, price]; the matcher
    /// matches iff the `key` attribute values are equal. `key` is therefore
    /// the (only) necessary and sufficient attribute.
    fn dataset() -> Dataset {
        let ls = Schema::shared("U", ["key", "noise", "price"]);
        let rs = Schema::shared("V", ["key", "noise", "price"]);
        let mk = |i: u32, key: &str| {
            Record::new(
                RecordId(i),
                vec![
                    key.to_string(),
                    format!("noise{i} extra pad"),
                    format!("{}", 10 + i),
                ],
            )
        };
        let left = Table::from_records(
            ls,
            (0..12)
                .map(|i| mk(i, if i < 6 { "alpha" } else { "beta" }))
                .collect(),
        )
        .unwrap();
        let right = Table::from_records(
            rs,
            (0..12)
                .map(|i| mk(i, if i < 6 { "alpha" } else { "beta" }))
                .collect(),
        )
        .unwrap();
        Dataset::new(
            "toy",
            left,
            right,
            vec![LabeledPair::new(RecordId(0), RecordId(0), true)],
            vec![LabeledPair::new(RecordId(0), RecordId(6), false)],
        )
        .unwrap()
    }

    fn key_matcher() -> impl Matcher {
        FnMatcher::new("key-eq", |u: &Record, v: &Record| {
            if u.values()[0] == v.values()[0] {
                0.92
            } else {
                0.08
            }
        })
    }

    fn certa_small() -> Certa {
        Certa::new(CertaConfig {
            num_triangles: 12,
            use_augmentation: false,
            ..Default::default()
        })
    }

    #[test]
    fn key_attribute_dominates_saliency() {
        let d = dataset();
        let m = key_matcher();
        let u = d.left().expect(RecordId(0));
        let v = d.right().expect(RecordId(0)); // alpha-alpha → Match
        let exp = certa_small().explain(&m, &d, u, v);
        assert!(exp.prediction.is_match());
        let phi = &exp.saliency;
        let key_l = phi.score(AttrRef::new(Side::Left, 0));
        let noise_l = phi.score(AttrRef::new(Side::Left, 1));
        let price_l = phi.score(AttrRef::new(Side::Left, 2));
        assert!(key_l > noise_l, "key {key_l} vs noise {noise_l}");
        assert!(key_l > price_l);
        // Algorithm 1 shares the flip denominator `f` across both sides'
        // triangles; in this symmetric toy world every left flip contains
        // the left key and every right flip the right key, so each side's
        // key lands at exactly 1/2.
        assert_eq!(key_l, 0.5, "every left flip changes the left key");
        assert_eq!(phi.score(AttrRef::new(Side::Right, 0)), 0.5);
        // Ranked top attribute must be a key attribute (either side).
        let top = phi.ranked()[0].0;
        assert_eq!(top.attr, AttrId(0));
    }

    #[test]
    fn golden_set_is_the_key_singleton() {
        let d = dataset();
        let m = key_matcher();
        let u = d.left().expect(RecordId(0));
        let v = d.right().expect(RecordId(0));
        let exp = certa_small().explain(&m, &d, u, v);
        let cf = &exp.counterfactual;
        assert!(cf.found());
        assert_eq!(cf.golden_set.len(), 1);
        assert_eq!(cf.golden_set[0].attr, AttrId(0));
        assert_eq!(cf.sufficiency, 1.0, "copying the key always flips");
        // Every example truly flips the Match prediction to NonMatch.
        for ex in &cf.examples {
            assert!(ex.score <= 0.5, "example score {}", ex.score);
            assert_eq!(ex.changed, cf.golden_set);
            // The changed side's key became "beta".
            let changed_key = match cf.golden_set[0].side {
                Side::Left => &ex.left.values()[0],
                Side::Right => &ex.right.values()[0],
            };
            assert_eq!(changed_key, "beta");
        }
    }

    #[test]
    fn nonmatch_explanation_flips_to_match() {
        let d = dataset();
        let m = key_matcher();
        let u = d.left().expect(RecordId(0)); // alpha
        let v = d.right().expect(RecordId(6)); // beta → NonMatch
        let exp = certa_small().explain(&m, &d, u, v);
        assert!(!exp.prediction.is_match());
        let cf = &exp.counterfactual;
        assert!(cf.found());
        for ex in &cf.examples {
            assert!(ex.score > 0.5, "counterfactual of a non-match must match");
        }
        assert_eq!(cf.golden_set[0].attr, AttrId(0));
    }

    #[test]
    fn lattice_stats_reflect_monotone_savings() {
        let d = dataset();
        let m = key_matcher();
        let u = d.left().expect(RecordId(0));
        let v = d.right().expect(RecordId(0));
        let exp = certa_small().explain(&m, &d, u, v);
        assert!(!exp.lattice_stats.is_empty());
        for ls in &exp.lattice_stats {
            assert_eq!(ls.expected, 6); // 2^3 − 2
                                        // key flips at level 1 → savings kick in.
            assert!(ls.performed < ls.expected, "{ls:?}");
        }
        assert!(exp.triangle_stats.total() == exp.lattice_stats.len());
    }

    #[test]
    fn exhaustive_mode_tests_everything() {
        let d = dataset();
        let m = key_matcher();
        let u = d.left().expect(RecordId(0));
        let v = d.right().expect(RecordId(0));
        let certa = Certa::new(CertaConfig {
            num_triangles: 4,
            use_augmentation: false,
            monotone: false,
            ..Default::default()
        });
        let exp = certa.explain(&m, &d, u, v);
        for ls in &exp.lattice_stats {
            assert_eq!(ls.performed, 6);
            assert_eq!(ls.saved(), 0);
        }
    }

    #[test]
    fn deterministic_explanations() {
        let d = dataset();
        let m = key_matcher();
        let u = d.left().expect(RecordId(0));
        let v = d.right().expect(RecordId(0));
        let e1 = certa_small().explain(&m, &d, u, v);
        let e2 = certa_small().explain(&m, &d, u, v);
        assert_eq!(e1.saliency, e2.saliency);
        assert_eq!(e1.counterfactual.golden_set, e2.counterfactual.golden_set);
        assert_eq!(
            e1.counterfactual.examples.len(),
            e2.counterfactual.examples.len()
        );
    }

    #[test]
    fn trait_objects_work() {
        let d = dataset();
        let m = key_matcher();
        let u = d.left().expect(RecordId(0));
        let v = d.right().expect(RecordId(0));
        let certa = certa_small();
        let s: &dyn SaliencyExplainer = &certa;
        let c: &dyn CounterfactualExplainer = &certa;
        assert_eq!(s.name(), "certa");
        assert_eq!(c.name(), "certa");
        let phi = s.explain_saliency(&m, &d, u, v);
        assert!(phi.max_abs() > 0.0);
        let cf = c.explain_counterfactual(&m, &d, u, v);
        assert!(cf.found());
    }

    #[test]
    fn example_cap_keeps_closest_flips() {
        let d = dataset();
        let m = key_matcher();
        let u = d.left().expect(RecordId(0));
        let v = d.right().expect(RecordId(0));
        let capped = Certa::new(CertaConfig {
            num_triangles: 12,
            use_augmentation: false,
            max_examples: 2,
            ..Default::default()
        });
        let exp = capped.explain(&m, &d, u, v);
        assert!(exp.counterfactual.examples.len() <= 2);
        for ex in &exp.counterfactual.examples {
            assert!(ex.score <= 0.5, "capped examples still flip");
        }
        // The uncapped run returns strictly more examples here.
        let uncapped = Certa::new(CertaConfig {
            num_triangles: 12,
            use_augmentation: false,
            max_examples: usize::MAX,
            ..Default::default()
        });
        assert!(uncapped.explain(&m, &d, u, v).counterfactual.examples.len() > 2);
    }

    #[test]
    fn mean_probabilities_are_populated() {
        let d = dataset();
        let m = key_matcher();
        let u = d.left().expect(RecordId(0));
        let v = d.right().expect(RecordId(0));
        let exp = certa_small().explain(&m, &d, u, v);
        assert!(exp.mean_sufficiency > 0.0 && exp.mean_sufficiency <= 1.0);
        assert!(exp.mean_necessity > 0.0 && exp.mean_necessity <= 1.0);
    }

    /// Regression: Figure 11(b)'s denominator. The §4 worked example yields
    /// Φ = {15/19, 12/19, 11/19} over the three left attributes and zero on
    /// the untouched right side; the mean probability of necessity averages
    /// the three scored attributes — 38/57 ≈ 0.667 — not the whole
    /// six-attribute union schema (which would halve it to 1/3).
    #[test]
    fn mean_necessity_excludes_never_flipped_attributes() {
        let phi = SaliencyExplanation::new(
            vec![15.0 / 19.0, 12.0 / 19.0, 11.0 / 19.0],
            vec![0.0, 0.0, 0.0],
        );
        let m = mean_necessity_of(&phi);
        assert!((m - 38.0 / 57.0).abs() < 1e-12, "got {m}, want 38/57");
        // All-zero saliency (no flips anywhere) stays well-defined.
        assert_eq!(mean_necessity_of(&SaliencyExplanation::zeros(3, 3)), 0.0);
        assert_eq!(
            mean_necessity_of(&SaliencyExplanation::new(vec![], vec![])),
            0.0
        );
    }

    #[test]
    fn explanation_mean_necessity_uses_flipped_attr_denominator() {
        // Asymmetric world: every right record keys "alpha", so the Match
        // prediction ⟨0, 0⟩ has no right-side supports — right attributes
        // can never flip and must stay out of the Fig. 11(b) denominator.
        let ls = Schema::shared("U", ["key", "noise", "price"]);
        let rs = Schema::shared("V", ["key", "noise", "price"]);
        let mk = |i: u32, key: &str| {
            Record::new(
                RecordId(i),
                vec![
                    key.to_string(),
                    format!("noise{i} extra pad"),
                    format!("{}", 10 + i),
                ],
            )
        };
        let left = Table::from_records(
            ls,
            (0..12)
                .map(|i| mk(i, if i < 6 { "alpha" } else { "beta" }))
                .collect(),
        )
        .unwrap();
        let right = Table::from_records(rs, (0..12).map(|i| mk(i, "alpha")).collect()).unwrap();
        let d = Dataset::new(
            "asym",
            left,
            right,
            vec![LabeledPair::new(RecordId(0), RecordId(0), true)],
            vec![LabeledPair::new(RecordId(0), RecordId(0), true)],
        )
        .unwrap();
        let m = key_matcher();
        let u = d.left().expect(RecordId(0));
        let v = d.right().expect(RecordId(0));
        let exp = certa_small().explain(&m, &d, u, v);
        let nonzero: Vec<f64> = exp
            .saliency
            .iter()
            .map(|(_, s)| s)
            .filter(|&s| s > 0.0)
            .collect();
        assert!(
            !nonzero.is_empty() && nonzero.len() < exp.saliency.len(),
            "world must mix flipped and never-flipped attributes"
        );
        let expected = nonzero.iter().sum::<f64>() / nonzero.len() as f64;
        assert_eq!(exp.mean_necessity, expected);
        // The all-attributes average is strictly smaller — the old buggy
        // denominator deflated the statistic on never-flipped attributes.
        let deflated = exp.saliency.iter().map(|(_, s)| s).sum::<f64>() / exp.saliency.len() as f64;
        assert!(
            exp.mean_necessity > deflated,
            "never-flipped attributes must not deflate the mean"
        );
    }
}
