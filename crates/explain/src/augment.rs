//! Data augmentation for support-record supply (§3.3).
//!
//! When a table cannot provide enough open triangles, CERTA generates extra
//! candidate records: "For each record w in U, we generate a new set of
//! records W_w, by changing each possible combination of attributes in w by
//! dropping the first-k or the last-k tokens, with k varying between 1 and
//! n − 1." Each candidate still has to pass the support test
//! `M(⟨w', v⟩) = ȳ` before becoming a triangle.

use certa_core::tokens::{drop_first_k, drop_last_k, token_count};
use certa_core::{AttrId, Record};

/// Enumerate augmented variants of `record`, most conservative first
/// (single-attribute, small `k`), up to `budget` variants.
///
/// The full combinatorial set of the paper is exponential; candidates are
/// ordered so that truncation keeps the most label-preserving variants:
/// all single-attribute drops (k ascending), then pairwise-attribute drops.
pub fn augmented_candidates(record: &Record, budget: usize) -> Vec<Record> {
    let mut out = Vec::new();
    if budget == 0 {
        return out;
    }
    let arity = record.arity();

    // Pass 1: single-attribute first-k / last-k drops, k ascending.
    let max_tokens = record
        .values()
        .iter()
        .map(|v| token_count(v))
        .max()
        .unwrap_or(0);
    for k in 1..max_tokens.max(1) {
        for a in 0..arity {
            let attr = AttrId(a as u16);
            let value = record.value(attr);
            for new_value in [drop_first_k(value, k), drop_last_k(value, k)]
                .into_iter()
                .flatten()
            {
                out.push(record.with_value(attr, new_value));
                if out.len() >= budget {
                    return out;
                }
            }
        }
    }

    // Pass 2: drop one token from each of two attributes simultaneously.
    for a in 0..arity {
        for b in (a + 1)..arity {
            let (ia, ib) = (AttrId(a as u16), AttrId(b as u16));
            for (fa, fb) in [
                (
                    drop_first_k(record.value(ia), 1),
                    drop_first_k(record.value(ib), 1),
                ),
                (
                    drop_last_k(record.value(ia), 1),
                    drop_last_k(record.value(ib), 1),
                ),
            ] {
                if let (Some(va), Some(vb)) = (fa, fb) {
                    let mut r = record.with_value(ia, va);
                    r.set_value(ib, vb);
                    out.push(r);
                    if out.len() >= budget {
                        return out;
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use certa_core::RecordId;

    fn rec() -> Record {
        Record::new(RecordId(3), vec!["a b c d".into(), "x y".into()])
    }

    #[test]
    fn single_attribute_drops_come_first() {
        let cands = augmented_candidates(&rec(), 100);
        assert!(!cands.is_empty());
        // First candidates: k=1 drops of attribute 0 and 1.
        assert_eq!(cands[0].values()[0], "b c d"); // drop first 1 of attr 0
        assert_eq!(cands[0].values()[1], "x y");
        assert_eq!(cands[1].values()[0], "a b c"); // drop last 1 of attr 0
        assert_eq!(cands[2].values()[1], "y"); // drop first 1 of attr 1
        assert_eq!(cands[3].values()[1], "x"); // drop last 1 of attr 1
    }

    #[test]
    fn k_ranges_to_token_count_minus_one() {
        let cands = augmented_candidates(&rec(), 100);
        // Attribute 0 has 4 tokens → k ∈ {1,2,3}: 6 variants; attribute 1
        // has 2 tokens → k ∈ {1}: 2 variants. Plus pass-2 pairs: 2.
        let singles = cands
            .iter()
            .filter(|c| (c.values()[0] != "a b c d") ^ (c.values()[1] != "x y"))
            .count();
        assert_eq!(singles, 8);
        assert_eq!(cands.len(), 10);
        // No variant drops *all* tokens.
        assert!(cands
            .iter()
            .all(|c| !c.values()[0].is_empty() || !c.values()[1].is_empty()));
    }

    #[test]
    fn budget_truncates() {
        let cands = augmented_candidates(&rec(), 3);
        assert_eq!(cands.len(), 3);
        assert!(augmented_candidates(&rec(), 0).is_empty());
    }

    #[test]
    fn single_token_values_produce_no_variants() {
        let r = Record::new(RecordId(0), vec!["single".into()]);
        assert!(augmented_candidates(&r, 10).is_empty());
    }

    #[test]
    fn variants_preserve_id_and_arity() {
        for c in augmented_candidates(&rec(), 50) {
            assert_eq!(c.id(), RecordId(3));
            assert_eq!(c.arity(), 2);
        }
    }
}
