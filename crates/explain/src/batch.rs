//! The parallel batch explanation engine.
//!
//! CERTA's cost is dominated by black-box matcher invocations, and distinct
//! predictions are embarrassingly parallel: nothing about explaining
//! `⟨u₁, v₁⟩` depends on `⟨u₂, v₂⟩`. [`Certa::explain_batch`] exploits that
//! with a **work-stealing worker pool**: scoped threads claim pair indices
//! from a shared atomic counter (so a pair with an expensive lattice doesn't
//! stall a statically-assigned partner) and write each result into its
//! input-index slot.
//!
//! ## Determinism guarantee
//!
//! `explain_batch` is **output-identical** to a sequential loop of
//! [`Certa::explain`] calls over the same pairs, in input order — same
//! saliency, golden set, counterfactual examples, lattice statistics, and
//! mean probabilities, byte for byte. This holds because each per-pair
//! explanation is deterministic in the [`CertaConfig`](crate::CertaConfig)
//! (seeded candidate scans, fixed lattice visit order, counters merged in
//! triangle order) and workers never share mutable state — only the slot
//! they own. Scheduling affects wall-clock time, never values. The property
//! is enforced by a property test (`tests/batch_props.rs`).
//!
//! Workers explain their pairs with sequential triangle exploration
//! (`triangle_workers = 1`): the pool already saturates the cores with whole
//! pairs, and nesting a second fan-out per pair would oversubscribe them.

use crate::certa::{Certa, CertaExplanation};
use certa_core::{Dataset, LabeledPair, Matcher, Record};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Run `f(i)` for every `i in 0..len` on a work-stealing scoped-thread pool
/// and return the results in index order. The single shared concurrency
/// primitive of the engine — `explain_batch` steals whole pairs through it
/// and `explain` steals triangles. `workers <= 1` (or `len <= 1`) runs
/// inline with no threads.
pub(crate) fn run_indexed<T: Send + Sync>(
    len: usize,
    workers: usize,
    f: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    let workers = workers.min(len);
    if workers <= 1 {
        return (0..len).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<OnceLock<T>> = (0..len).map(|_| OnceLock::new()).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= len {
                    break;
                }
                let value = f(i);
                slots[i]
                    .set(value)
                    .unwrap_or_else(|_| unreachable!("index {i} claimed once"));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every slot filled"))
        .collect()
}

impl Certa {
    /// Explain a batch of predictions in parallel; results are returned in
    /// input order and are identical to a loop of [`Certa::explain`] calls.
    ///
    /// The worker count comes from `config.workers` (`0` = one per core),
    /// clamped to the batch size. With one worker (or one pair) this *is*
    /// the sequential loop.
    pub fn explain_batch(
        &self,
        matcher: &dyn Matcher,
        dataset: &Dataset,
        pairs: &[(&Record, &Record)],
    ) -> Vec<CertaExplanation> {
        run_indexed(pairs.len(), self.config().effective_workers(), |i| {
            let (u, v) = pairs[i];
            self.explain_impl(matcher, dataset, u, v, 1)
        })
    }

    /// [`Certa::explain_batch`] over labeled pairs resolved against the
    /// dataset — the shape every evaluation-grid call site holds.
    pub fn explain_labeled(
        &self,
        matcher: &dyn Matcher,
        dataset: &Dataset,
        pairs: &[LabeledPair],
    ) -> Vec<CertaExplanation> {
        let refs: Vec<(&Record, &Record)> = pairs
            .iter()
            .map(|lp| dataset.expect_pair(lp.pair))
            .collect();
        self.explain_batch(matcher, dataset, &refs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CertaConfig;
    use certa_core::{FnMatcher, RecordId, Schema, Side, Table};

    fn dataset() -> Dataset {
        let ls = Schema::shared("U", ["key", "noise", "price"]);
        let rs = Schema::shared("V", ["key", "noise", "price"]);
        let mk = |i: u32, key: &str| {
            Record::new(
                RecordId(i),
                vec![
                    key.to_string(),
                    format!("noise{i} extra pad"),
                    format!("{}", 10 + i),
                ],
            )
        };
        let left = Table::from_records(
            ls,
            (0..12)
                .map(|i| mk(i, if i < 6 { "alpha" } else { "beta" }))
                .collect(),
        )
        .unwrap();
        let right = Table::from_records(
            rs,
            (0..12)
                .map(|i| mk(i, if i < 6 { "alpha" } else { "beta" }))
                .collect(),
        )
        .unwrap();
        Dataset::new(
            "toy",
            left,
            right,
            vec![LabeledPair::new(RecordId(0), RecordId(0), true)],
            vec![
                LabeledPair::new(RecordId(0), RecordId(0), true),
                LabeledPair::new(RecordId(1), RecordId(2), true),
                LabeledPair::new(RecordId(0), RecordId(6), false),
                LabeledPair::new(RecordId(7), RecordId(8), true),
                LabeledPair::new(RecordId(5), RecordId(9), false),
            ],
        )
        .unwrap()
    }

    fn key_matcher() -> impl Matcher {
        FnMatcher::new("key-eq", |u: &Record, v: &Record| {
            if u.values()[0] == v.values()[0] {
                0.92
            } else {
                0.08
            }
        })
    }

    fn pair_refs(d: &Dataset) -> Vec<(&Record, &Record)> {
        d.split(certa_core::Split::Test)
            .iter()
            .map(|lp| d.expect_pair(lp.pair))
            .collect()
    }

    fn certa(workers: usize) -> Certa {
        Certa::new(CertaConfig {
            num_triangles: 10,
            use_augmentation: false,
            workers,
            ..Default::default()
        })
    }

    #[test]
    fn batch_is_identical_to_sequential_loop() {
        let d = dataset();
        let m = key_matcher();
        let pairs = pair_refs(&d);
        // Force real threads even on a single-core machine.
        let batch = certa(4).explain_batch(&m, &d, &pairs);
        let sequential: Vec<CertaExplanation> = pairs
            .iter()
            .map(|(u, v)| certa(1).explain(&m, &d, u, v))
            .collect();
        assert_eq!(batch, sequential);
    }

    #[test]
    fn batch_handles_empty_and_singleton_inputs() {
        let d = dataset();
        let m = key_matcher();
        assert!(certa(4).explain_batch(&m, &d, &[]).is_empty());
        let pairs = pair_refs(&d);
        let one = certa(4).explain_batch(&m, &d, &pairs[..1]);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0], certa(1).explain(&m, &d, pairs[0].0, pairs[0].1));
    }

    #[test]
    fn labeled_entry_point_matches_batch() {
        let d = dataset();
        let m = key_matcher();
        let labeled = d.split(certa_core::Split::Test);
        let by_label = certa(2).explain_labeled(&m, &d, labeled);
        let by_refs = certa(2).explain_batch(&m, &d, &pair_refs(&d));
        assert_eq!(by_label, by_refs);
    }

    #[test]
    fn batch_results_are_in_input_order() {
        let d = dataset();
        let m = key_matcher();
        let pairs = pair_refs(&d);
        let batch = certa(3).explain_batch(&m, &d, &pairs);
        assert_eq!(batch.len(), pairs.len());
        for ((u, v), exp) in pairs.iter().zip(&batch) {
            assert_eq!(exp.prediction.score, m.score(u, v), "slot out of order");
        }
        // The mixed-label workload really contains both classes.
        assert!(batch.iter().any(|e| e.prediction.is_match()));
        assert!(batch.iter().any(|e| !e.prediction.is_match()));
        // Saliency agrees with the single-pair path, pair by pair.
        for ((u, v), exp) in pairs.iter().zip(&batch) {
            assert_eq!(exp.saliency, certa(1).explain(&m, &d, u, v).saliency);
        }
        assert!(batch
            .iter()
            .all(|e| e.saliency.score(crate::AttrRef::new(Side::Left, 0)) > 0.0));
    }
}
