//! Probability-of-sufficiency bookkeeping and golden-set selection
//! (Equations 2–3).
//!
//! `χ_A = S[A] / |T_side|` where `S[A]` counts the triangles (on `A`'s side)
//! whose lattice tagged `A` as a flip, and `|T_side|` is the number of
//! triangles explored on that side — the estimate of
//! `P(flip | attributes A changed)`. `A★` maximizes χ, ties broken by
//! smaller `|A|` then deterministic mask order. The full attribute set of a
//! side is excluded (Equation 3 searches `P(A_U) \ A_U`).

use crate::lattice::{mask_len, AttrMask};
use certa_core::hash::FxHashMap;
use certa_core::Side;

/// Accumulates per-subset flip counts across triangles.
#[derive(Debug, Clone, Default)]
pub struct SufficiencyCounter {
    counts: FxHashMap<(Side, AttrMask), u32>,
    triangles: FxHashMap<Side, u32>,
}

impl SufficiencyCounter {
    /// Fresh counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Note that one more triangle was explored on `side`.
    pub fn record_triangle(&mut self, side: Side) {
        *self.triangles.entry(side).or_insert(0) += 1;
    }

    /// Record that subset `mask` flipped within a triangle on `side`.
    pub fn record_flip(&mut self, side: Side, mask: AttrMask) {
        *self.counts.entry((side, mask)).or_insert(0) += 1;
    }

    /// Triangles explored on `side`.
    pub fn triangles_on(&self, side: Side) -> u32 {
        self.triangles.get(&side).copied().unwrap_or(0)
    }

    /// `χ_A` for a subset (0 when no triangles were explored on the side).
    pub fn chi(&self, side: Side, mask: AttrMask) -> f64 {
        let t = self.triangles_on(side);
        if t == 0 {
            return 0.0;
        }
        let s = self.counts.get(&(side, mask)).copied().unwrap_or(0);
        s as f64 / t as f64
    }

    /// Mean χ over all recorded subsets (used by the Figure 11(a) sweep).
    pub fn mean_chi(&self) -> f64 {
        if self.counts.is_empty() {
            return 0.0;
        }
        let total: f64 = self
            .counts
            .keys()
            .map(|&(side, mask)| self.chi(side, mask))
            .sum();
        total / self.counts.len() as f64
    }

    /// Select the golden set `A★` (Equation 3): maximize χ, tie-break on
    /// smaller `|A|`, then on `(side, mask)` order for determinism. Full
    /// side-sets are excluded. Returns `None` when nothing ever flipped.
    pub fn golden_set(
        &self,
        left_arity: usize,
        right_arity: usize,
    ) -> Option<(Side, AttrMask, f64)> {
        let full_of = |side: Side| -> AttrMask {
            let arity = match side {
                Side::Left => left_arity,
                Side::Right => right_arity,
            };
            ((1u64 << arity) - 1) as AttrMask
        };
        let mut best: Option<(Side, AttrMask, f64)> = None;
        let mut keys: Vec<(Side, AttrMask)> = self.counts.keys().copied().collect();
        keys.sort_unstable();
        for (side, mask) in keys {
            if mask == full_of(side) {
                continue; // Equation 3 excludes the full set
            }
            let chi = self.chi(side, mask);
            if chi <= 0.0 {
                continue;
            }
            let better = match &best {
                None => true,
                Some((bside, bmask, bchi)) => {
                    let (bside, bmask, bchi) = (*bside, *bmask, *bchi);
                    chi > bchi + 1e-12
                        || ((chi - bchi).abs() <= 1e-12
                            && (mask_len(mask), side, mask) < (mask_len(bmask), bside, bmask))
                }
            };
            if better {
                best = Some((side, mask, chi));
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The §4 worked example: χ values over four left triangles.
    #[test]
    fn worked_example_chi_values() {
        let mut c = SufficiencyCounter::new();
        for _ in 0..4 {
            c.record_triangle(Side::Left);
        }
        // Flipped masks per triangle (from Figure 9), excluding nothing:
        let lattices: [&[AttrMask]; 4] = [
            &[0b001, 0b010, 0b011, 0b101, 0b110, 0b111],
            &[0b001, 0b011, 0b101, 0b110, 0b111],
            &[0b001, 0b011, 0b101, 0b111],
            &[0b011, 0b101, 0b110, 0b111],
        ];
        for masks in lattices {
            for &m in masks {
                c.record_flip(Side::Left, m);
            }
        }
        assert_eq!(c.chi(Side::Left, 0b001), 3.0 / 4.0); // χ_{N}
        assert_eq!(c.chi(Side::Left, 0b010), 1.0 / 4.0); // χ_{D}
        assert_eq!(c.chi(Side::Left, 0b100), 0.0); // χ_{P}
        assert_eq!(c.chi(Side::Left, 0b011), 1.0); // χ_{N,D}
        assert_eq!(c.chi(Side::Left, 0b101), 1.0); // χ_{N,P}
        assert_eq!(c.chi(Side::Left, 0b110), 3.0 / 4.0); // χ_{D,P}

        // A★: max χ = 1 at {N,D} and {N,P}; both size 2; deterministic
        // tie-break picks the smaller mask {N,D} = 0b011. The paper notes
        // A★ ∈ {{N,D},{N,P}} — either is valid; we pick canonically.
        let (side, mask, chi) = c.golden_set(3, 3).unwrap();
        assert_eq!(side, Side::Left);
        assert_eq!(mask, 0b011);
        assert_eq!(chi, 1.0);
    }

    #[test]
    fn full_set_excluded_from_golden() {
        let mut c = SufficiencyCounter::new();
        c.record_triangle(Side::Left);
        c.record_flip(Side::Left, 0b111); // only the full 3-attr set flips
        assert!(c.golden_set(3, 3).is_none());
        // But if the side has 4 attributes, 0b111 is a proper subset.
        let g = c.golden_set(4, 4).unwrap();
        assert_eq!(g.1, 0b111);
    }

    #[test]
    fn smaller_sets_win_ties() {
        let mut c = SufficiencyCounter::new();
        for _ in 0..2 {
            c.record_triangle(Side::Left);
        }
        c.record_flip(Side::Left, 0b011);
        c.record_flip(Side::Left, 0b011);
        c.record_flip(Side::Left, 0b100);
        c.record_flip(Side::Left, 0b100);
        // Both have χ = 1; {P} (singleton) beats {N,D}.
        let (_, mask, _) = c.golden_set(3, 3).unwrap();
        assert_eq!(mask, 0b100);
    }

    #[test]
    fn sides_normalize_independently() {
        let mut c = SufficiencyCounter::new();
        c.record_triangle(Side::Left);
        c.record_triangle(Side::Left);
        c.record_triangle(Side::Right);
        c.record_flip(Side::Left, 0b1);
        c.record_flip(Side::Right, 0b1);
        assert_eq!(c.chi(Side::Left, 0b1), 0.5);
        assert_eq!(c.chi(Side::Right, 0b1), 1.0);
        let (side, _, chi) = c.golden_set(2, 2).unwrap();
        assert_eq!(side, Side::Right);
        assert_eq!(chi, 1.0);
    }

    #[test]
    fn empty_counter_behaviour() {
        let c = SufficiencyCounter::new();
        assert_eq!(c.chi(Side::Left, 0b1), 0.0);
        assert_eq!(c.mean_chi(), 0.0);
        assert!(c.golden_set(3, 3).is_none());
    }

    #[test]
    fn mean_chi_averages_recorded_subsets() {
        let mut c = SufficiencyCounter::new();
        for _ in 0..2 {
            c.record_triangle(Side::Left);
        }
        c.record_flip(Side::Left, 0b01); // χ = 0.5
        c.record_flip(Side::Left, 0b10);
        c.record_flip(Side::Left, 0b10); // χ = 1.0
        assert!((c.mean_chi() - 0.75).abs() < 1e-12);
    }
}
