//! # certa-explain
//!
//! The paper's contribution: **CERTA**, a saliency + counterfactual
//! explainer for black-box entity-resolution classifiers (§3–4).
//!
//! The pipeline for one prediction `M(⟨u, v⟩) = y`:
//!
//! 1. [`triangles`] — find *open triangles*: support records `w` on one side
//!    that the model classifies **opposite** to `y` against the fixed pivot
//!    (`M(⟨w, v⟩) = ȳ` for left triangles). When the tables cannot supply
//!    enough, [`augment`] synthesizes extra candidates by dropping leading /
//!    trailing tokens (§3.3).
//! 2. [`perturb`] — the ψ function: copy the support's values for an
//!    attribute subset `A` into the free record.
//! 3. [`lattice`] — explore the powerset of one side's attributes bottom-up,
//!    tagging each subset with whether its perturbation flips the
//!    prediction; under the monotone-classifier assumption a flip at `A`
//!    is propagated to every superset without testing (§4), and the tested
//!    flips form the *minimal flipping antichain*.
//! 4. [`saliency`] / [`counterfactual`] — frequency estimates of the
//!    probability of **necessity** (per attribute → saliency scores Φ) and
//!    of **sufficiency** (per subset → the golden set `A★` and the
//!    counterfactual examples `E`), per Equations 1–3.
//!
//! [`Certa`] assembles these into Algorithm 1. Everything is deterministic
//! given the [`CertaConfig`] seed, and the model is only ever accessed via
//! [`certa_core::Matcher::score`].

pub mod augment;
pub mod certa;
pub mod config;
pub mod counterfactual;
pub mod explanation;
pub mod lattice;
pub mod perturb;
pub mod saliency;
pub mod token_level;
pub mod triangles;

pub use certa::{Certa, CertaExplanation};
pub use config::CertaConfig;
pub use explanation::{
    AttrRef, CounterfactualExample, CounterfactualExplainer, CounterfactualExplanation,
    SaliencyExplainer, SaliencyExplanation,
};
pub use lattice::{AttrMask, Exploration, LatticeStats};
pub use token_level::{occlusion_token_saliency, triangle_token_saliency, TokenScore};
pub use triangles::{find_triangles, OpenTriangle, TriangleStats};
