//! # certa-explain
//!
//! The paper's contribution: **CERTA**, a saliency + counterfactual
//! explainer for black-box entity-resolution classifiers (§3–4).
//!
//! The pipeline for one prediction `M(⟨u, v⟩) = y`:
//!
//! 1. [`triangles`] — find *open triangles*: support records `w` on one side
//!    that the model classifies **opposite** to `y` against the fixed pivot
//!    (`M(⟨w, v⟩) = ȳ` for left triangles). When the tables cannot supply
//!    enough, [`augment`] synthesizes extra candidates by dropping leading /
//!    trailing tokens (§3.3).
//! 2. [`perturb`] — the ψ function: copy the support's values for an
//!    attribute subset `A` into the free record.
//! 3. [`lattice`] — explore the powerset of one side's attributes bottom-up,
//!    tagging each subset with whether its perturbation flips the
//!    prediction; under the monotone-classifier assumption a flip at `A`
//!    is propagated to every superset without testing (§4), and the tested
//!    flips form the *minimal flipping antichain*.
//! 4. [`saliency`] / [`counterfactual`] — frequency estimates of the
//!    probability of **necessity** (per attribute → saliency scores Φ) and
//!    of **sufficiency** (per subset → the golden set `A★` and the
//!    counterfactual examples `E`), per Equations 1–3.
//!
//! [`Certa`] assembles these into Algorithm 1. Everything is deterministic
//! given the [`CertaConfig`] seed, and the model is only ever accessed via
//! [`certa_core::Matcher::score`] /
//! [`score_batch`](certa_core::Matcher::score_batch).
//!
//! ## The batch engine ([`batch`])
//!
//! [`Certa::explain_batch`] explains many predictions at once on a
//! work-stealing scoped-thread pool, and a single [`Certa::explain`] call
//! fans its independent triangle lattices out the same way
//! (`CertaConfig::workers`; `0` = one per core). **Determinism guarantee:**
//! batch output is byte-identical to a sequential loop of `explain` calls in
//! input order — per-pair work is deterministic in the config, flip counters
//! are merged in triangle order regardless of completion order, and workers
//! share no mutable state. Scheduling can only change wall-clock time.
//! Pair this engine with `certa_models::CachingMatcher` (sharded,
//! at-most-once per distinct pair) so concurrent workers never serialize on
//! one cache lock nor double-score the model.
//!
//! New matchers get the vectorized path by overriding
//! [`certa_core::Matcher::score_batch`]; the override must stay
//! value-identical to `score` pair-by-pair — the explainers and caches treat
//! the two as interchangeable.

pub mod augment;
pub mod batch;
pub mod certa;
pub mod config;
pub mod counterfactual;
pub mod explanation;
pub mod lattice;
pub mod perturb;
pub mod saliency;
pub mod token_level;
pub mod triangles;

pub use certa::{mean_necessity_of, Certa, CertaExplanation};
pub use config::CertaConfig;
pub use explanation::{
    AttrRef, CounterfactualExample, CounterfactualExplainer, CounterfactualExplanation,
    SaliencyExplainer, SaliencyExplanation,
};
pub use lattice::{AttrMask, Exploration, LatticeStats};
pub use token_level::{occlusion_token_saliency, triangle_token_saliency, TokenScore};
pub use triangles::{find_triangles, OpenTriangle, TriangleStats};
