//! CERTA configuration.

use serde::{Deserialize, Serialize};

/// Tunables of the CERTA algorithm (defaults follow §5.3: τ = 100,
/// augmentation on, monotone inference on).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CertaConfig {
    /// Total number of open triangles τ (τ/2 per side).
    pub num_triangles: usize,
    /// Cap on candidate support records scored per side during triangle
    /// discovery (the paper scans the whole table; this bounds worst-case
    /// work on large sources without changing results at our scales).
    pub max_candidates: usize,
    /// Enable §3.3 data augmentation when natural triangles run short.
    pub use_augmentation: bool,
    /// Force *only* augmented triangles (the Tables 9–10 ablation).
    pub augmentation_only: bool,
    /// Budget of augmented candidates scored per side.
    pub augmentation_budget: usize,
    /// Cap on returned counterfactual examples; the flip-verified examples
    /// closest to the original input (token-overlap proximity) are kept, as
    /// in the reference implementation. `usize::MAX` disables the cap.
    pub max_examples: usize,
    /// Use the monotone-classifier optimization (§4). Disable to explore
    /// lattices exhaustively (ground truth for the Table 7 audit).
    pub monotone: bool,
    /// Also test the full attribute set (off per footnote 2).
    pub test_full_set: bool,
    /// Base RNG seed (candidate scan order).
    pub seed: u64,
    /// Worker threads for [`Certa::explain_batch`](crate::Certa) and for
    /// intra-`explain` triangle exploration. `0` = one per available core.
    /// The worker count never changes results — scheduling only affects
    /// wall-clock time, not output (results are merged in input / triangle
    /// order).
    pub workers: usize,
}

impl Default for CertaConfig {
    fn default() -> Self {
        CertaConfig {
            num_triangles: 100,
            max_candidates: 2000,
            use_augmentation: true,
            augmentation_only: false,
            augmentation_budget: 600,
            max_examples: 10,
            monotone: true,
            test_full_set: false,
            seed: 0xCE27A,
            workers: 0,
        }
    }
}

impl CertaConfig {
    /// Builder-style τ override.
    pub fn with_triangles(mut self, tau: usize) -> Self {
        self.num_triangles = tau;
        self
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style worker-count override (`0` = one per available core).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Effective worker count: the configured value, or the machine's
    /// available parallelism when `workers == 0`.
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }

    /// Triangles requested per side (τ/2, at least 1).
    pub fn per_side(&self) -> usize {
        (self.num_triangles / 2).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = CertaConfig::default();
        assert_eq!(c.num_triangles, 100);
        assert_eq!(c.per_side(), 50);
        assert!(c.use_augmentation);
        assert!(c.monotone);
        assert!(!c.test_full_set);
        assert!(!c.augmentation_only);
    }

    #[test]
    fn builders() {
        let c = CertaConfig::default().with_triangles(10).with_seed(9);
        assert_eq!(c.num_triangles, 10);
        assert_eq!(c.per_side(), 5);
        assert_eq!(c.seed, 9);
        assert_eq!(CertaConfig::default().with_triangles(1).per_side(), 1);
    }

    #[test]
    fn worker_settings() {
        let auto = CertaConfig::default();
        assert_eq!(auto.workers, 0, "auto-detect by default");
        assert!(auto.effective_workers() >= 1);
        let fixed = CertaConfig::default().with_workers(3);
        assert_eq!(fixed.effective_workers(), 3);
    }
}
