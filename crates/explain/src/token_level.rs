//! Token-level explanation drill-down — the paper's §6 future-work
//! direction ("Extension of certa's principled explanation framework for ER
//! to token-level explanations").
//!
//! Attribute-level saliency says *which field* drove a prediction;
//! this module drills into one attribute and scores its individual tokens.
//! Two estimators are provided:
//!
//! * [`occlusion_token_saliency`] — leave-one-token-out: each token's score
//!   is the prediction-score change when only that token is removed. Fast,
//!   model-agnostic, but out-of-distribution in the same way LIME's DROP is.
//! * [`triangle_token_saliency`] — CERTA-flavoured: re-uses open-triangle
//!   support records and progressively splices the support's token sequence
//!   into the attribute (prefix by prefix, mirroring ψ at sub-attribute
//!   granularity); a token's necessity is the frequency with which splices
//!   that *overwrite it* co-occur with a prediction flip. In-distribution,
//!   because replacement content comes from real records.

use crate::config::CertaConfig;
use crate::explanation::AttrRef;
use crate::triangles::find_triangles;
use certa_core::tokens::{join, tokenize};
use certa_core::{Dataset, MatchLabel, Matcher, Record, Side};

/// A token of an attribute value with its saliency score.
#[derive(Debug, Clone, PartialEq)]
pub struct TokenScore {
    /// The token text.
    pub token: String,
    /// Position within the attribute's token sequence.
    pub position: usize,
    /// Saliency in `[0, 1]` (estimator-specific semantics).
    pub score: f64,
}

fn record_of<'a>(u: &'a Record, v: &'a Record, side: Side) -> &'a Record {
    match side {
        Side::Left => u,
        Side::Right => v,
    }
}

fn score_with(matcher: &dyn Matcher, u: &Record, v: &Record, side: Side, modified: Record) -> f64 {
    match side {
        Side::Left => matcher.score(&modified, v),
        Side::Right => matcher.score(u, &modified),
    }
}

/// Leave-one-token-out saliency for `attr`'s value.
///
/// Returns one [`TokenScore`] per token, with score
/// `|score(u, v) − score(pair with token i removed)|`, un-normalized so the
/// values are directly comparable to attribute-level "actual" saliency
/// (§5.8's masking-in-isolation protocol, at token granularity).
pub fn occlusion_token_saliency(
    matcher: &dyn Matcher,
    u: &Record,
    v: &Record,
    attr: AttrRef,
) -> Vec<TokenScore> {
    let base = matcher.score(u, v);
    let target = record_of(u, v, attr.side);
    let toks = tokenize(target.value(attr.attr));
    let mut out = Vec::with_capacity(toks.len());
    for (i, tok) in toks.iter().enumerate() {
        let mut kept: Vec<&str> = Vec::with_capacity(toks.len() - 1);
        kept.extend(toks.iter().take(i));
        kept.extend(toks.iter().skip(i + 1));
        let modified = target.with_value(attr.attr, join(&kept));
        let s = score_with(matcher, u, v, attr.side, modified);
        out.push(TokenScore {
            token: (*tok).to_string(),
            position: i,
            score: (base - s).abs(),
        });
    }
    out
}

/// CERTA-flavoured token necessity via open-triangle prefix splicing.
///
/// For every support record `w` of an open triangle on `attr.side`, the
/// attribute's token sequence is replaced by progressively longer prefixes
/// of `w[attr]` (the remainder keeping the original tail), and each variant
/// is scored. A token's necessity is the fraction of *flipping* variants in
/// which it had been overwritten — the frequentist estimate of Equation 1,
/// one level down.
///
/// Returns an empty vector when the attribute has no tokens or no triangles
/// can be built.
pub fn triangle_token_saliency(
    matcher: &dyn Matcher,
    dataset: &Dataset,
    u: &Record,
    v: &Record,
    attr: AttrRef,
    cfg: &CertaConfig,
) -> Vec<TokenScore> {
    let y = matcher.predict(u, v);
    let target = record_of(u, v, attr.side);
    let original: Vec<String> = tokenize(target.value(attr.attr))
        .iter()
        .map(|t| t.to_string())
        .collect();
    if original.is_empty() {
        return Vec::new();
    }

    let (triangles, _) = find_triangles(matcher, dataset, u, v, y, cfg);
    let mut overwritten_in_flips = vec![0u32; original.len()];
    let mut flips = 0u32;

    for t in triangles.iter().filter(|t| t.side == attr.side) {
        let donor_toks = tokenize(t.support.value(attr.attr));
        if donor_toks.is_empty() {
            continue;
        }
        // Prefix splices: donor[0..k] ++ original[k..], k = 1..=len.
        for k in 1..=original.len().min(donor_toks.len()) {
            let mut spliced: Vec<&str> = donor_toks[..k].to_vec();
            for tok in original.iter().skip(k) {
                spliced.push(tok);
            }
            let modified = target.with_value(attr.attr, join(&spliced));
            let s = score_with(matcher, u, v, attr.side, modified);
            if MatchLabel::from_score(s) != y {
                flips += 1;
                for slot in overwritten_in_flips.iter_mut().take(k) {
                    *slot += 1;
                }
            }
        }
    }

    if flips == 0 {
        return original
            .into_iter()
            .enumerate()
            .map(|(i, token)| TokenScore {
                token,
                position: i,
                score: 0.0,
            })
            .collect();
    }
    original
        .into_iter()
        .enumerate()
        .map(|(i, token)| TokenScore {
            token,
            position: i,
            score: overwritten_in_flips[i] as f64 / flips as f64,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use certa_core::{FnMatcher, LabeledPair, RecordId, Schema, Table};

    /// Match iff the left record's first attribute contains "davis50b".
    fn code_matcher() -> impl Matcher {
        FnMatcher::new("code", |u: &Record, _v: &Record| {
            if u.values()[0].split_whitespace().any(|t| t == "davis50b") {
                0.9
            } else {
                0.1
            }
        })
    }

    fn dataset() -> Dataset {
        let ls = Schema::shared("U", ["name"]);
        let rs = Schema::shared("V", ["name"]);
        let left = Table::from_records(
            ls,
            vec![
                Record::new(RecordId(0), vec!["sony bravia davis50b theater".into()]),
                Record::new(RecordId(1), vec!["altec lansing im600 audio".into()]),
                Record::new(RecordId(2), vec!["canon pixma mx700 printer".into()]),
            ],
        )
        .unwrap();
        let right = Table::from_records(
            rs,
            vec![Record::new(
                RecordId(0),
                vec!["sony bravia home theater".into()],
            )],
        )
        .unwrap();
        Dataset::new(
            "toy",
            left,
            right,
            vec![LabeledPair::new(RecordId(0), RecordId(0), true)],
            vec![LabeledPair::new(RecordId(0), RecordId(0), true)],
        )
        .unwrap()
    }

    #[test]
    fn occlusion_finds_the_decisive_token() {
        let d = dataset();
        let m = code_matcher();
        let (u, v) = d.expect_pair(d.split(certa_core::Split::Test)[0].pair);
        let scores = occlusion_token_saliency(&m, u, v, AttrRef::new(Side::Left, 0));
        assert_eq!(scores.len(), 4);
        let decisive = scores
            .iter()
            .max_by(|a, b| a.score.partial_cmp(&b.score).unwrap())
            .unwrap();
        assert_eq!(decisive.token, "davis50b");
        assert!(
            (decisive.score - 0.8).abs() < 1e-9,
            "removing it drops 0.9 → 0.1"
        );
        for ts in scores.iter().filter(|t| t.token != "davis50b") {
            assert_eq!(ts.score, 0.0, "other tokens are irrelevant: {ts:?}");
        }
    }

    #[test]
    fn occlusion_positions_are_stable() {
        let d = dataset();
        let m = code_matcher();
        let (u, v) = d.expect_pair(d.split(certa_core::Split::Test)[0].pair);
        let scores = occlusion_token_saliency(&m, u, v, AttrRef::new(Side::Left, 0));
        for (i, ts) in scores.iter().enumerate() {
            assert_eq!(ts.position, i);
        }
        assert_eq!(scores[2].token, "davis50b");
    }

    #[test]
    fn triangle_token_saliency_ranks_the_code_highest() {
        let d = dataset();
        let m = code_matcher();
        let (u, v) = d.expect_pair(d.split(certa_core::Split::Test)[0].pair);
        let cfg = CertaConfig {
            num_triangles: 4,
            use_augmentation: false,
            ..Default::default()
        };
        let scores = triangle_token_saliency(&m, &d, u, v, AttrRef::new(Side::Left, 0), &cfg);
        assert_eq!(scores.len(), 4);
        // Splices flip only once they overwrite position 2 ("davis50b"), so
        // every flipping splice overwrites tokens 0..=2, never necessarily 3.
        assert_eq!(scores[0].score, 1.0);
        assert_eq!(scores[1].score, 1.0);
        assert_eq!(scores[2].score, 1.0);
        assert!(scores[3].score < 1.0, "{scores:?}");
        assert!(scores.iter().all(|t| (0.0..=1.0).contains(&t.score)));
    }

    #[test]
    fn empty_attribute_yields_no_tokens() {
        let d = dataset();
        let m = code_matcher();
        let u = Record::new(RecordId(7), vec![String::new()]);
        let v = d.right().expect(RecordId(0));
        let cfg = CertaConfig {
            num_triangles: 2,
            use_augmentation: false,
            ..Default::default()
        };
        assert!(occlusion_token_saliency(&m, &u, v, AttrRef::new(Side::Left, 0)).is_empty());
        assert!(
            triangle_token_saliency(&m, &d, &u, v, AttrRef::new(Side::Left, 0), &cfg).is_empty()
        );
    }

    #[test]
    fn right_side_attributes_work_too() {
        // A matcher sensitive to the right record's first token.
        let m = FnMatcher::new("right", |_u: &Record, v: &Record| {
            if v.values()[0].starts_with("sony") {
                0.9
            } else {
                0.1
            }
        });
        let d = dataset();
        let (u, v) = d.expect_pair(d.split(certa_core::Split::Test)[0].pair);
        let scores = occlusion_token_saliency(&m, u, v, AttrRef::new(Side::Right, 0));
        assert_eq!(scores[0].token, "sony");
        assert!(scores[0].score > 0.5);
    }
}
