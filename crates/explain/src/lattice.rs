//! Powerset lattices over one side's attributes, explored bottom-up with
//! optional monotone flip propagation (§4).
//!
//! Subsets are bitmasks ([`AttrMask`]) over attribute positions; the lattice
//! of Figure 8 for arity 3 has nodes `0b001 … 0b111`. The empty set is always
//! tagged non-flip (γ(∅) = 0 by definition: copying nothing changes nothing)
//! and the full set is, per footnote 2, *not tested* — it can only be tagged
//! through monotone inference, unless [`ExploreMode`] requests otherwise.

use serde::{Deserialize, Serialize};

/// An attribute subset as a bitmask (bit `i` = attribute `i`).
pub type AttrMask = u32;

/// Maximum supported arity (bitmask width minus safety margin).
pub const MAX_ARITY: usize = 20;

/// Iterate the attribute indices present in a mask.
pub fn mask_attrs(mask: AttrMask) -> impl Iterator<Item = usize> {
    (0..MAX_ARITY).filter(move |&i| mask & (1 << i) != 0)
}

/// Number of attributes in the subset.
pub fn mask_len(mask: AttrMask) -> usize {
    mask.count_ones() as usize
}

/// Build a mask from attribute indices.
pub fn mask_of(attrs: &[usize]) -> AttrMask {
    attrs.iter().fold(0, |m, &i| {
        assert!(i < MAX_ARITY, "attribute index {i} out of mask range");
        m | (1 << i)
    })
}

/// How the lattice is explored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExploreMode {
    /// Assume monotone classification: a tested flip at `A` is propagated to
    /// every superset of `A` without testing (the paper's optimization).
    Monotone,
    /// Test every node explicitly (ground truth for the Table 7 audit).
    Exhaustive,
}

/// How a node's tag was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Provenance {
    /// The model was called on the node's perturbation.
    Tested,
    /// The tag was inferred through monotone propagation.
    Inferred,
    /// Never visited (only the full set, when testing it is disabled).
    Skipped,
}

/// The outcome of exploring one triangle's lattice.
#[derive(Debug, Clone)]
pub struct Exploration {
    arity: usize,
    /// Flip tag per mask (`true` = prediction flipped). Index = mask.
    tags: Vec<bool>,
    /// Provenance per mask.
    provenance: Vec<Provenance>,
}

impl Exploration {
    /// Attribute count of the explored side.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The full-set mask for this arity.
    pub fn full_mask(&self) -> AttrMask {
        ((1u64 << self.arity) - 1) as AttrMask
    }

    /// Flip tag of a subset (∅ is always `false`).
    pub fn flipped(&self, mask: AttrMask) -> bool {
        self.tags[mask as usize]
    }

    /// Provenance of a subset's tag.
    pub fn provenance(&self, mask: AttrMask) -> Provenance {
        self.provenance[mask as usize]
    }

    /// All flipped masks (tested or inferred), ascending; excludes ∅.
    pub fn flipped_masks(&self) -> impl Iterator<Item = AttrMask> + '_ {
        (1..=self.full_mask()).filter(|&m| self.tags[m as usize])
    }

    /// Flipped masks whose tag came from an actual model call.
    pub fn tested_flips(&self) -> impl Iterator<Item = AttrMask> + '_ {
        self.flipped_masks()
            .filter(|&m| self.provenance[m as usize] == Provenance::Tested)
    }

    /// The minimal flipping antichain: flipped nodes none of whose proper
    /// subsets flipped.
    pub fn minimal_flipping_antichain(&self) -> Vec<AttrMask> {
        self.flipped_masks()
            .filter(|&m| {
                // Enumerate proper non-empty subsets of m.
                let mut sub = (m - 1) & m;
                loop {
                    if sub == 0 {
                        return true;
                    }
                    if self.tags[sub as usize] {
                        return false;
                    }
                    sub = (sub - 1) & m;
                }
            })
            .collect()
    }

    /// Counters for the Table 7 audit.
    pub fn stats(&self) -> LatticeStats {
        let mut performed = 0usize;
        let mut inferred = 0usize;
        let mut skipped = 0usize;
        for &p in &self.provenance[1..] {
            match p {
                Provenance::Tested => performed += 1,
                Provenance::Inferred => inferred += 1,
                Provenance::Skipped => skipped += 1,
            }
        }
        LatticeStats {
            arity: self.arity,
            expected: (1usize << self.arity) - 2,
            performed,
            inferred,
            skipped,
        }
    }
}

/// Prediction-count accounting for one lattice (Table 7's columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatticeStats {
    /// Attribute count.
    pub arity: usize,
    /// Predictions needed without inference: `2^l − 2` (footnote 2).
    pub expected: usize,
    /// Predictions actually performed.
    pub performed: usize,
    /// Node tags obtained by monotone propagation.
    pub inferred: usize,
    /// Nodes never visited (untested full set).
    pub skipped: usize,
}

impl LatticeStats {
    /// `expected − performed` (clamped at zero; testing the full set can
    /// make `performed` exceed the footnote-2 budget by one).
    pub fn saved(&self) -> usize {
        self.expected.saturating_sub(self.performed)
    }
}

/// Explore the lattice over `arity` attributes, calling `test(mask)` for the
/// perturbation of each visited subset; `test` returns whether the
/// prediction flipped.
///
/// Visits proceed bottom-up in breadth-first (level) order, smaller masks
/// first within a level — matching §4's description and making exploration
/// deterministic. In [`ExploreMode::Monotone`], a tested flip is propagated
/// to all supersets as [`Provenance::Inferred`]. The full set is tested only
/// when `test_full_set` is true (and never inferred *from*, only *to*).
pub fn explore(
    arity: usize,
    mode: ExploreMode,
    test_full_set: bool,
    mut test: impl FnMut(AttrMask) -> bool,
) -> Exploration {
    assert!(arity >= 1, "lattice needs at least one attribute");
    assert!(arity <= MAX_ARITY, "arity {arity} exceeds mask capacity");
    let full: AttrMask = ((1u64 << arity) - 1) as AttrMask;
    let n_nodes = (full as usize) + 1;
    let mut tags = vec![false; n_nodes];
    let mut provenance = vec![Provenance::Skipped; n_nodes];
    provenance[0] = Provenance::Tested; // ∅: trivially non-flip, free.

    // Masks in (level, value) order.
    let mut order: Vec<AttrMask> = (1..=full).collect();
    order.sort_by_key(|&m| (mask_len(m), m));

    for &mask in &order {
        if provenance[mask as usize] == Provenance::Inferred {
            continue; // already known to flip
        }
        if mask == full && !test_full_set {
            continue; // footnote 2: never test the top
        }
        let flipped = test(mask);
        tags[mask as usize] = flipped;
        provenance[mask as usize] = Provenance::Tested;
        if flipped && mode == ExploreMode::Monotone {
            propagate_up(mask, full, &mut tags, &mut provenance);
        }
    }
    Exploration {
        arity,
        tags,
        provenance,
    }
}

/// Tag every proper superset of `mask` as an inferred flip.
fn propagate_up(mask: AttrMask, full: AttrMask, tags: &mut [bool], provenance: &mut [Provenance]) {
    // Standard superset enumeration: s = (s + 1) | mask walks all supersets.
    let mut s = mask;
    while s != full {
        s = (s + 1) | mask;
        let idx = s as usize;
        if provenance[idx] != Provenance::Tested {
            tags[idx] = true;
            provenance[idx] = Provenance::Inferred;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certa_core::hash::FxHashSet;

    /// The Figure 8 scenario: every subset flips except {Price} alone.
    fn fig8_test(mask: AttrMask) -> bool {
        mask != 0b100
    }

    #[test]
    fn mask_helpers() {
        let m = mask_of(&[0, 2]);
        assert_eq!(m, 0b101);
        assert_eq!(mask_len(m), 2);
        assert_eq!(mask_attrs(m).collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn figure8_monotone_exploration() {
        let mut calls = Vec::new();
        let exp = explore(3, ExploreMode::Monotone, false, |m| {
            calls.push(m);
            fig8_test(m)
        });
        // Level 1: tests N={001}, D={010}, P={100}; N and D flip, so all
        // their supersets are inferred. The only untagged level-2 node would
        // be... none: {011},{101},{110} all contain N or D. Full set inferred.
        assert_eq!(calls, vec![0b001, 0b010, 0b100]);
        assert!(exp.flipped(0b001) && exp.flipped(0b010) && !exp.flipped(0b100));
        assert!(exp.flipped(0b111));
        assert_eq!(exp.provenance(0b111), Provenance::Inferred);
        // MFA = {{N},{D}} as in Figure 8.
        assert_eq!(exp.minimal_flipping_antichain(), vec![0b001, 0b010]);
        let stats = exp.stats();
        assert_eq!(stats.expected, 6);
        assert_eq!(stats.performed, 3);
        assert_eq!(stats.saved(), 3);
    }

    /// One Figure 9 scenario: (name, oracle, expected MFA, expected flips).
    type WScenario = (&'static str, fn(AttrMask) -> bool, Vec<AttrMask>, usize);

    /// The four worked-example lattices of Figure 9.
    fn w_scenarios() -> Vec<WScenario> {
        // (name, oracle, expected MFA, expected flip count incl. inferred)
        vec![
            // w1: N, D flip; P doesn't. 6 flips total.
            ("w1", |m| m != 0b100, vec![0b001, 0b010], 6),
            // w2: only N flips at level 1; {D,P} flips at level 2. 5 flips.
            (
                "w2",
                |m| m == 0b001 || mask_len(m) >= 2,
                vec![0b001, 0b110],
                5,
            ),
            // w3: only N; {D,P} does NOT flip. 4 flips.
            (
                "w3",
                |m| (m & 0b001 != 0) && m != 0, // any set containing N
                vec![0b001],
                4,
            ),
            // w4: no singleton flips; all pairs flip. 4 flips.
            ("w4", |m| mask_len(m) >= 2, vec![0b011, 0b101, 0b110], 4),
        ]
    }

    #[test]
    fn figure9_worked_examples() {
        for (name, oracle, mfa, flips) in w_scenarios() {
            let exp = explore(3, ExploreMode::Monotone, false, oracle);
            assert_eq!(exp.minimal_flipping_antichain(), mfa, "{name} MFA");
            assert_eq!(exp.flipped_masks().count(), flips, "{name} flip count");
        }
    }

    #[test]
    fn paper_example_totals() {
        // §4: across w1..w4 there are 19 flips; N appears in 15, P in 11.
        let mut total = 0;
        let mut n_count = 0;
        let mut p_count = 0;
        for (_, oracle, _, _) in w_scenarios() {
            let exp = explore(3, ExploreMode::Monotone, false, oracle);
            for m in exp.flipped_masks() {
                total += 1;
                if m & 0b001 != 0 {
                    n_count += 1;
                }
                if m & 0b100 != 0 {
                    p_count += 1;
                }
            }
        }
        assert_eq!(total, 19);
        assert_eq!(n_count, 15);
        assert_eq!(p_count, 11);
    }

    #[test]
    fn exhaustive_tests_every_node() {
        let mut calls = FxHashSet::default();
        let exp = explore(3, ExploreMode::Exhaustive, false, |m| {
            calls.insert(m);
            fig8_test(m)
        });
        assert_eq!(calls.len(), 6, "all non-∅, non-full nodes tested");
        assert_eq!(exp.stats().performed, 6);
        assert_eq!(exp.stats().saved(), 0);
        // Full set untested and (in exhaustive mode) never inferred.
        assert_eq!(exp.provenance(0b111), Provenance::Skipped);
        assert!(!exp.flipped(0b111));
    }

    #[test]
    fn test_full_set_flag() {
        let mut tested_full = false;
        let _ = explore(2, ExploreMode::Exhaustive, true, |m| {
            if m == 0b11 {
                tested_full = true;
            }
            false
        });
        assert!(tested_full);
    }

    #[test]
    fn monotone_inference_can_be_wrong_by_design() {
        // Non-monotone oracle: {0} flips but {0,1} would not. Monotone mode
        // must still tag {0,1} as flipped (that's the documented error the
        // Table 7 audit measures).
        let exp = explore(2, ExploreMode::Monotone, false, |m| m == 0b01);
        assert!(exp.flipped(0b11));
        assert_eq!(exp.provenance(0b11), Provenance::Inferred);
        let truth = explore(2, ExploreMode::Exhaustive, true, |m| m == 0b01);
        assert!(!truth.flipped(0b11));
    }

    #[test]
    fn no_flips_anywhere() {
        let exp = explore(3, ExploreMode::Monotone, false, |_| false);
        assert_eq!(exp.flipped_masks().count(), 0);
        assert!(exp.minimal_flipping_antichain().is_empty());
        assert_eq!(exp.stats().performed, 6);
        assert_eq!(exp.stats().skipped, 1, "untested full set");
    }

    #[test]
    fn mfa_members_are_tested() {
        for (_, oracle, _, _) in w_scenarios() {
            let exp = explore(3, ExploreMode::Monotone, false, oracle);
            let tested: FxHashSet<AttrMask> = exp.tested_flips().collect();
            for m in exp.minimal_flipping_antichain() {
                assert!(
                    tested.contains(&m),
                    "MFA node {m:b} must be a real model call"
                );
            }
        }
    }

    #[test]
    fn large_arity_works() {
        // IA has 8 attributes: 254 nodes.
        let exp = explore(8, ExploreMode::Monotone, false, |m| mask_len(m) >= 3);
        assert_eq!(exp.stats().expected, 254);
        // All singletons (8) + all pairs (28) tested and failed; all triples
        // containing any tested triple... first triple tested flips and
        // propagates. Performed = 8 + 28 + #tested triples.
        assert!(exp.stats().performed < 100);
        assert!(exp.flipped(exp.full_mask()));
    }

    #[test]
    #[should_panic(expected = "mask capacity")]
    fn arity_bound_enforced() {
        let _ = explore(MAX_ARITY + 1, ExploreMode::Monotone, false, |_| false);
    }
}
