//! Open-triangle discovery (§3.3).
//!
//! For a prediction `M(⟨u, v⟩) = y`, a **left open triangle** is
//! `⟨u, v, w⟩` with `w ∈ U \ {u}` and `M(⟨w, v⟩) = ȳ` — the support record
//! sits on the *other* side of the decision boundary, so progressively
//! copying its values into `u` drags the pair across (Figures 6–7). Right
//! triangles mirror this with supports from `V` scored against the fixed
//! `u`. When the tables run short, augmented variants of already-scanned
//! records are scored as extra candidates.

use crate::augment::augmented_candidates;
use crate::config::CertaConfig;
use certa_core::{Dataset, MatchLabel, Matcher, Record, Side};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// One open triangle: the side it was built on and the support record.
///
/// The free record and pivot are implicit (the explained pair). Augmented
/// supports are synthetic records not present in the source table.
#[derive(Debug, Clone)]
pub struct OpenTriangle {
    /// `Side::Left` = support from `U` (perturbs `u`); `Side::Right` =
    /// support from `V` (perturbs `v`).
    pub side: Side,
    /// The support record `w` with `M` predicting the opposite label.
    pub support: Record,
    /// Whether this support came from §3.3 data augmentation.
    pub augmented: bool,
}

/// Supply statistics for the Table 8 experiment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TriangleStats {
    /// Natural triangles found by scanning the tables.
    pub natural: usize,
    /// Triangles produced by data augmentation.
    pub augmented: usize,
    /// Candidate records scored during discovery (classifier calls).
    pub candidates_scored: usize,
}

impl TriangleStats {
    /// Total triangles delivered.
    pub fn total(&self) -> usize {
        self.natural + self.augmented
    }
}

/// Upper bound on candidates batched per `Matcher::score_batch` call during
/// the natural scan; actual chunks also never exceed the remaining quota, so
/// wasted post-quota scoring is bounded by the final (shrunken) chunk.
const SCAN_CHUNK: usize = 32;

/// Find up to τ open triangles (τ/2 per side) for the prediction
/// `M(⟨u, v⟩) = y`.
///
/// Candidates are scanned in a seed-determined order (the paper scans the
/// whole table; a deterministic shuffle removes insertion-order bias while
/// keeping runs reproducible). Returns the triangles plus supply statistics.
pub fn find_triangles(
    matcher: &dyn Matcher,
    dataset: &Dataset,
    u: &Record,
    v: &Record,
    y: MatchLabel,
    cfg: &CertaConfig,
) -> (Vec<OpenTriangle>, TriangleStats) {
    let mut triangles = Vec::with_capacity(cfg.num_triangles);
    let mut stats = TriangleStats::default();
    let want = y.flipped();

    for side in Side::both() {
        let quota = cfg.per_side();
        let (free, pivot) = match side {
            Side::Left => (u, v),
            Side::Right => (v, u),
        };
        let score_support = |w: &Record| -> MatchLabel {
            match side {
                Side::Left => matcher.predict(w, pivot),
                Side::Right => matcher.predict(pivot, w),
            }
        };

        let table = dataset.table(side);
        let mut order: Vec<usize> = (0..table.len()).collect();
        let mut rng = StdRng::seed_from_u64(
            cfg.seed ^ (free.content_hash().rotate_left(1)) ^ (side as u64 + 1),
        );
        order.shuffle(&mut rng);
        order.truncate(cfg.max_candidates);

        let mut found_side = 0usize;
        let mut scanned: Vec<&Record> = Vec::new();
        if !cfg.augmentation_only {
            // Candidates are scored in chunks through `Matcher::score_batch`
            // so vectorized models (and the sharded cache) amortize the
            // scan. Chunks never exceed the *remaining* quota, so the
            // overshoot past the last needed candidate is bounded by the
            // shrinking chunk, not by `SCAN_CHUNK`. `candidates_scored`
            // counts every pair actually sent to the model, including a
            // final chunk's post-quota remainder.
            let mut next = 0usize;
            while next < order.len() && found_side < quota {
                let chunk_len = (quota - found_side).min(SCAN_CHUNK).min(order.len() - next);
                let chunk = &order[next..next + chunk_len];
                next += chunk_len;
                let candidates: Vec<&Record> = chunk
                    .iter()
                    .map(|&idx| &table.records()[idx])
                    .filter(|w| w.id() != free.id())
                    .collect();
                if candidates.is_empty() {
                    continue;
                }
                let batch: Vec<(&Record, &Record)> = candidates
                    .iter()
                    .map(|&w| match side {
                        Side::Left => (w, pivot),
                        Side::Right => (pivot, w),
                    })
                    .collect();
                let scores = matcher.score_batch(&batch);
                for (&w, s) in candidates.iter().zip(scores) {
                    scanned.push(w);
                    stats.candidates_scored += 1;
                    if found_side < quota && MatchLabel::from_score(s) == want {
                        triangles.push(OpenTriangle {
                            side,
                            support: w.clone(),
                            augmented: false,
                        });
                        stats.natural += 1;
                        found_side += 1;
                    }
                }
            }
        } else {
            // Still need base records to derive augmented variants from.
            scanned.extend(order.iter().map(|&i| &table.records()[i]));
        }

        // §3.3 augmentation when the natural supply is short (or forced).
        if (found_side < quota && cfg.use_augmentation) || cfg.augmentation_only {
            let mut budget = cfg.augmentation_budget;
            // Derive variants from natural supports first (most likely to
            // stay on the far side of the boundary), then from other
            // scanned records.
            let support_bases: Vec<Record> = triangles
                .iter()
                .filter(|t| t.side == side && !t.augmented)
                .map(|t| t.support.clone())
                .collect();
            let bases: Vec<&Record> = support_bases
                .iter()
                .chain(scanned.iter().copied())
                .collect();
            'aug: for base in bases {
                if found_side >= quota || budget == 0 {
                    break;
                }
                let per_base = budget.min(12);
                for cand in augmented_candidates(base, per_base) {
                    if found_side >= quota {
                        break 'aug;
                    }
                    if budget == 0 {
                        break 'aug;
                    }
                    budget -= 1;
                    stats.candidates_scored += 1;
                    if score_support(&cand) == want {
                        triangles.push(OpenTriangle {
                            side,
                            support: cand,
                            augmented: true,
                        });
                        stats.augmented += 1;
                        found_side += 1;
                    }
                }
            }
        }
    }
    (triangles, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use certa_core::{FnMatcher, LabeledPair, Record, RecordId, Schema, Table};
    use certa_text::jaccard;

    /// A dataset where left records 0..5 say "red ..." and 5..10 say
    /// "blue ..."; right records mirror this.
    fn dataset() -> Dataset {
        let ls = Schema::shared("U", ["color", "extra"]);
        let rs = Schema::shared("V", ["color", "extra"]);
        let mk = |i: u32, color: &str| {
            Record::new(
                RecordId(i),
                vec![
                    format!("{color} item{i} token{} word{}", i % 3, i % 2),
                    format!("filler{i} pad"),
                ],
            )
        };
        let left = Table::from_records(
            ls,
            (0..10)
                .map(|i| mk(i, if i < 5 { "red" } else { "blue" }))
                .collect(),
        )
        .unwrap();
        let right = Table::from_records(
            rs,
            (0..10)
                .map(|i| mk(i, if i < 5 { "red" } else { "blue" }))
                .collect(),
        )
        .unwrap();
        Dataset::new(
            "toy",
            left,
            right,
            vec![LabeledPair::new(RecordId(0), RecordId(0), true)],
            vec![LabeledPair::new(RecordId(1), RecordId(1), true)],
        )
        .unwrap()
    }

    /// Matcher: match iff the color tokens agree.
    fn color_matcher() -> impl Matcher {
        FnMatcher::new("color", |u: &Record, v: &Record| {
            let cu = u.values()[0].split_whitespace().next().unwrap_or("");
            let cv = v.values()[0].split_whitespace().next().unwrap_or("");
            if cu == cv {
                0.9
            } else {
                0.1
            }
        })
    }

    #[test]
    fn supports_predict_the_opposite_label() {
        let d = dataset();
        let m = color_matcher();
        let u = d.left().expect(RecordId(0)); // red
        let v = d.right().expect(RecordId(0)); // red → Match
        let cfg = CertaConfig {
            num_triangles: 8,
            use_augmentation: false,
            ..Default::default()
        };
        let (tris, stats) = find_triangles(&m, &d, u, v, MatchLabel::Match, &cfg);
        assert!(!tris.is_empty());
        assert_eq!(stats.augmented, 0);
        for t in &tris {
            // Left support w: M(w, v) must be NonMatch → w is blue.
            let support_color = t.support.values()[0].split_whitespace().next().unwrap();
            assert_eq!(support_color, "blue", "{:?}", t.side);
            assert!(!t.augmented);
        }
        // Both sides represented.
        assert!(tris.iter().any(|t| t.side == Side::Left));
        assert!(tris.iter().any(|t| t.side == Side::Right));
        assert_eq!(tris.iter().filter(|t| t.side == Side::Left).count(), 4);
    }

    #[test]
    fn nonmatch_prediction_wants_matching_supports() {
        let d = dataset();
        let m = color_matcher();
        let u = d.left().expect(RecordId(0)); // red
        let v = d.right().expect(RecordId(7)); // blue → NonMatch
        let cfg = CertaConfig {
            num_triangles: 6,
            use_augmentation: false,
            ..Default::default()
        };
        let (tris, _) = find_triangles(&m, &d, u, v, MatchLabel::NonMatch, &cfg);
        for t in &tris {
            let support_color = t.support.values()[0].split_whitespace().next().unwrap();
            match t.side {
                // M(w, v=blue) must be Match → w blue.
                Side::Left => assert_eq!(support_color, "blue"),
                // M(u=red, q) must be Match → q red.
                Side::Right => assert_eq!(support_color, "red"),
            }
        }
    }

    #[test]
    fn free_record_is_never_its_own_support() {
        let d = dataset();
        let m = color_matcher();
        let u = d.left().expect(RecordId(0));
        let v = d.right().expect(RecordId(0));
        let cfg = CertaConfig {
            num_triangles: 20,
            use_augmentation: false,
            ..Default::default()
        };
        let (tris, _) = find_triangles(&m, &d, u, v, MatchLabel::Match, &cfg);
        for t in &tris {
            if !t.augmented {
                match t.side {
                    Side::Left => assert_ne!(t.support.id(), u.id()),
                    Side::Right => assert_ne!(t.support.id(), v.id()),
                }
            }
        }
    }

    #[test]
    fn augmentation_fills_shortfalls() {
        // Matcher that rejects every natural record but accepts records
        // whose first attribute lost its leading token.
        let d = dataset();
        let m = FnMatcher::new("picky", |u: &Record, v: &Record| {
            let shortened = u.values()[0].split_whitespace().count() < 4
                || v.values()[0].split_whitespace().count() < 4;
            if shortened {
                0.1
            } else {
                0.9
            }
        });
        let u = d.left().expect(RecordId(0));
        let v = d.right().expect(RecordId(0)); // natural pairs all score 0.9 → Match
        let cfg = CertaConfig {
            num_triangles: 6,
            ..Default::default()
        };
        let (tris, stats) = find_triangles(&m, &d, u, v, MatchLabel::Match, &cfg);
        assert!(
            stats.augmented > 0,
            "augmented triangles expected: {stats:?}"
        );
        assert_eq!(stats.natural, 0);
        assert!(tris.iter().all(|t| t.augmented));
    }

    #[test]
    fn augmentation_only_mode_skips_natural_supports() {
        let d = dataset();
        let m = color_matcher();
        let u = d.left().expect(RecordId(0));
        let v = d.right().expect(RecordId(0));
        let cfg = CertaConfig {
            num_triangles: 4,
            augmentation_only: true,
            ..Default::default()
        };
        let (tris, stats) = find_triangles(&m, &d, u, v, MatchLabel::Match, &cfg);
        assert_eq!(stats.natural, 0);
        assert!(tris.iter().all(|t| t.augmented));
        // Augmented blue variants still classify as non-match vs red pivot.
        for t in &tris {
            assert!(jaccard(&t.support.values()[0], "blue") >= 0.0); // structural sanity
        }
    }

    #[test]
    fn deterministic_given_config() {
        let d = dataset();
        let m = color_matcher();
        let u = d.left().expect(RecordId(1));
        let v = d.right().expect(RecordId(1));
        let cfg = CertaConfig {
            num_triangles: 6,
            ..Default::default()
        };
        let (t1, s1) = find_triangles(&m, &d, u, v, MatchLabel::Match, &cfg);
        let (t2, s2) = find_triangles(&m, &d, u, v, MatchLabel::Match, &cfg);
        assert_eq!(s1, s2);
        assert_eq!(t1.len(), t2.len());
        for (a, b) in t1.iter().zip(t2.iter()) {
            assert_eq!(a.support.values(), b.support.values());
            assert_eq!(a.side, b.side);
        }
    }

    #[test]
    fn respects_max_candidates() {
        let d = dataset();
        let m = color_matcher();
        let u = d.left().expect(RecordId(0));
        let v = d.right().expect(RecordId(0));
        let cfg = CertaConfig {
            num_triangles: 100,
            max_candidates: 3,
            use_augmentation: false,
            ..Default::default()
        };
        let (_, stats) = find_triangles(&m, &d, u, v, MatchLabel::Match, &cfg);
        assert!(stats.candidates_scored <= 6, "3 per side: {stats:?}");
    }
}
