//! Property tests pinning that the copy-on-write ψ (mask-driven handle
//! merge) is observationally identical to the pre-refactor implementation,
//! which cloned the free record and overwrote each masked attribute with a
//! freshly allocated `String`.

use certa_core::{AttrId, AttrValue, Record, RecordId};
use certa_explain::lattice::AttrMask;
use certa_explain::perturb::perturb;
use proptest::prelude::*;

/// The pre-refactor ψ, reconstructed over plain strings: the semantics the
/// COW path must reproduce exactly.
fn perturb_reference(free: &Record, support: &Record, mask: AttrMask) -> Record {
    let values: Vec<String> = (0..free.arity())
        .map(|i| {
            let donor = mask & (1 << i) != 0;
            let side = if donor { support } else { free };
            side.value(AttrId(i as u16)).to_string()
        })
        .collect();
    Record::new(free.id(), values)
}

proptest! {
    /// (b) COW perturb ≡ the old string-rebuilding `with_values_from` path:
    /// equal values, equal id, equal content hash — for arbitrary value
    /// vectors and every mask of every arity up to 6.
    #[test]
    fn cow_perturb_matches_string_reference(
        free_values in proptest::collection::vec("[a-z0-9 ]{0,16}", 1..6),
        mask in 0u32..64,
        seed in 0u32..1000,
    ) {
        let arity = free_values.len();
        let free = Record::new(RecordId(1), free_values);
        // Derive a support record from the seed so the pair exercises both
        // shared and differing values.
        let support = Record::new(
            RecordId(2),
            (0..arity)
                .map(|i| {
                    if (seed >> i) & 1 == 0 {
                        free.value(AttrId(i as u16)).to_string()
                    } else {
                        format!("donor {seed} {i}")
                    }
                })
                .collect(),
        );
        let cow = perturb(&free, &support, mask);
        let reference = perturb_reference(&free, &support, mask);
        prop_assert_eq!(&cow, &reference);
        prop_assert_eq!(cow.id(), free.id());
        prop_assert_eq!(cow.content_hash(), reference.content_hash());
        // And the COW copy truly shares handles instead of re-allocating.
        for i in 0..arity {
            let a = AttrId(i as u16);
            let donor_side = mask & (1 << i) != 0;
            let expected = if donor_side { &support } else { &free };
            prop_assert!(AttrValue::ptr_eq(cow.attr_value(a), expected.attr_value(a)));
        }
    }

    /// ψ equivalence under the explicit-attribute-list API the explainers
    /// previously used.
    #[test]
    fn with_values_from_matches_merged(mask in 0u32..32) {
        let free = Record::new(
            RecordId(1),
            vec![
                "sony bravia theater".into(),
                "black micro system".into(),
                String::new(),
                "49.99".into(),
                "hdmi output".into(),
            ],
        );
        let support = Record::new(
            RecordId(2),
            vec![
                "altec lansing inmotion".into(),
                "portable audio system".into(),
                "im600".into(),
                String::new(),
                "usb charging".into(),
            ],
        );
        let attrs: Vec<AttrId> = (0..5)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| AttrId(i as u16))
            .collect();
        let listed = free.with_values_from(&support, &attrs);
        let merged = perturb(&free, &support, mask);
        prop_assert_eq!(listed, merged);
    }
}
