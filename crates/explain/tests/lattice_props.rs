//! Property tests for the lattice explorer (§4):
//!
//! 1. For **monotone** matchers (upward-closed flip sets), monotone and
//!    exhaustive exploration agree on every proper subset's tag — and hence
//!    find the same minimal flipping masks — while monotone performs no more
//!    model calls.
//! 2. `performed ≤ expected` holds for *arbitrary* (even non-monotone)
//!    oracles under the footnote-2 budget (full set untested).

use certa_explain::lattice::{explore, AttrMask, ExploreMode};
use proptest::prelude::*;

/// Upward-closed oracle: flip iff the mask contains one of the generators
/// (`g \ mask = ∅`).
fn monotone_flip(generators: &[AttrMask], mask: AttrMask) -> bool {
    generators.iter().any(|&g| g & !mask == 0)
}

proptest! {
    #[test]
    fn monotone_and_exhaustive_find_the_same_minimal_masks(
        arity in 1usize..7,
        raw_generators in proptest::collection::vec(1u32..64, 0..4),
    ) {
        let full: AttrMask = (1u32 << arity) - 1;
        let generators: Vec<AttrMask> = raw_generators
            .iter()
            .map(|g| g & full)
            .filter(|&g| g != 0)
            .collect();
        let monotone = explore(arity, ExploreMode::Monotone, false, |m| {
            monotone_flip(&generators, m)
        });
        let exhaustive = explore(arity, ExploreMode::Exhaustive, false, |m| {
            monotone_flip(&generators, m)
        });
        prop_assert_eq!(
            monotone.minimal_flipping_antichain(),
            exhaustive.minimal_flipping_antichain()
        );
        // Inference is *exact* for monotone matchers: every proper subset's
        // tag agrees with ground truth (the full set is excluded — footnote
        // 2 leaves it untested in exhaustive mode).
        for mask in 1..full {
            prop_assert_eq!(
                monotone.flipped(mask),
                exhaustive.flipped(mask),
                "mask {:b} diverged",
                mask
            );
        }
        let (mono_stats, exh_stats) = (monotone.stats(), exhaustive.stats());
        prop_assert!(mono_stats.performed <= exh_stats.performed);
        prop_assert_eq!(exh_stats.inferred, 0);
    }

    #[test]
    fn performed_never_exceeds_expected(
        arity in 1usize..7,
        truth in proptest::collection::vec(any::<bool>(), 64),
    ) {
        // Arbitrary, generally non-monotone oracle.
        let oracle = |m: AttrMask| truth[(m as usize) % truth.len()];
        for mode in [ExploreMode::Monotone, ExploreMode::Exhaustive] {
            let stats = explore(arity, mode, false, oracle).stats();
            prop_assert!(
                stats.performed <= stats.expected,
                "{:?}: performed {} > expected {}",
                mode,
                stats.performed,
                stats.expected
            );
            // Every non-∅ node is accounted for exactly once.
            prop_assert_eq!(
                stats.performed + stats.inferred + stats.skipped,
                stats.expected + 1,
                "{:?} accounting", mode
            );
            prop_assert_eq!(stats.saved(), stats.expected - stats.performed);
        }
    }
}
