//! Property test for the batch engine's determinism guarantee: over random
//! schemas, worlds, and matchers, `Certa::explain_batch` must be
//! **byte-identical** to a loop of sequential `explain` calls — same
//! saliency, golden set, counterfactual examples, lattice statistics, and
//! mean probabilities, in input order.

use certa_core::{Dataset, FnMatcher, LabeledPair, Record, RecordId, Schema, Table};
use certa_explain::{Certa, CertaConfig, CertaExplanation};
use proptest::prelude::*;

/// Two-family world: records of the same family share every attribute value,
/// so copying an attribute subset across families moves exactly that
/// subset's weight mass — random weights make the flip structure of every
/// lattice non-trivial.
fn build_dataset(arity: usize, families: &[bool], salt: &str) -> Dataset {
    let names: Vec<String> = (0..arity).map(|j| format!("a{j}")).collect();
    let ls = Schema::shared("U", names.clone());
    let rs = Schema::shared("V", names);
    let mk = |i: usize, fam: bool| {
        let tag = if fam { "alpha" } else { "beta" };
        Record::new(
            RecordId(i as u32),
            (0..arity)
                .map(|j| format!("{tag} f{j} {salt} tail"))
                .collect(),
        )
    };
    let records = |_side: &str| -> Vec<Record> {
        families
            .iter()
            .enumerate()
            .map(|(i, &fam)| mk(i, fam))
            .collect()
    };
    let left = Table::from_records(ls, records("U")).unwrap();
    let right = Table::from_records(rs, records("V")).unwrap();
    let n = families.len() as u32;
    Dataset::new(
        "prop",
        left,
        right,
        vec![LabeledPair::new(RecordId(0), RecordId(0), true)],
        vec![
            LabeledPair::new(RecordId(0), RecordId(0), true),
            LabeledPair::new(RecordId(1), RecordId(n - 1), false),
            LabeledPair::new(RecordId(n - 1), RecordId(n - 2), true),
            LabeledPair::new(RecordId(2), RecordId(1), true),
        ],
    )
    .unwrap()
}

/// Weighted attribute-equality matcher: score = Σ wᵢ·[uᵢ = vᵢ] / Σ wᵢ.
fn weighted_matcher(weights: Vec<f64>) -> impl certa_core::Matcher {
    FnMatcher::new("weighted-eq", move |u: &Record, v: &Record| {
        let arity = u.arity().min(v.arity()).min(weights.len());
        let total: f64 = weights[..arity].iter().sum();
        if total == 0.0 {
            return 0.0;
        }
        let agree: f64 = (0..arity)
            .filter(|&i| u.values()[i] == v.values()[i])
            .map(|i| weights[i])
            .sum();
        agree / total
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn explain_batch_is_byte_identical_to_sequential_loop(
        arity in 1usize..4,
        families in proptest::collection::vec(any::<bool>(), 6..11),
        salt in "[a-z]{2,6}",
        weights in proptest::collection::vec(0.05f64..1.0, 3),
        augment in any::<bool>(),
        tau in 2usize..9,
    ) {
        // Both families must exist or no open triangle can ever form.
        prop_assume!(families.iter().any(|&b| b) && families.iter().any(|&b| !b));
        let dataset = build_dataset(arity, &families, &salt);
        let matcher = weighted_matcher(weights);
        let pairs: Vec<(&Record, &Record)> = dataset
            .split(certa_core::Split::Test)
            .iter()
            .map(|lp| dataset.expect_pair(lp.pair))
            .collect();
        let base = CertaConfig {
            num_triangles: tau,
            use_augmentation: augment,
            seed: 0xAB5,
            ..Default::default()
        };
        // 4 workers forces real threads even on a single-core machine.
        let batch = Certa::new(CertaConfig { workers: 4, ..base })
            .explain_batch(&matcher, &dataset, &pairs);
        let sequential: Vec<CertaExplanation> = {
            let certa = Certa::new(CertaConfig { workers: 1, ..base });
            pairs
                .iter()
                .map(|&(u, v)| certa.explain(&matcher, &dataset, u, v))
                .collect()
        };
        prop_assert_eq!(&batch, &sequential);
        // Spot-check the field-level guarantees the ISSUE names explicitly
        // (saliency, golden set, lattice stats, input order) so a future
        // change to `PartialEq` cannot silently weaken this test.
        for (b, s) in batch.iter().zip(&sequential) {
            prop_assert_eq!(&b.saliency, &s.saliency);
            prop_assert_eq!(&b.counterfactual.golden_set, &s.counterfactual.golden_set);
            prop_assert_eq!(&b.lattice_stats, &s.lattice_stats);
            prop_assert_eq!(b.triangle_stats, s.triangle_stats);
            prop_assert_eq!(b.mean_sufficiency, s.mean_sufficiency);
            prop_assert_eq!(b.mean_necessity, s.mean_necessity);
        }
    }

    #[test]
    fn intra_explain_triangle_parallelism_is_invisible(
        families in proptest::collection::vec(any::<bool>(), 6..11),
        weights in proptest::collection::vec(0.05f64..1.0, 3),
    ) {
        prop_assume!(families.iter().any(|&b| b) && families.iter().any(|&b| !b));
        let dataset = build_dataset(3, &families, "xyz");
        let matcher = weighted_matcher(weights);
        let (u, v) = dataset.expect_pair(dataset.split(certa_core::Split::Test)[0].pair);
        let base = CertaConfig {
            num_triangles: 8,
            use_augmentation: false,
            ..Default::default()
        };
        let parallel = Certa::new(CertaConfig { workers: 4, ..base }).explain(&matcher, &dataset, u, v);
        let sequential = Certa::new(CertaConfig { workers: 1, ..base }).explain(&matcher, &dataset, u, v);
        prop_assert_eq!(parallel, sequential);
    }
}
