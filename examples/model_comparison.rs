//! Model comparison: train all three matcher families on one benchmark and
//! compare (a) their accuracy and (b) whether they *agree on why* — the
//! rank correlation between their CERTA saliency explanations.
//!
//! Two models can reach similar F1 while leaning on different attributes;
//! this is exactly the kind of model-debugging workflow the paper motivates.
//!
//! ```text
//! cargo run --release --example model_comparison
//! ```

use certa_repro::core::Split;
use certa_repro::datagen::{generate, DatasetId, Scale};
use certa_repro::explain::{Certa, CertaConfig, SaliencyExplanation};
use certa_repro::models::{train_zoo, ModelKind};

/// Spearman rank correlation between two saliency rankings.
fn rank_correlation(a: &SaliencyExplanation, b: &SaliencyExplanation) -> f64 {
    let rank = |e: &SaliencyExplanation| {
        let ranked = e.ranked();
        let mut pos = vec![0.0; ranked.len()];
        for (r, (attr, _)) in ranked.iter().enumerate() {
            // Flat index: stable across explanations of the same schema.
            let idx = match attr.side {
                certa_repro::core::Side::Left => attr.attr.index(),
                certa_repro::core::Side::Right => e.ranked().len() / 2 + attr.attr.index(),
            };
            pos[idx] = r as f64;
        }
        pos
    };
    let ra = rank(a);
    let rb = rank(b);
    let n = ra.len() as f64;
    if n < 2.0 {
        return 1.0;
    }
    let d2: f64 = ra
        .iter()
        .zip(rb.iter())
        .map(|(x, y)| (x - y) * (x - y))
        .sum();
    1.0 - 6.0 * d2 / (n * (n * n - 1.0))
}

fn main() {
    let dataset = generate(DatasetId::DA, Scale::Smoke, 33);
    let zoo = train_zoo(&dataset);

    println!("model quality on synthetic DBLP-ACM:");
    for kind in ModelKind::all() {
        let r = zoo.report(kind);
        println!(
            "  {:<12} train F1 {:.2}   test F1 {:.2}",
            kind.paper_name(),
            r.train_f1,
            r.test_f1
        );
    }

    // Explain the same pairs with every model; compare rankings pairwise.
    let certa = Certa::new(CertaConfig::default().with_triangles(40));
    let pairs: Vec<_> = dataset.split(Split::Test).iter().take(3).copied().collect();
    println!("\nsaliency agreement (Spearman rank correlation of CERTA explanations):");
    for lp in &pairs {
        let (u, v) = dataset.expect_pair(lp.pair);
        let explanations: Vec<(ModelKind, SaliencyExplanation)> = zoo
            .iter()
            .map(|(kind, matcher)| (kind, certa.explain(&matcher, &dataset, u, v).saliency))
            .collect();
        println!("  pair {}:", lp.pair);
        for i in 0..explanations.len() {
            for j in (i + 1)..explanations.len() {
                let (ka, ea) = &explanations[i];
                let (kb, eb) = &explanations[j];
                println!(
                    "    {:<12} vs {:<12} ρ = {:+.2}",
                    ka.paper_name(),
                    kb.paper_name(),
                    rank_correlation(ea, eb)
                );
            }
        }
        // Which attribute does each model lean on the most?
        for (kind, e) in &explanations {
            if let Some((attr, score)) = e.ranked().first() {
                println!(
                    "    {:<12} leans on {} ({:.2})",
                    kind.paper_name(),
                    attr.qualified(&dataset),
                    score
                );
            }
        }
    }
}
