//! Debugging a misclassification — the paper's §1 motivation.
//!
//! The introduction's running example is a true match that a model rejects
//! (Figure 2). This example finds such a wrong prediction on synthetic
//! Abt-Buy, asks CERTA *why* the model got it wrong, and checks the
//! explanation by copying the salient attributes across the pair (the
//! Figure 4 spot-check).
//!
//! ```text
//! cargo run --release --example debug_misclassification
//! ```

use certa_repro::core::{LabeledPair, Matcher, Split};
use certa_repro::datagen::{generate, DatasetId, Scale};
use certa_repro::eval::masking::copy_salient;
use certa_repro::explain::{Certa, CertaConfig};
use certa_repro::models::{train_zoo, ModelKind};

fn main() {
    let dataset = generate(DatasetId::AB, Scale::Smoke, 9);
    let zoo = train_zoo(&dataset);

    // Hunt for a wrong prediction by any of the three models.
    let mut found: Option<(ModelKind, LabeledPair)> = None;
    'outer: for (kind, matcher) in zoo.iter() {
        for lp in dataset.split(Split::Test) {
            let (u, v) = dataset.expect_pair(lp.pair);
            if matcher.prediction(u, v).is_match() != lp.label.is_match() {
                found = Some((kind, *lp));
                break 'outer;
            }
        }
    }

    let Some((kind, lp)) = found else {
        println!("all three models predict the test split perfectly — try another seed");
        return;
    };
    let matcher = zoo.matcher(kind);
    let (u, v) = dataset.expect_pair(lp.pair);
    let pred = matcher.prediction(u, v);
    println!("{} got this pair wrong:", kind.paper_name());
    println!("  u = {}", u.display_with(dataset.left().schema()));
    println!("  v = {}", v.display_with(dataset.right().schema()));
    println!(
        "  ground truth: {}   prediction: {} ({:.3})\n",
        lp.label, pred.label, pred.score
    );

    // Ask CERTA why.
    let certa = Certa::new(CertaConfig::default().with_triangles(60));
    let explanation = certa.explain(&matcher, &dataset, u, v);
    println!("most influential attributes (probability of necessity):");
    for (attr, score) in explanation.saliency.ranked().into_iter().take(3) {
        println!("  {:<24} {:.3}", attr.qualified(&dataset), score);
    }

    // Figure 4 spot-check: copy the top-2 salient attributes across the pair
    // and re-score. A faithful explanation moves the score substantially.
    let top2 = explanation.saliency.top_k(2);
    let (cu, cv) = copy_salient(u, v, &top2);
    let new_score = matcher.score(&cu, &cv);
    println!(
        "\nfaithfulness spot-check: score {:.3} -> {:.3} after copying the top-2 salient attributes",
        pred.score, new_score
    );

    // And the counterfactual: the minimal edit that flips the decision.
    if explanation.counterfactual.found() {
        let golden: Vec<String> = explanation
            .counterfactual
            .golden_set
            .iter()
            .map(|a| a.qualified(&dataset))
            .collect();
        println!(
            "counterfactual: changing [{}] flips the prediction with probability {:.2} ({} examples)",
            golden.join(", "),
            explanation.counterfactual.sufficiency,
            explanation.counterfactual.examples.len(),
        );
    }
}
