//! Counterfactual audit: compare all four counterfactual methods on the
//! same predictions — who actually flips the model, how close the edits
//! stay, and how many options each method offers (Tables 4–6 / Figure 10 in
//! miniature).
//!
//! ```text
//! cargo run --release --example counterfactual_audit
//! ```

use certa_repro::baselines::CfMethod;
use certa_repro::core::Split;
use certa_repro::datagen::{generate, DatasetId, Scale};
use certa_repro::eval::cf_metrics::{example_proximity, example_sparsity, set_diversity};
use certa_repro::explain::CertaConfig;
use certa_repro::models::{train_model, ModelKind, TrainConfig};

fn main() {
    let dataset = generate(DatasetId::BA, Scale::Smoke, 21);
    let (matcher, report) = train_model(
        ModelKind::Ditto,
        &dataset,
        &TrainConfig::for_kind(ModelKind::Ditto),
    );
    println!("ditto-sim on BA: test F1 {:.2}\n", report.test_f1);

    let pairs: Vec<_> = dataset.split(Split::Test).iter().take(4).copied().collect();
    let certa_cfg = CertaConfig::default().with_triangles(40);

    for lp in &pairs {
        let (u, v) = dataset.expect_pair(lp.pair);
        let pred = certa_repro::core::Matcher::prediction(&&matcher, u, v);
        println!(
            "pair {} — predicted {} ({:.2}), truth {}",
            lp.pair, pred.label, pred.score, lp.label
        );
        for method in CfMethod::all() {
            let explainer = method.build(certa_cfg, 11);
            let cf = explainer.explain_counterfactual(&matcher, &dataset, u, v);
            if cf.examples.is_empty() {
                println!("  {:<7} found nothing", method.paper_name());
                continue;
            }
            let n = cf.examples.len();
            let prox: f64 = cf
                .examples
                .iter()
                .map(|e| example_proximity(u, v, e))
                .sum::<f64>()
                / n as f64;
            let spars: f64 = cf
                .examples
                .iter()
                .map(|e| example_sparsity(u, v, e))
                .sum::<f64>()
                / n as f64;
            let valid = cf
                .examples
                .iter()
                .filter(|e| (e.score > 0.5) != pred.is_match())
                .count();
            println!(
                "  {:<7} {} examples ({} valid flips)  proximity {:.2}  sparsity {:.2}  diversity {:.2}",
                method.paper_name(),
                n,
                valid,
                prox,
                spars,
                set_diversity(&cf),
            );
        }
        println!();
    }

    println!("note: SEDC-style methods (LIME-C / SHAP-C) can only *remove* evidence, so they");
    println!("often fail to flip non-match predictions — the paper's Figure 10 effect.");
}
