//! Quickstart: generate a benchmark, train a matcher, explain one
//! prediction with CERTA.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use certa_repro::core::{Matcher, Split};
use certa_repro::datagen::{generate, DatasetId, Scale};
use certa_repro::explain::{Certa, CertaConfig};
use certa_repro::models::{train_model, ModelKind, TrainConfig};

fn main() {
    // 1. A synthetic Fodors-Zagats restaurant benchmark (seeded: this
    //    program prints the same thing every run).
    let dataset = generate(DatasetId::FZ, Scale::Smoke, 42);
    println!(
        "dataset {}: {} left records, {} right records, {} matches",
        dataset.name(),
        dataset.left().len(),
        dataset.right().len(),
        dataset.match_count()
    );

    // 2. Train the DeepMatcher-style attribute-similarity matcher.
    let cfg = TrainConfig::for_kind(ModelKind::DeepMatcher);
    let (matcher, report) = train_model(ModelKind::DeepMatcher, &dataset, &cfg);
    println!(
        "trained {}: train F1 {:.2}, test F1 {:.2}",
        matcher.name(),
        report.train_f1,
        report.test_f1
    );

    // 3. Pick one test prediction and explain it with CERTA.
    let lp = dataset
        .split(Split::Test)
        .iter()
        .find(|lp| lp.label.is_match())
        .expect("a match");
    let (u, v) = dataset.expect_pair(lp.pair);
    println!("\nexplaining the pair:");
    println!("  u = {}", u.display_with(dataset.left().schema()));
    println!("  v = {}", v.display_with(dataset.right().schema()));
    let pred = matcher.prediction(u, v);
    println!("  prediction: {} (score {:.3})\n", pred.label, pred.score);

    let certa = Certa::new(CertaConfig::default().with_triangles(50));
    let explanation = certa.explain(&matcher, &dataset, u, v);

    // 4. Saliency: which attributes were *necessary* for this prediction?
    println!("saliency (probability of necessity):");
    for (attr, score) in explanation.saliency.ranked() {
        println!("  {:<24} {:.3}", attr.qualified(&dataset), score);
    }

    // 5. Counterfactual: what minimal change flips it?
    let cf = &explanation.counterfactual;
    if cf.found() {
        let golden: Vec<String> = cf
            .golden_set
            .iter()
            .map(|a| a.qualified(&dataset))
            .collect();
        println!(
            "\ncounterfactual: changing [{}] flips the prediction with probability {:.2}",
            golden.join(", "),
            cf.sufficiency
        );
        let ex = &cf.examples[0];
        println!("  example (model score {:.3}):", ex.score);
        println!("    u' = {}", ex.left.display_with(dataset.left().schema()));
        println!(
            "    v' = {}",
            ex.right.display_with(dataset.right().schema())
        );
    } else {
        println!("\nno counterfactual found (prediction is very stable)");
    }
}
