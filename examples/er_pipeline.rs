//! A complete entity-resolution pipeline on two raw tables:
//! blocking → matching → explanation → (optional) token drill-down.
//!
//! This is the "downstream adopter" workflow: you have two record sources,
//! you want the matches, and for anything surprising you want to know *why*.
//!
//! ```text
//! cargo run --release --example er_pipeline
//! ```

use certa_repro::core::blocking::TokenIndex;
use certa_repro::core::{Matcher, RecordPair, Side, Split};
use certa_repro::datagen::{generate, DatasetId, Scale};
use certa_repro::explain::token_level::occlusion_token_saliency;
use certa_repro::explain::{AttrRef, Certa, CertaConfig};
use certa_repro::models::{train_model, ModelKind, TrainConfig};

fn main() {
    // Two product tables (synthetic Walmart-Amazon at smoke scale).
    let dataset = generate(DatasetId::WA, Scale::Smoke, 55);
    println!(
        "sources: {} ({} records) vs {} ({} records)",
        dataset.left().name(),
        dataset.left().len(),
        dataset.right().name(),
        dataset.right().len()
    );

    // 1. Blocking: an inverted token index proposes candidate pairs, so we
    //    never score the full cross product.
    let index = TokenIndex::build(dataset.right(), dataset.right().len() / 3 + 1);
    let mut candidates: Vec<RecordPair> = Vec::new();
    for u in dataset.left().records() {
        for (rid, _overlap) in index.candidates(u, 2, None).into_iter().take(3) {
            candidates.push(RecordPair::new(u.id(), rid));
        }
    }
    let cross = dataset.left().len() * dataset.right().len();
    println!(
        "blocking: {} candidate pairs (vs {} in the cross product, {:.1}% kept)\n",
        candidates.len(),
        cross,
        100.0 * candidates.len() as f64 / cross as f64
    );

    // 2. Matching: train a matcher on the labeled split, score candidates.
    let (matcher, report) = train_model(
        ModelKind::Ditto,
        &dataset,
        &TrainConfig::for_kind(ModelKind::Ditto),
    );
    println!("matcher {} (test F1 {:.2})", matcher.name(), report.test_f1);
    let mut matched: Vec<(RecordPair, f64)> = candidates
        .iter()
        .filter_map(|&pair| {
            let (u, v) = dataset.expect_pair(pair);
            let s = matcher.score(u, v);
            (s > 0.5).then_some((pair, s))
        })
        .collect();
    matched.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("matching: {} pairs declared matches", matched.len());

    // 3. Explanation: take the *least confident* match and ask CERTA why
    //    the model accepted it.
    let Some(&(pair, score)) = matched.last() else {
        println!("no matches found — nothing to explain");
        return;
    };
    let (u, v) = dataset.expect_pair(pair);
    println!("\nleast-confident match (score {score:.3}):");
    println!("  u = {}", u.display_with(dataset.left().schema()));
    println!("  v = {}", v.display_with(dataset.right().schema()));

    let certa = Certa::new(CertaConfig::default().with_triangles(40));
    let explanation = certa.explain(&matcher, &dataset, u, v);
    println!("\nattribute saliency:");
    for (attr, s) in explanation.saliency.ranked().into_iter().take(4) {
        println!("  {:<22} {:.3}", attr.qualified(&dataset), s);
    }

    // 4. Token drill-down (the paper's future-work extension): which tokens
    //    inside the most salient left attribute carry the decision?
    let top_attr = explanation
        .saliency
        .ranked()
        .into_iter()
        .map(|(a, _)| a)
        .find(|a| a.side == Side::Left)
        .unwrap_or(AttrRef::new(Side::Left, 0));
    let tokens = occlusion_token_saliency(&matcher, u, v, top_attr);
    println!("\ntoken saliency inside {}:", top_attr.qualified(&dataset));
    let mut ranked = tokens.clone();
    ranked.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap());
    for t in ranked.iter().take(5) {
        println!("  {:<18} {:.3}", t.token, t.score);
    }

    // Sanity: the pipeline found real matches (the split has ground truth).
    let truth: usize = dataset
        .split(Split::Test)
        .iter()
        .chain(dataset.split(Split::Train))
        .filter(|lp| lp.label.is_match())
        .count();
    println!("\n(ground truth held {truth} matching pairs in the labeled splits)");
}
